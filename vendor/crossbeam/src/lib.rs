//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the API subset the workspace uses — `channel::unbounded`,
//! `queue::SegQueue`, `deque::{Worker, Stealer, Injector}`, and
//! `sync::WaitGroup` — implemented over `std::sync` primitives. The
//! real crate's lock-free guarantees become lock-based here; semantics
//! (FIFO order, steal success/empty, waitgroup rendezvous) are
//! preserved, which is what the engine's correctness relies on. The
//! throughput-oriented properties are modeled costs in this
//! reproduction, not measured ones.

pub mod channel {
    //! Multi-producer channels (wraps `std::sync::mpsc`).

    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when all receivers disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // No `T: Debug` bound, matching upstream: callers `.expect()` on
    // sends of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message if the receiver disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Errs when every sender disconnected and the queue drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when currently empty or
        /// disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }
}

pub mod queue {
    //! Concurrent queues.

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue (`SegQueue` API).
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Removes the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Current length (racy snapshot, like the real crate).
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}

pub mod deque {
    //! Work-stealing deques.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// A task was stolen.
        Success(T),
        /// The victim was empty.
        Empty,
        /// The operation lost a race and may be retried.
        Retry,
    }

    /// The owner's end of a deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    /// A thief's handle onto some worker's deque.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO deque.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Pops the next task in FIFO order.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Creates a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals a batch from the victim into `dest` and pops one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut victim = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let n = victim.len();
            if n == 0 {
                return Steal::Empty;
            }
            // Take up to half the victim's tasks (min 1), keep the
            // first for the caller, move the rest to `dest`.
            let take = (n / 2).max(1);
            let first = victim.pop_front().expect("n > 0");
            if take > 1 {
                let mut dest_q = dest.inner.lock().unwrap_or_else(|e| e.into_inner());
                for _ in 1..take {
                    if let Some(v) = victim.pop_front() {
                        dest_q.push_back(v);
                    }
                }
            }
            Steal::Success(first)
        }
    }

    /// A global FIFO injector queue.
    pub struct Injector<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Appends a task.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Steals a batch into `dest` and pops one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let stealer = Stealer {
                inner: Arc::clone(&self.inner),
            };
            stealer.steal_batch_and_pop(dest)
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }
}

pub mod sync {
    //! Synchronization utilities.

    use std::sync::{Arc, Condvar, Mutex};

    struct WgState {
        count: Mutex<usize>,
        cv: Condvar,
    }

    /// A rendezvous barrier: `wait()` blocks until every clone drops.
    pub struct WaitGroup {
        state: Arc<WgState>,
    }

    impl WaitGroup {
        /// Creates a group with one registered member (this handle).
        pub fn new() -> Self {
            WaitGroup {
                state: Arc::new(WgState {
                    count: Mutex::new(1),
                    cv: Condvar::new(),
                }),
            }
        }

        /// Drops this handle and blocks until all other clones drop.
        pub fn wait(self) {
            let state = Arc::clone(&self.state);
            drop(self); // deregister ourselves
            let mut count = state.count.lock().unwrap_or_else(|e| e.into_inner());
            while *count > 0 {
                count = state
                    .cv
                    .wait(count)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self
                .state
                .count
                .lock()
                .unwrap_or_else(|e| e.into_inner()) += 1;
            WaitGroup {
                state: Arc::clone(&self.state),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut count = self
                .state
                .count
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *count -= 1;
            if *count == 0 {
                self.state.cv.notify_all();
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segqueue_is_fifo() {
        let q = queue::SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn channel_round_trips() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop((tx, tx2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn deque_steals_move_work() {
        let a = deque::Worker::new_fifo();
        let b = deque::Worker::new_fifo();
        for i in 0..8 {
            a.push(i);
        }
        let s = a.stealer();
        match s.steal_batch_and_pop(&b) {
            deque::Steal::Success(v) => assert_eq!(v, 0),
            other => panic!("expected success, got {other:?}"),
        }
        // Half the victim (4 tasks) moved: one returned, three to b.
        let mut got = Vec::new();
        while let Some(v) = b.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2, 3]);
        assert!(matches!(
            deque::Worker::<u32>::new_fifo().stealer().steal_batch_and_pop(&a),
            deque::Steal::Empty
        ));
    }

    #[test]
    fn waitgroup_blocks_until_all_drop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let wg = sync::WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let wg = wg.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
                drop(wg);
            });
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
