//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small, deterministic subset of the `rand` API it
//! actually uses: [`rngs::StdRng`] (an xoshiro256++ generator seeded
//! through SplitMix64), [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. Streams are
//! stable across runs and platforms — every seeded experiment in the
//! reproduction stays exactly repeatable — but they intentionally do
//! NOT match upstream `rand`'s streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = sample_unit_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = sample_unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = <StdRng as SeedableRng>::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4096 {
            let v = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&v));
            let i = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&i));
            let n = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&n));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.gen_range(0usize..8)] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 800), "{buckets:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
