//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: no
//! poison `Result`s (a poisoned lock is recovered transparently, since
//! the workspace already isolates panics at task boundaries) and a
//! [`Condvar`] that re-arms a `&mut` guard in place.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard always re-armed")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard always re-armed")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock, blocks until notified,
    /// and reacquires the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard always re-armed");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns a
    /// result whose `timed_out()` reports whether the deadline passed
    /// (upstream `parking_lot`'s `wait_for`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard always re-armed");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a timed wait returned because of a timeout.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut ready = pair.0.lock();
        while !*ready {
            pair.1.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }
}
