//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros — backed by a small
//! wall-clock harness: a calibration pass sizes each sample at roughly
//! two milliseconds, then the median over `sample_size` samples is
//! reported as ns/iter (plus throughput when declared). No statistical
//! analysis, plots, or baseline comparisons.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque optimization barrier (re-exported convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter value.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter across samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibration: size one sample at ~2 ms of work.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / iters as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        self.median_ns = samples_ns[samples_ns.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.median_ns, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.median_ns, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: 10,
            median_ns: 0.0,
        };
        f(&mut b);
        report(&id.to_string(), b.median_ns, None);
        self
    }

    /// Accepts CLI args for API compatibility (no-op).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    let time = if median_ns >= 1e6 {
        format!("{:.3} ms", median_ns / 1e6)
    } else if median_ns >= 1e3 {
        format!("{:.3} us", median_ns / 1e3)
    } else {
        format!("{median_ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / median_ns * 1e9 / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("bench: {name:<48} {time}/iter{rate}");
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..64u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("tiled", 7).to_string(), "tiled/7");
    }
}
