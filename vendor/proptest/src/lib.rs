//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators the workspace's property tests
//! use — ranges, tuples, `collection::vec`, regex-lite string
//! patterns, `Just`, `any::<bool>()`, `prop_map` / `prop_flat_map` /
//! `prop_recursive`, `prop_oneof!` and the `proptest!` runner macro —
//! over the vendored deterministic RNG. Two deliberate departures from
//! upstream: inputs are NOT shrunk on failure (the failing case index
//! is reported instead, and every case is deterministic per test name,
//! so a failure reproduces exactly on rerun), and string strategies
//! accept only the `[class]{m,n}` regex subset the tests actually use.

pub mod test_runner {
    //! Test configuration and the per-case deterministic RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration (`#![proptest_config(...)]`).
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case generator: seeded from the fully
    /// qualified test name and the case index, so failures reproduce
    /// exactly on rerun with no persistence file.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds the RNG for one (test, case) pair.
        pub fn for_case(test: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Builds a recursive strategy: `self` is the leaf case and
        /// `f` wraps an inner strategy into a deeper one, applied up
        /// to `levels` times. The `_desired_size` and `_expected_branch`
        /// hints are accepted for API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..levels {
                let deeper = f(strat).boxed();
                strat = Union::new(vec![base.clone(), deeper]).boxed();
            }
            strat
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always produces a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.source.generate(rng);
            (self.f)(mid).generate(rng)
        }
    }

    /// Uniform choice among several strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Regex-lite string generation: sequences of `[class]` atoms with
    //! optional `{m}` / `{m,n}` quantifiers. This covers every pattern
    //! the workspace tests use; unsupported syntax panics loudly.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in pattern {pattern:?}");
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    assert!(
                        !"(){}*+?|^$.".contains(c),
                        "unsupported regex syntax {c:?} in pattern {pattern:?}"
                    );
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }

    /// Parses a `[...]` class body starting just past `[`; returns the
    /// candidate alphabet and the index just past `]`.
    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                chars[i]
            } else {
                chars[i]
            };
            // `a-z` range, unless the `-` is last in the class.
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
                for v in c..=hi {
                    set.push(v);
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(
            i < chars.len(),
            "unterminated character class in pattern {pattern:?}"
        );
        assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
        (set, i + 1)
    }

    /// Parses an optional `{m}` / `{m,n}` quantifier at `i`; returns
    /// `(lo, hi, next_index)`.
    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("quantifier lower bound"),
                b.trim().parse().expect("quantifier upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        };
        assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
        (lo, hi, close + 1)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for canonical strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the property tests import with one `use`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(x in strategy, ...)` body
/// runs once per random case with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ( $($strat,)+ );
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(__case),
                );
                let ( $($pat,)+ ) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(__panic) = __outcome {
                    eprintln!(
                        "proptest: case {}/{} of `{}` failed \
                         (cases are deterministic; rerunning reproduces this)",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a property-test condition (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_their_own_grammar() {
        let mut rng = TestRng::for_case("string_patterns", 0);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = crate::string::generate_from_pattern("[a-z.*$^()!\\\\]{0,12}", &mut rng);
            assert!(t.len() <= 12);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || ".*$^()!\\".contains(c)));
            let u = crate::string::generate_from_pattern("[a-zA-Z0-9_ .:/#-]{0,20}", &mut rng);
            assert!(u.len() <= 20);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = crate::collection::vec(0usize..100, 3..=7);
        let a: Vec<Vec<usize>> = (0..8)
            .map(|i| strat.generate(&mut TestRng::for_case("det", i)))
            .collect();
        let b: Vec<Vec<usize>> = (0..8)
            .map(|i| strat.generate(&mut TestRng::for_case("det", i)))
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (3..=7).contains(&v.len())));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(
            v in prop_oneof![Just(1usize), 2usize..10, (10usize..20).prop_map(|x| x)],
            flag in any::<bool>(),
            s in "[a-c]{1,4}",
        ) {
            prop_assert!(v < 20);
            prop_assert_eq!(flag, flag);
            prop_assert!((1..=4).contains(&s.len()));
        }
    }

    proptest! {
        #[test]
        fn recursive_strategies_terminate(
            depth in (0usize..3).prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 1..3)
                    .prop_map(|v| v.into_iter().max().unwrap_or(0) + 1)
            }),
        ) {
            prop_assert!(depth < 16);
        }
    }
}
