//! Property-based tests for the injection framework: YAML round trips
//! and pattern-engine invariants.

use kt_inject::yaml::{emit, parse, Value};
use kt_inject::Pattern;
use proptest::prelude::*;

/// A strategy over YAML values the block grammar can represent.
fn value_strategy() -> impl Strategy<Value = Value> {
    let scalar = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        // Finite floats that survive to_string round trips.
        (-1.0e6f64..1.0e6).prop_map(|f| Value::Float((f * 100.0).round() / 100.0)),
        "[a-zA-Z0-9_ .:/#-]{0,20}".prop_map(Value::Str),
    ];
    scalar.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Non-empty containers only: empty ones are not
            // representable in block YAML (they emit as null).
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Value::List),
            proptest::collection::vec(("[a-z][a-z0-9_]{0,8}", inner), 1..4).prop_map(|kvs| {
                // Deduplicate keys (maps reject duplicates).
                let mut seen = std::collections::BTreeSet::new();
                Value::Map(
                    kvs.into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every emittable value parses back to itself.
    #[test]
    fn yaml_round_trips(v in value_strategy()) {
        let text = emit(&v);
        let back = parse(&text);
        prop_assert!(back.is_ok(), "parse failed on:\n{text}");
        prop_assert_eq!(back.unwrap(), v, "text was:\n{}", text);
    }

    /// The pattern engine never panics on arbitrary pattern/text pairs,
    /// and compiled patterns are deterministic.
    #[test]
    fn patterns_never_panic(
        pattern in "[a-z.*$^()!\\\\]{0,12}",
        text in "[a-z.]{0,16}",
    ) {
        if let Ok(p) = Pattern::compile(&pattern) {
            let a = p.is_match(&text);
            let b = p.is_match(&text);
            prop_assert_eq!(a, b);
        }
    }

    /// A literal pattern matches exactly the strings that contain it.
    #[test]
    fn literal_patterns_are_substring_search(
        needle in "[a-z]{1,6}",
        hay in "[a-z]{0,20}",
    ) {
        let p = Pattern::compile(&needle).unwrap();
        prop_assert_eq!(p.is_match(&hay), hay.contains(&needle));
    }

    /// Anchored exact patterns match only the exact string.
    #[test]
    fn anchored_exact_match(s in "[a-z]{1,8}", other in "[a-z]{1,8}") {
        let p = Pattern::compile(&format!("^{s}$")).unwrap();
        prop_assert!(p.is_match(&s));
        prop_assert_eq!(p.is_match(&other), other == s);
    }
}
