//! Operator registry: the replacement classes the framework knows.
//!
//! §5: optimized kernels are "packaged as ordinary PyTorch modules, so
//! they can stand in for any existing ones". The registry validates
//! that a replace clause names a real operator — a typo in a YAML file
//! fails loudly at injection time, not silently at runtime.

use std::collections::BTreeSet;

/// Registry of known replacement operator classes.
#[derive(Debug, Clone, Default)]
pub struct OperatorRegistry {
    classes: BTreeSet<String>,
}

impl OperatorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The operators shipped by this reproduction (the classes used in
    /// Listing 1 plus the CPU/linear variants).
    pub fn builtin() -> Self {
        let mut r = Self::new();
        for class in [
            "operators.experts.FusedMoE",
            "operators.attention.FlashInferMLA",
            "operators.attention.GqaAttention",
            "operators.linear.MarlinLinear",
            "operators.linear.PackedLinear",
            "operators.norm.RmsNorm",
            "operators.embedding.Embedding",
        ] {
            r.register(class);
        }
        r
    }

    /// Registers a class name.
    pub fn register(&mut self, class: impl Into<String>) {
        self.classes.insert(class.into());
    }

    /// Whether a class is known.
    pub fn contains(&self, class: &str) -> bool {
        self.classes.contains(class)
    }

    /// All registered classes (sorted).
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.classes.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_listing1_classes() {
        let r = OperatorRegistry::builtin();
        assert!(r.contains("operators.experts.FusedMoE"));
        assert!(r.contains("operators.attention.FlashInferMLA"));
        assert!(r.contains("operators.linear.MarlinLinear"));
        assert!(!r.contains("operators.experts.Bogus"));
    }

    #[test]
    fn custom_registration_works() {
        let mut r = OperatorRegistry::new();
        assert!(!r.contains("my.Op"));
        r.register("my.Op");
        assert!(r.contains("my.Op"));
        assert_eq!(r.classes().count(), 1);
    }
}
