//! A small backtracking regex engine for module-name matching.
//!
//! Supports exactly the constructs the paper's configurations use
//! (Listing 1): `^` / `$` anchors, literal characters, escaped
//! metacharacters (`\.`), the `.` wildcard, the `*` quantifier, and
//! negative lookahead groups (`^(?!lm_head$).*`). Matching uses `search`
//! semantics: an unanchored pattern may match anywhere in the string.

use crate::error::InjectError;

/// One compiled pattern element.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// A literal character.
    Lit(char),
    /// `.` — any single character.
    Any,
    /// `X*` — zero or more of the inner element.
    Star(Box<Tok>),
    /// `(?!...)` — succeeds iff the inner pattern does NOT match here.
    NegLookahead(Vec<Tok>),
    /// `$` — end of input.
    End,
}

/// A compiled name pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    toks: Vec<Tok>,
    anchored_start: bool,
    source: String,
}

impl Pattern {
    /// Compiles a pattern.
    ///
    /// # Examples
    ///
    /// ```
    /// use kt_inject::Pattern;
    ///
    /// let p = Pattern::compile(r"^model\.layers\..*\.self_attn$").unwrap();
    /// assert!(p.is_match("model.layers.12.self_attn"));
    /// assert!(!p.is_match("model.layers.12.mlp"));
    ///
    /// // Negative lookahead, as used by Listing 1's lm_head exclusion.
    /// let p = Pattern::compile(r"^(?!lm_head$).*").unwrap();
    /// assert!(p.is_match("model.norm"));
    /// assert!(!p.is_match("lm_head"));
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`InjectError::Pattern`] on unsupported or malformed
    /// syntax.
    pub fn compile(src: &str) -> Result<Self, InjectError> {
        let chars: Vec<char> = src.chars().collect();
        let mut pos = 0;
        let anchored_start = chars.first() == Some(&'^');
        if anchored_start {
            pos = 1;
        }
        let toks = parse_seq(&chars, &mut pos, src, false)?;
        if pos != chars.len() {
            return Err(err(src, format!("unexpected ')' at offset {pos}")));
        }
        Ok(Pattern {
            toks,
            anchored_start,
            source: src.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether the pattern matches anywhere in `text` (search
    /// semantics; `^`/`$` restrict as usual).
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = text.chars().collect();
        if self.anchored_start {
            return match_here(&self.toks, &chars, 0);
        }
        (0..=chars.len()).any(|start| match_here(&self.toks, &chars, start))
    }
}

fn err(src: &str, what: impl Into<String>) -> InjectError {
    InjectError::Pattern {
        pattern: src.to_string(),
        what: what.into(),
    }
}

/// Parses a token sequence until end of input or an unmatched `)` (when
/// `in_group`).
fn parse_seq(
    chars: &[char],
    pos: &mut usize,
    src: &str,
    in_group: bool,
) -> Result<Vec<Tok>, InjectError> {
    let mut toks = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        match c {
            ')' => {
                if in_group {
                    return Ok(toks);
                }
                return Err(err(src, "unmatched ')'"));
            }
            '(' => {
                if chars.get(*pos + 1) == Some(&'?') && chars.get(*pos + 2) == Some(&'!') {
                    *pos += 3;
                    let inner = parse_seq(chars, pos, src, true)?;
                    if chars.get(*pos) != Some(&')') {
                        return Err(err(src, "unterminated lookahead group"));
                    }
                    *pos += 1;
                    toks.push(Tok::NegLookahead(inner));
                } else {
                    return Err(err(src, "only (?!...) groups are supported"));
                }
            }
            '$' => {
                *pos += 1;
                toks.push(Tok::End);
            }
            '.' => {
                *pos += 1;
                toks.push(Tok::Any);
            }
            '*' => {
                *pos += 1;
                match toks.pop() {
                    Some(Tok::End) | None => {
                        return Err(err(src, "'*' must follow a matchable element"))
                    }
                    Some(Tok::Star(_)) => return Err(err(src, "'**' is not supported")),
                    Some(t) => toks.push(Tok::Star(Box::new(t))),
                }
            }
            '\\' => {
                let Some(&escaped) = chars.get(*pos + 1) else {
                    return Err(err(src, "dangling escape"));
                };
                *pos += 2;
                toks.push(Tok::Lit(escaped));
            }
            '^' => return Err(err(src, "'^' is only supported at the start")),
            other => {
                *pos += 1;
                toks.push(Tok::Lit(other));
            }
        }
    }
    if in_group {
        return Err(err(src, "unterminated group"));
    }
    Ok(toks)
}

/// Backtracking matcher: does `toks` match starting at `pos`?
fn match_here(toks: &[Tok], text: &[char], pos: usize) -> bool {
    let Some((first, rest)) = toks.split_first() else {
        return true;
    };
    match first {
        Tok::Lit(c) => text.get(pos) == Some(c) && match_here(rest, text, pos + 1),
        Tok::Any => pos < text.len() && match_here(rest, text, pos + 1),
        Tok::End => pos == text.len() && match_here(rest, text, pos),
        Tok::NegLookahead(inner) => {
            !match_here(inner, text, pos) && match_here(rest, text, pos)
        }
        Tok::Star(t) => {
            // Greedy with backtracking: consume as many as possible.
            let mut count = 0;
            while single_matches(t, text, pos + count) {
                count += 1;
            }
            loop {
                if match_here(rest, text, pos + count) {
                    return true;
                }
                if count == 0 {
                    return false;
                }
                count -= 1;
            }
        }
    }
}

fn single_matches(t: &Tok, text: &[char], pos: usize) -> bool {
    match t {
        Tok::Lit(c) => text.get(pos) == Some(c),
        Tok::Any => pos < text.len(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, text: &str) -> bool {
        Pattern::compile(pattern).unwrap().is_match(text)
    }

    #[test]
    fn literals_and_search_semantics() {
        assert!(m("attn", "model.layers.0.self_attn"));
        assert!(!m("attn", "model.layers.0.mlp"));
    }

    #[test]
    fn anchors_restrict_matches() {
        assert!(m("^model", "model.layers"));
        assert!(!m("^layers", "model.layers"));
        assert!(m("experts$", "mlp.experts"));
        assert!(!m("experts$", "mlp.experts.0"));
    }

    #[test]
    fn escaped_dot_is_literal() {
        assert!(m("^a\\.b$", "a.b"));
        assert!(!m("^a\\.b$", "axb"));
        assert!(m("^a.b$", "axb"));
    }

    #[test]
    fn star_backtracks() {
        assert!(m("^a.*b$", "a-xxx-b"));
        assert!(m("^a.*b$", "ab"));
        assert!(m("^.*\\.self_attn$", "model.layers.12.self_attn"));
        assert!(!m("^.*\\.self_attn$", "model.layers.12.self_attn.q"));
        assert!(m("^ab*c$", "ac"));
        assert!(m("^ab*c$", "abbbc"));
        assert!(!m("^ab*c$", "adc"));
    }

    #[test]
    fn listing1_attention_pattern() {
        // Line 12 of Listing 1.
        let p = Pattern::compile("^model\\.layers\\..*\\.self_attn$").unwrap();
        assert!(p.is_match("model.layers.0.self_attn"));
        assert!(p.is_match("model.layers.57.self_attn"));
        assert!(!p.is_match("model.layers.57.mlp"));
        assert!(!p.is_match("layers.57.self_attn"));
    }

    #[test]
    fn listing1_negative_lookahead_pattern() {
        // Line 18 of Listing 1: everything except lm_head.
        let p = Pattern::compile("^(?!lm_head$).*").unwrap();
        assert!(p.is_match("model.layers.0.mlp.gate"));
        assert!(p.is_match("lm_head_extra")); // lookahead needs the $
        assert!(!p.is_match("lm_head"));
    }

    #[test]
    fn malformed_patterns_are_rejected() {
        assert!(Pattern::compile("a(b)").is_err());
        assert!(Pattern::compile("(?!x").is_err());
        assert!(Pattern::compile("*a").is_err());
        assert!(Pattern::compile("a**").is_err());
        assert!(Pattern::compile("a\\").is_err());
        assert!(Pattern::compile("ab^c").is_err());
        assert!(Pattern::compile("a)b").is_err());
        assert!(Pattern::compile("$*").is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", ""));
        assert!(m("", "anything"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
    }
}
