//! Module trees: the structure the injection framework rewrites.
//!
//! Mirrors HuggingFace module naming (`model.layers.3.self_attn`,
//! `model.layers.3.mlp.experts`, `lm_head`, ...) with per-module class
//! names, so match clauses behave exactly as they do against a real
//! Transformers model.

/// One module in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleNode {
    /// Full dotted path (e.g. `model.layers.0.self_attn`).
    pub path: String,
    /// Current (possibly replaced) class name.
    pub class: String,
    /// Execution device ("meta" until placed).
    pub device: String,
    /// Keyword arguments attached by a replace clause.
    pub kwargs: Vec<(String, String)>,
    /// Child modules.
    pub children: Vec<ModuleNode>,
}

impl ModuleNode {
    /// Creates a leaf module.
    pub fn leaf(path: impl Into<String>, class: impl Into<String>) -> Self {
        ModuleNode {
            path: path.into(),
            class: class.into(),
            device: "meta".into(),
            kwargs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Creates a module with children.
    pub fn with_children(
        path: impl Into<String>,
        class: impl Into<String>,
        children: Vec<ModuleNode>,
    ) -> Self {
        ModuleNode {
            children,
            ..ModuleNode::leaf(path, class)
        }
    }
}

/// A whole model's module tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleTree {
    /// Top-level modules (`model`, `lm_head`).
    pub roots: Vec<ModuleNode>,
}

impl ModuleTree {
    /// Builds a HuggingFace-shaped MoE model tree.
    ///
    /// `class_prefix` is the modeling-module prefix (e.g.
    /// `modeling_deepseek_v3.DeepseekV3`); the first `n_dense_layers`
    /// layers carry a dense `MLP`, the rest a `MoE` with a router
    /// (`gate`), an `experts` list and, when `has_shared`, a
    /// `shared_experts` MLP.
    pub fn hf_moe_model(
        class_prefix: &str,
        n_layers: usize,
        n_dense_layers: usize,
        has_shared: bool,
    ) -> Self {
        let cls = |suffix: &str| format!("{class_prefix}{suffix}");
        let mut layer_nodes = Vec::with_capacity(n_layers);
        for i in 0..n_layers {
            let base = format!("model.layers.{i}");
            let attn = ModuleNode::with_children(
                format!("{base}.self_attn"),
                cls("Attention"),
                ["q_proj", "kv_a_proj", "kv_b_proj", "o_proj"]
                    .iter()
                    .map(|p| ModuleNode::leaf(format!("{base}.self_attn.{p}"), "torch.nn.Linear"))
                    .collect(),
            );
            let mlp = if i < n_dense_layers {
                ModuleNode::with_children(
                    format!("{base}.mlp"),
                    cls("MLP"),
                    ["gate_proj", "up_proj", "down_proj"]
                        .iter()
                        .map(|p| ModuleNode::leaf(format!("{base}.mlp.{p}"), "torch.nn.Linear"))
                        .collect(),
                )
            } else {
                let mut children = vec![
                    ModuleNode::leaf(format!("{base}.mlp.gate"), cls("TopkRouter")),
                    ModuleNode::leaf(format!("{base}.mlp.experts"), cls("ExpertList")),
                ];
                if has_shared {
                    children.push(ModuleNode::with_children(
                        format!("{base}.mlp.shared_experts"),
                        cls("MLP"),
                        ["gate_proj", "up_proj", "down_proj"]
                            .iter()
                            .map(|p| {
                                ModuleNode::leaf(
                                    format!("{base}.mlp.shared_experts.{p}"),
                                    "torch.nn.Linear",
                                )
                            })
                            .collect(),
                    ));
                }
                ModuleNode::with_children(format!("{base}.mlp"), cls("MoE"), children)
            };
            layer_nodes.push(ModuleNode::with_children(
                base.clone(),
                cls("DecoderLayer"),
                vec![
                    ModuleNode::leaf(format!("{base}.input_layernorm"), cls("RMSNorm")),
                    attn,
                    ModuleNode::leaf(format!("{base}.post_attention_layernorm"), cls("RMSNorm")),
                    mlp,
                ],
            ));
        }
        let model = ModuleNode::with_children(
            "model",
            cls("Model"),
            std::iter::once(ModuleNode::leaf("model.embed_tokens", "torch.nn.Embedding"))
                .chain(layer_nodes)
                .chain(std::iter::once(ModuleNode::leaf("model.norm", cls("RMSNorm"))))
                .collect(),
        );
        let lm_head = ModuleNode::leaf("lm_head", "torch.nn.Linear");
        ModuleTree {
            roots: vec![model, lm_head],
        }
    }

    /// Visits every node depth-first (pre-order), mutably.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut ModuleNode)) {
        fn rec(node: &mut ModuleNode, f: &mut impl FnMut(&mut ModuleNode)) {
            f(node);
            for c in &mut node.children {
                rec(c, f);
            }
        }
        for r in &mut self.roots {
            rec(r, f);
        }
    }

    /// Visits every node depth-first (pre-order).
    pub fn walk(&self, f: &mut impl FnMut(&ModuleNode)) {
        fn rec(node: &ModuleNode, f: &mut impl FnMut(&ModuleNode)) {
            f(node);
            for c in &node.children {
                rec(c, f);
            }
        }
        for r in &self.roots {
            rec(r, f);
        }
    }

    /// Finds a node by path.
    pub fn find(&self, path: &str) -> Option<&ModuleNode> {
        fn rec<'a>(node: &'a ModuleNode, path: &str) -> Option<&'a ModuleNode> {
            if node.path == path {
                return Some(node);
            }
            node.children.iter().find_map(|c| rec(c, path))
        }
        self.roots.iter().find_map(|r| rec(r, path))
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }

    /// Whether the tree has no modules.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds3_tree() -> ModuleTree {
        ModuleTree::hf_moe_model("modeling_deepseek_v3.DeepseekV3", 4, 1, true)
    }

    #[test]
    fn tree_has_expected_paths_and_classes() {
        let t = ds3_tree();
        assert_eq!(
            t.find("model.layers.0.mlp").unwrap().class,
            "modeling_deepseek_v3.DeepseekV3MLP"
        );
        assert_eq!(
            t.find("model.layers.2.mlp").unwrap().class,
            "modeling_deepseek_v3.DeepseekV3MoE"
        );
        assert_eq!(
            t.find("model.layers.2.mlp.experts").unwrap().class,
            "modeling_deepseek_v3.DeepseekV3ExpertList"
        );
        assert_eq!(t.find("lm_head").unwrap().class, "torch.nn.Linear");
        assert!(t.find("model.layers.2.mlp.shared_experts").is_some());
        assert!(t.find("model.layers.9.mlp").is_none());
    }

    #[test]
    fn qwen_style_tree_without_shared() {
        let t = ModuleTree::hf_moe_model("modeling_qwen2_moe.Qwen2Moe", 2, 0, false);
        assert!(t.find("model.layers.0.mlp.shared_experts").is_none());
        assert_eq!(
            t.find("model.layers.0.mlp").unwrap().class,
            "modeling_qwen2_moe.Qwen2MoeMoE"
        );
    }

    #[test]
    fn walk_covers_all_nodes() {
        let t = ds3_tree();
        let mut linears = 0;
        t.walk(&mut |n| {
            if n.class == "torch.nn.Linear" {
                linears += 1;
            }
        });
        // 4 layers x 4 attn projections + 1 dense MLP x 3 + 3 shared
        // MLP x 3 + lm_head.
        assert_eq!(linears, 16 + 3 + 9 + 1);
        assert!(t.len() > 30);
        assert!(!t.is_empty());
    }

    #[test]
    fn walk_mut_can_rewrite() {
        let mut t = ds3_tree();
        t.walk_mut(&mut |n| {
            if n.class.ends_with("MoE") {
                n.class = "operators.experts.FusedMoE".into();
                n.device = "cpu".into();
            }
        });
        assert_eq!(
            t.find("model.layers.2.mlp").unwrap().class,
            "operators.experts.FusedMoE"
        );
        assert_eq!(t.find("model.layers.2.mlp").unwrap().device, "cpu");
    }
}
