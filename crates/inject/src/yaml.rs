//! A hand-rolled parser for the YAML subset used by injection
//! configurations.
//!
//! Supported: block lists (`- item`), nested block maps, inline
//! scalars (`key: value`), single/double-quoted strings, integers,
//! floats, booleans, `#` comments and blank lines. This covers every
//! construct in the paper's Listing 1 and the configurations shipped
//! with KTransformers; anything else is a parse error rather than a
//! silent misread.

use crate::error::InjectError;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Explicit null (`null` / `~`) or empty value.
    Null,
    /// Boolean scalar.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// String scalar.
    Str(String),
    /// Block list.
    List(Vec<Value>),
    /// Block map (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view of a scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view of a scalar.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// List view.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Renders a scalar as a display string (for kwargs).
    pub fn scalar_string(&self) -> Option<String> {
        match self {
            Value::Str(s) => Some(s.clone()),
            Value::Int(i) => Some(i.to_string()),
            Value::Float(f) => Some(f.to_string()),
            Value::Bool(b) => Some(b.to_string()),
            Value::Null => Some("null".into()),
            _ => None,
        }
    }
}

/// Emits a value back to YAML text (block style, 2-space indent).
/// `parse(&emit(v)) == v` for every parseable value — the round-trip
/// property the test suite enforces.
pub fn emit(value: &Value) -> String {
    let mut out = String::new();
    emit_block(value, 0, &mut out);
    out
}

fn emit_scalar(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            let s = f.to_string();
            // Keep floats recognizable as floats.
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Str(s) => {
            // Quote anything that could re-parse as another type or
            // break the line grammar.
            let needs_quoting = s.is_empty()
                || s.parse::<i64>().is_ok()
                || s.parse::<f64>().is_ok()
                || ["null", "~", "true", "false", "True", "False"].contains(&s.as_str())
                || s.contains(':')
                || s.contains('#')
                || s.contains('"')
                || s.contains('\n')
                || s.starts_with(' ')
                || s.ends_with(' ')
                || s.starts_with('\'')
                || s.starts_with('-');
            if needs_quoting {
                let escaped = s
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
                    .replace('\t', "\\t");
                format!("\"{escaped}\"")
            } else {
                s.clone()
            }
        }
        Value::List(_) | Value::Map(_) => unreachable!("emit_scalar on container"),
    }
}

fn emit_block(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Value::Map(entries) => {
            for (k, v) in entries {
                match v {
                    Value::Map(m) if !m.is_empty() => {
                        out.push_str(&format!("{pad}{k}:\n"));
                        emit_block(v, indent + 1, out);
                    }
                    Value::List(l) if !l.is_empty() => {
                        out.push_str(&format!("{pad}{k}:\n"));
                        emit_block(v, indent + 1, out);
                    }
                    Value::Map(_) | Value::List(_) => {
                        // Empty containers parse back as Null; emit null.
                        out.push_str(&format!("{pad}{k}: null\n"));
                    }
                    scalar => out.push_str(&format!("{pad}{k}: {}\n", emit_scalar(scalar))),
                }
            }
        }
        Value::List(items) => {
            for item in items {
                match item {
                    Value::Map(m) if !m.is_empty() => {
                        // `- key: value` with continuation lines.
                        let mut sub = String::new();
                        emit_block(item, 0, &mut sub);
                        let mut lines = sub.lines();
                        if let Some(first) = lines.next() {
                            out.push_str(&format!("{pad}- {first}\n"));
                            let _ = m;
                            for line in lines {
                                out.push_str(&format!("{pad}  {line}\n"));
                            }
                        }
                    }
                    Value::List(l) if !l.is_empty() => {
                        // Nested list: a bare dash introduces an
                        // indented block.
                        out.push_str(&format!("{pad}-\n"));
                        emit_block(item, indent + 1, out);
                    }
                    Value::List(_) | Value::Map(_) => {
                        out.push_str(&format!("{pad}- null\n"));
                    }
                    scalar => out.push_str(&format!("{pad}- {}\n", emit_scalar(scalar))),
                }
            }
        }
        scalar => out.push_str(&format!("{pad}{}\n", emit_scalar(scalar))),
    }
}

/// One significant line: indent width, content, source line number.
#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    number: usize,
}

/// Parses a YAML document.
///
/// # Examples
///
/// ```
/// let doc = "replace:\n  class: operators.experts.FusedMoE\n  kwargs:\n    n_deferred_experts: 6";
/// let v = kt_inject::yaml::parse(doc).unwrap();
/// let kwargs = v.get("replace").unwrap().get("kwargs").unwrap();
/// assert_eq!(kwargs.get("n_deferred_experts").unwrap().as_int(), Some(6));
/// ```
///
/// # Errors
///
/// Returns [`InjectError::Yaml`] with a line number on malformed input.
pub fn parse(input: &str) -> Result<Value, InjectError> {
    let mut lines = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let number = i + 1;
        if raw.contains('\t') {
            return Err(InjectError::yaml(number, "tabs are not allowed"));
        }
        let without_comment = strip_comment(raw);
        let trimmed = without_comment.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        lines.push(Line {
            indent,
            text: trimmed.trim_start().to_string(),
            number,
        });
    }
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut idx = 0;
    let root_indent = lines[0].indent;
    let v = parse_block(&mut lines, &mut idx, root_indent)?;
    if idx != lines.len() {
        return Err(InjectError::yaml(
            lines[idx].number,
            "content at unexpected indentation",
        ));
    }
    Ok(v)
}

/// Removes a `#` comment that is not inside quotes.
fn strip_comment(line: &str) -> String {
    let mut out = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                out.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '#' {
                    break;
                }
                if c == '"' || c == '\'' {
                    quote = Some(c);
                }
                out.push(c);
            }
        }
    }
    out
}

fn parse_block(lines: &mut Vec<Line>, idx: &mut usize, indent: usize) -> Result<Value, InjectError> {
    let first = &lines[*idx];
    if first.text.starts_with("- ") || first.text == "-" {
        parse_list(lines, idx, indent)
    } else if find_key_colon(&first.text).is_none() {
        // A bare scalar document/node (e.g. a root `null`).
        let line = lines[*idx].clone();
        *idx += 1;
        parse_scalar(&line.text, line.number)
    } else {
        parse_map(lines, idx, indent)
    }
}

fn parse_list(lines: &mut Vec<Line>, idx: &mut usize, indent: usize) -> Result<Value, InjectError> {
    let mut items = Vec::new();
    while *idx < lines.len() {
        let line = lines[*idx].clone();
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(InjectError::yaml(line.number, "unexpected indentation"));
        }
        if !(line.text.starts_with("- ") || line.text == "-") {
            break;
        }
        let rest = line.text.strip_prefix('-').unwrap_or("").trim_start().to_string();
        if rest.is_empty() {
            // `-` alone: nested block on following lines.
            *idx += 1;
            if *idx >= lines.len() || lines[*idx].indent <= indent {
                items.push(Value::Null);
            } else {
                let child_indent = lines[*idx].indent;
                items.push(parse_block(lines, idx, child_indent)?);
            }
        } else {
            // Rewrite `- content` as `content` at indent + 2 and
            // re-parse: the standard list-item desugaring.
            lines[*idx] = Line {
                indent: indent + 2,
                text: rest,
                number: line.number,
            };
            items.push(parse_block(lines, idx, indent + 2)?);
        }
    }
    Ok(Value::List(items))
}

fn parse_map(lines: &mut Vec<Line>, idx: &mut usize, indent: usize) -> Result<Value, InjectError> {
    let mut entries: Vec<(String, Value)> = Vec::new();
    while *idx < lines.len() {
        let line = lines[*idx].clone();
        if line.indent < indent {
            break;
        }
        if line.indent > indent {
            return Err(InjectError::yaml(line.number, "unexpected indentation"));
        }
        if line.text.starts_with("- ") || line.text == "-" {
            break;
        }
        let Some(colon) = find_key_colon(&line.text) else {
            return Err(InjectError::yaml(line.number, "expected 'key: value'"));
        };
        let key = line.text[..colon].trim().to_string();
        if key.is_empty() {
            return Err(InjectError::yaml(line.number, "empty map key"));
        }
        if entries.iter().any(|(k, _)| *k == key) {
            return Err(InjectError::yaml(line.number, format!("duplicate key '{key}'")));
        }
        let rest = line.text[colon + 1..].trim();
        *idx += 1;
        let value = if rest.is_empty() {
            // Nested block or empty value.
            if *idx < lines.len() && lines[*idx].indent > indent {
                let child_indent = lines[*idx].indent;
                parse_block(lines, idx, child_indent)?
            } else {
                Value::Null
            }
        } else {
            parse_scalar(rest, line.number)?
        };
        entries.push((key, value));
    }
    Ok(Value::Map(entries))
}

/// Finds the `:` separating key from value (ignoring quoted colons).
fn find_key_colon(text: &str) -> Option<usize> {
    let mut quote: Option<char> = None;
    for (i, c) in text.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '"' || c == '\'' {
                    quote = Some(c);
                } else if c == ':' {
                    // A key colon must be followed by space or EOL.
                    let next = text[i + 1..].chars().next();
                    if next.is_none() || next == Some(' ') {
                        return Some(i);
                    }
                }
            }
        }
    }
    None
}

fn parse_scalar(text: &str, line: usize) -> Result<Value, InjectError> {
    if text.starts_with('"') && text.ends_with('"') && text.len() >= 2 {
        return unescape_double_quoted(&text[1..text.len() - 1], line).map(Value::Str);
    }
    if text.starts_with('\'') && text.ends_with('\'') && text.len() >= 2 {
        // Single-quoted YAML scalars are literal except '' -> '.
        return Ok(Value::Str(text[1..text.len() - 1].replace("''", "'")));
    }
    if text.starts_with('"') || text.starts_with('\'') {
        return Err(InjectError::yaml(line, "unterminated quoted string"));
    }
    match text {
        "null" | "~" => return Ok(Value::Null),
        "true" | "True" => return Ok(Value::Bool(true)),
        "false" | "False" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Ok(Value::Str(text.to_string()))
}

/// Processes the escape sequences of a double-quoted YAML scalar.
fn unescape_double_quoted(body: &str, line: usize) -> Result<String, InjectError> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some(other) => {
                return Err(InjectError::yaml(
                    line,
                    format!("unsupported escape '\\{other}' in double-quoted string"),
                ))
            }
            None => return Err(InjectError::yaml(line, "dangling escape in string")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse_with_types() {
        let v = parse("a: 3\nb: 2.5\nc: true\nd: hello\ne: \"quoted: text\"\nf: null").unwrap();
        assert_eq!(v.get("a").unwrap().as_int(), Some(3));
        assert_eq!(v.get("b"), Some(&Value::Float(2.5)));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get("e").unwrap().as_str(), Some("quoted: text"));
        assert_eq!(v.get("f"), Some(&Value::Null));
    }

    #[test]
    fn nested_maps_parse() {
        let doc = "outer:\n  inner:\n    key: value\n  other: 1";
        let v = parse(doc).unwrap();
        let inner = v.get("outer").unwrap().get("inner").unwrap();
        assert_eq!(inner.get("key").unwrap().as_str(), Some("value"));
        assert_eq!(v.get("outer").unwrap().get("other").unwrap().as_int(), Some(1));
    }

    #[test]
    fn lists_of_maps_parse() {
        let doc = "- name: a\n  x: 1\n- name: b\n  x: 2";
        let v = parse(doc).unwrap();
        let items = v.as_list().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("name").unwrap().as_str(), Some("b"));
        assert_eq!(items[1].get("x").unwrap().as_int(), Some(2));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let doc = "# header\n\na: 1  # trailing\nb: \"#notacomment\"\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_int(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("#notacomment"));
    }

    #[test]
    fn listing1_shape_parses() {
        let doc = r#"
- match:
    class: modeling_deepseek_v3.DeepseekV3MoE
  replace:
    class: operators.experts.FusedMoE
    device: "cpu"
    kwargs:
      backend: "hybrid_AMX_AVX512"
      data_type: "Int4"
      n_deferred_experts: 6

- match:
    name: "^model\\.layers\\..*\\.self_attn$"
  replace:
    class: operators.attention.FlashInferMLA
    device: "cuda:0"
"#;
        let v = parse(doc).unwrap();
        let rules = v.as_list().unwrap();
        assert_eq!(rules.len(), 2);
        let r0 = &rules[0];
        assert_eq!(
            r0.get("match").unwrap().get("class").unwrap().as_str(),
            Some("modeling_deepseek_v3.DeepseekV3MoE")
        );
        let kwargs = r0.get("replace").unwrap().get("kwargs").unwrap();
        assert_eq!(kwargs.get("n_deferred_experts").unwrap().as_int(), Some(6));
        assert_eq!(
            rules[1].get("match").unwrap().get("name").unwrap().as_str(),
            Some("^model\\.layers\\..*\\.self_attn$")
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a: 1\n\tb: 2").unwrap_err();
        assert!(e.to_string().contains("line 2"));
        let e = parse("a: 1\n   weird").unwrap_err();
        assert!(e.to_string().contains("line 2"));
        let e = parse("a: 1\na: 2").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
        let e = parse("a: \"unterminated").unwrap_err();
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("\n# only comments\n").unwrap(), Value::Null);
    }

    #[test]
    fn emit_round_trips_hand_built_values() {
        let v = Value::List(vec![Value::Map(vec![
            ("match".into(), Value::Map(vec![
                ("class".into(), Value::Str("a.B".into())),
                ("name".into(), Value::Str("^x(?!y$).*".into())),
            ])),
            ("replace".into(), Value::Map(vec![
                ("class".into(), Value::Str("ops.C".into())),
                ("device".into(), Value::Str("cuda:0".into())),
                ("count".into(), Value::Int(6)),
                ("rate".into(), Value::Float(2.5)),
                ("on".into(), Value::Bool(true)),
                ("note".into(), Value::Null),
            ])),
        ])]);
        let text = emit(&v);
        let back = parse(&text).unwrap();
        assert_eq!(v, back, "emitted:\n{text}");
    }

    #[test]
    fn emit_quotes_tricky_strings() {
        let v = Value::Map(vec![
            ("a".into(), Value::Str("42".into())),
            ("b".into(), Value::Str("true".into())),
            ("c".into(), Value::Str("has: colon".into())),
            ("d".into(), Value::Str("-starts-dash".into())),
        ]);
        let back = parse(&emit(&v)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn colon_in_value_is_preserved() {
        let v = parse("device: \"cuda:0\"").unwrap();
        assert_eq!(v.get("device").unwrap().as_str(), Some("cuda:0"));
    }
}
