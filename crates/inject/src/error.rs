//! Error type for the injection framework.

use std::fmt;

/// Errors produced while parsing configuration or rewriting trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// YAML syntax error.
    Yaml {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        what: String,
    },
    /// Invalid regex pattern.
    Pattern {
        /// The offending pattern text.
        pattern: String,
        /// Human-readable description.
        what: String,
    },
    /// Malformed rule structure.
    Rule {
        /// Human-readable description.
        what: String,
    },
    /// Replacement class not present in the operator registry.
    UnknownOperator {
        /// The unknown class name.
        class: String,
    },
}

impl InjectError {
    /// Convenience constructor for [`InjectError::Yaml`].
    pub fn yaml(line: usize, what: impl Into<String>) -> Self {
        InjectError::Yaml {
            line,
            what: what.into(),
        }
    }

    /// Convenience constructor for [`InjectError::Rule`].
    pub fn rule(what: impl Into<String>) -> Self {
        InjectError::Rule { what: what.into() }
    }
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::Yaml { line, what } => write!(f, "YAML error at line {line}: {what}"),
            InjectError::Pattern { pattern, what } => {
                write!(f, "invalid pattern '{pattern}': {what}")
            }
            InjectError::Rule { what } => write!(f, "invalid rule: {what}"),
            InjectError::UnknownOperator { class } => {
                write!(f, "unknown operator class '{class}'")
            }
        }
    }
}

impl std::error::Error for InjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        assert!(InjectError::yaml(3, "bad indent").to_string().contains("line 3"));
        let e = InjectError::UnknownOperator {
            class: "Nope".into(),
        };
        assert!(e.to_string().contains("Nope"));
    }
}
