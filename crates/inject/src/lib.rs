//! Flexible module injection framework (§5).
//!
//! KTransformers adapts a stock HuggingFace model by walking its module
//! tree and swapping matched modules for optimized implementations; a
//! single YAML file drives the process. This crate reproduces that
//! pipeline end to end, dependency-free:
//!
//! * [`yaml`] — a hand-rolled parser for the YAML subset the paper's
//!   configurations use (block lists, nested maps, quoted scalars,
//!   comments).
//! * [`pattern`] — a small backtracking regex engine covering the
//!   constructs of Listing 1: anchors, literals, escaped dots, `.`,
//!   `*`, and negative lookahead (`^(?!lm_head$).*`).
//! * [`tree`] — the module tree of a model (HuggingFace-style paths and
//!   class names), generated from a `kt_model::ModelConfig`.
//! * [`rules`] — match clauses (name regex and/or class), replace
//!   clauses (class, device, kwargs), rule parsing from YAML, and the
//!   recursive tree-rewriting pass ("whenever a module satisfies a
//!   match clause it is replaced ... and traversal continues
//!   recursively").
//! * [`registry`] — the operator registry that validates replacement
//!   classes (FusedMoE, FlashInferMLA, MarlinLinear, ...).

pub mod error;
pub mod pattern;
pub mod registry;
pub mod rules;
pub mod tree;
pub mod yaml;

pub use error::InjectError;
pub use pattern::Pattern;
pub use registry::OperatorRegistry;
pub use rules::{InjectionReport, MatchClause, ReplaceClause, Rule};
pub use tree::{ModuleNode, ModuleTree};
pub use yaml::Value;

/// Parses a rule file and applies it to a module tree, validating the
/// replacement classes against `registry`.
///
/// # Errors
///
/// Propagates parse, pattern and registry errors.
pub fn inject(
    tree: &mut ModuleTree,
    yaml_text: &str,
    registry: &OperatorRegistry,
) -> Result<InjectionReport, InjectError> {
    let rules = rules::parse_rules(yaml_text)?;
    rules::apply_rules(tree, &rules, registry)
}
