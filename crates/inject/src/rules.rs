//! Match/replace rules and the tree-rewriting pass.
//!
//! A rule file is a YAML list of `{match, replace}` entries. Match
//! clauses "identify target modules by regular-expression name
//! matching, class matching, or both"; replace clauses "specify the new
//! class, its execution device, and any keyword arguments required by
//! the kernel" (§5). The first matching rule wins per module; traversal
//! continues into children after a replacement, exactly as the paper
//! describes.

use crate::error::InjectError;
use crate::pattern::Pattern;
use crate::registry::OperatorRegistry;
use crate::tree::{ModuleNode, ModuleTree};
use crate::yaml::{self, Value};

/// A match clause: name pattern and/or class equality.
#[derive(Debug, Clone)]
pub struct MatchClause {
    /// Regex over the module path.
    pub name: Option<Pattern>,
    /// Exact class name.
    pub class: Option<String>,
}

impl MatchClause {
    /// Whether this clause matches a module.
    pub fn matches(&self, node: &ModuleNode) -> bool {
        if let Some(p) = &self.name {
            if !p.is_match(&node.path) {
                return false;
            }
        }
        if let Some(c) = &self.class {
            if *c != node.class {
                return false;
            }
        }
        true
    }
}

/// A replace clause: the injected implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaceClause {
    /// Replacement class (must be registered).
    pub class: String,
    /// Execution device (e.g. `cpu`, `cuda:0`).
    pub device: Option<String>,
    /// Operator keyword arguments, stringified.
    pub kwargs: Vec<(String, String)>,
}

/// One injection rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// What to match.
    pub match_clause: MatchClause,
    /// What to inject.
    pub replace: ReplaceClause,
}

/// Outcome of an injection pass.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    /// `(path, old class, new class)` per replacement, in traversal
    /// order.
    pub replacements: Vec<(String, String, String)>,
    /// Replacements performed by each rule (same order as the file).
    pub per_rule: Vec<usize>,
}

impl InjectionReport {
    /// Total replacements.
    pub fn total(&self) -> usize {
        self.replacements.len()
    }
}

/// Parses a YAML rule file.
///
/// # Errors
///
/// Returns [`InjectError`] on YAML/pattern/rule-structure problems.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, InjectError> {
    let doc = yaml::parse(text)?;
    let Some(items) = doc.as_list() else {
        return Err(InjectError::rule("rule file must be a YAML list"));
    };
    items.iter().map(parse_rule).collect()
}

fn parse_rule(item: &Value) -> Result<Rule, InjectError> {
    let m = item
        .get("match")
        .ok_or_else(|| InjectError::rule("rule missing 'match' clause"))?;
    let name = match m.get("name") {
        Some(v) => Some(Pattern::compile(v.as_str().ok_or_else(|| {
            InjectError::rule("'match.name' must be a string")
        })?)?),
        None => None,
    };
    let class = match m.get("class") {
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| InjectError::rule("'match.class' must be a string"))?
                .to_string(),
        ),
        None => None,
    };
    if name.is_none() && class.is_none() {
        return Err(InjectError::rule(
            "'match' needs at least one of 'name' or 'class'",
        ));
    }
    let r = item
        .get("replace")
        .ok_or_else(|| InjectError::rule("rule missing 'replace' clause"))?;
    let rclass = r
        .get("class")
        .and_then(Value::as_str)
        .ok_or_else(|| InjectError::rule("'replace.class' is required"))?
        .to_string();
    let device = r.get("device").and_then(Value::as_str).map(str::to_string);
    let kwargs = match r.get("kwargs") {
        Some(Value::Map(entries)) => entries
            .iter()
            .map(|(k, v)| {
                v.scalar_string()
                    .map(|s| (k.clone(), s))
                    .ok_or_else(|| InjectError::rule(format!("kwarg '{k}' must be a scalar")))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err(InjectError::rule("'replace.kwargs' must be a map")),
        None => Vec::new(),
    };
    Ok(Rule {
        match_clause: MatchClause { name, class },
        replace: ReplaceClause {
            class: rclass,
            device,
            kwargs,
        },
    })
}

/// Applies rules to a tree (first matching rule wins per module;
/// traversal continues through replaced modules).
///
/// # Errors
///
/// Returns [`InjectError::UnknownOperator`] if any rule names an
/// unregistered replacement class.
pub fn apply_rules(
    tree: &mut ModuleTree,
    rules: &[Rule],
    registry: &OperatorRegistry,
) -> Result<InjectionReport, InjectError> {
    for rule in rules {
        if !registry.contains(&rule.replace.class) {
            return Err(InjectError::UnknownOperator {
                class: rule.replace.class.clone(),
            });
        }
    }
    let mut report = InjectionReport {
        replacements: Vec::new(),
        per_rule: vec![0; rules.len()],
    };
    tree.walk_mut(&mut |node| {
        for (i, rule) in rules.iter().enumerate() {
            if rule.match_clause.matches(node) {
                report.replacements.push((
                    node.path.clone(),
                    node.class.clone(),
                    rule.replace.class.clone(),
                ));
                report.per_rule[i] += 1;
                node.class = rule.replace.class.clone();
                if let Some(d) = &rule.replace.device {
                    node.device = d.clone();
                }
                node.kwargs = rule.replace.kwargs.clone();
                break;
            }
        }
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 1, verbatim structure.
    const LISTING_1: &str = r#"
- match:
    class: modeling_deepseek_v3.DeepseekV3MoE
  replace:
    class: operators.experts.FusedMoE
    device: "cpu"
    kwargs:
      backend: "hybrid_AMX_AVX512"
      data_type: "Int4"
      n_deferred_experts: 6

- match:
    name: "^model\\.layers\\..*\\.self_attn$"
  replace:
    class: operators.attention.FlashInferMLA
    device: "cuda:0"

- match:
    name: "^(?!lm_head$).*"
    class: torch.nn.Linear
  replace:
    class: operators.linear.MarlinLinear
    device: "cuda:0"
    kwargs:
      data_type: "Int4"
"#;

    fn ds3_tree() -> ModuleTree {
        ModuleTree::hf_moe_model("modeling_deepseek_v3.DeepseekV3", 4, 1, true)
    }

    #[test]
    fn listing1_parses_into_three_rules() {
        let rules = parse_rules(LISTING_1).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].replace.class, "operators.experts.FusedMoE");
        assert_eq!(rules[0].replace.device.as_deref(), Some("cpu"));
        assert_eq!(
            rules[0].replace.kwargs,
            vec![
                ("backend".to_string(), "hybrid_AMX_AVX512".to_string()),
                ("data_type".to_string(), "Int4".to_string()),
                ("n_deferred_experts".to_string(), "6".to_string()),
            ]
        );
        assert!(rules[1].match_clause.name.is_some());
        assert!(rules[2].match_clause.class.as_deref() == Some("torch.nn.Linear"));
    }

    #[test]
    fn listing1_applies_like_the_paper_describes() {
        let mut tree = ds3_tree();
        let registry = OperatorRegistry::builtin();
        let rules = parse_rules(LISTING_1).unwrap();
        let report = apply_rules(&mut tree, &rules, &registry).unwrap();

        // All MoE modules -> FusedMoE on cpu with kwargs.
        let moe = tree.find("model.layers.2.mlp").unwrap();
        assert_eq!(moe.class, "operators.experts.FusedMoE");
        assert_eq!(moe.device, "cpu");
        assert!(moe
            .kwargs
            .iter()
            .any(|(k, v)| k == "n_deferred_experts" && v == "6"));

        // All self_attn modules -> FlashInferMLA on cuda:0.
        let attn = tree.find("model.layers.0.self_attn").unwrap();
        assert_eq!(attn.class, "operators.attention.FlashInferMLA");
        assert_eq!(attn.device, "cuda:0");

        // Linears become MarlinLinear... except lm_head.
        let q = tree.find("model.layers.0.self_attn.q_proj").unwrap();
        assert_eq!(q.class, "operators.linear.MarlinLinear");
        let lm = tree.find("lm_head").unwrap();
        assert_eq!(lm.class, "torch.nn.Linear");
        assert_eq!(lm.device, "meta");

        // Rule 1 hit the 3 MoE layers; rule 2 the 4 attention blocks.
        assert_eq!(report.per_rule[0], 3);
        assert_eq!(report.per_rule[1], 4);
        assert!(report.per_rule[2] > 10);
        assert_eq!(report.total(), report.per_rule.iter().sum::<usize>());
    }

    #[test]
    fn first_matching_rule_wins() {
        let text = r#"
- match:
    class: torch.nn.Linear
  replace:
    class: operators.linear.PackedLinear
- match:
    name: "lm_head"
  replace:
    class: operators.linear.MarlinLinear
"#;
        let mut tree = ds3_tree();
        let rules = parse_rules(text).unwrap();
        let registry = OperatorRegistry::builtin();
        apply_rules(&mut tree, &rules, &registry).unwrap();
        // lm_head is a Linear, so the FIRST rule claims it.
        assert_eq!(tree.find("lm_head").unwrap().class, "operators.linear.PackedLinear");
    }

    #[test]
    fn adapting_to_v2_needs_one_line_change() {
        // §5: "For related models such as DeepSeek-V2, seamless
        // integration can be achieved by simply updating the model
        // class name."
        let v2 = LISTING_1.replace("modeling_deepseek_v3.DeepseekV3MoE", "modeling_deepseek_v2.DeepseekV2MoE");
        let mut tree = ModuleTree::hf_moe_model("modeling_deepseek_v2.DeepseekV2", 3, 1, true);
        let rules = parse_rules(&v2).unwrap();
        let report = apply_rules(&mut tree, &rules, &OperatorRegistry::builtin()).unwrap();
        assert_eq!(
            tree.find("model.layers.1.mlp").unwrap().class,
            "operators.experts.FusedMoE"
        );
        assert!(report.total() > 0);
    }

    #[test]
    fn unknown_operator_fails_loudly() {
        let text = r#"
- match:
    class: torch.nn.Linear
  replace:
    class: operators.linear.Typo
"#;
        let mut tree = ds3_tree();
        let rules = parse_rules(text).unwrap();
        let err = apply_rules(&mut tree, &rules, &OperatorRegistry::builtin()).unwrap_err();
        assert!(matches!(err, InjectError::UnknownOperator { .. }));
        // Nothing was rewritten.
        assert_eq!(tree.find("lm_head").unwrap().class, "torch.nn.Linear");
    }

    #[test]
    fn malformed_rules_are_rejected() {
        assert!(parse_rules("- replace:\n    class: x").is_err());
        assert!(parse_rules("- match:\n    name: a\n").is_err());
        assert!(parse_rules("- match: {}\n  replace:\n    class: x").is_err());
        assert!(parse_rules("key: not-a-list").is_err());
        let bad_kwargs = r#"
- match:
    class: a
  replace:
    class: b
    kwargs:
      nested:
        too: deep
"#;
        assert!(parse_rules(bad_kwargs).is_err());
    }

    #[test]
    fn match_by_both_name_and_class_requires_both() {
        let text = r#"
- match:
    name: "^model\\.layers\\.0\\."
    class: torch.nn.Linear
  replace:
    class: operators.linear.MarlinLinear
"#;
        let mut tree = ds3_tree();
        let rules = parse_rules(text).unwrap();
        let report = apply_rules(&mut tree, &rules, &OperatorRegistry::builtin()).unwrap();
        // Only layer-0 linears (4 attention + 3 dense-MLP projections).
        assert_eq!(report.total(), 7);
        assert_eq!(
            tree.find("model.layers.1.self_attn.q_proj").unwrap().class,
            "torch.nn.Linear"
        );
    }
}
