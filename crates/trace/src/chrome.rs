//! Chrome-trace-format (Perfetto JSON) export.
//!
//! Produces the JSON Array Format both `chrome://tracing` and
//! <https://ui.perfetto.dev> load directly: one `"ph":"M"` metadata
//! event naming each track, then one `"ph":"X"` complete (duration)
//! event per span. Everything shares `pid` 0; the span's track becomes
//! the `tid`, so worker threads and vGPU streams render as separate
//! rows and CPU/GPU overlap is visible at a glance. Timestamps are
//! microseconds (fractional, nanosecond precision preserved) since the
//! sink epoch. One event per line, which also keeps the output trivial
//! to parse in tests.

use crate::sink::TraceSnapshot;

/// Escapes a string for a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, as a JSON number.
pub(crate) fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders a snapshot as Chrome-trace JSON.
pub fn chrome_trace(snap: &TraceSnapshot) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    // Counter totals ride in one metadata event so Perfetto sessions
    // carry run-level context (prefix-cache hit/miss totals) alongside
    // the span tracks. Emitted only when something was counted, so a
    // counter-free snapshot renders exactly as before.
    if snap.counters.iter().any(|&(_, v)| v > 0) {
        let args: Vec<String> = snap
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", k.as_str()))
            .collect();
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"kt_counters\",\"pid\":0,\"tid\":0,\
                 \"args\":{{{}}}}}",
                args.join(",")
            ),
            &mut out,
        );
    }
    for (track, name) in &snap.tracks {
        push(
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{track},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ),
            &mut out,
        );
    }
    for s in &snap.spans {
        push(
            format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"kt\",\"pid\":0,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
                s.kind.as_str(),
                s.track,
                us(s.start_ns),
                us(s.dur_ns),
                s.a,
                s.b
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Span, SpanKind};

    #[test]
    fn renders_metadata_and_events() {
        let snap = TraceSnapshot {
            spans: vec![Span {
                kind: SpanKind::Attention,
                track: 3,
                start_ns: 1_234_567,
                dur_ns: 890,
                a: 2,
                b: 0,
            }],
            tracks: vec![(3, "kt-vgpu".to_string())],
            counters: vec![],
        };
        let json = chrome_trace(&snap);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert!(json.contains(
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":3,\
             \"args\":{\"name\":\"kt-vgpu\"}}"
        ));
        assert!(json.contains("\"name\":\"engine.attention\""));
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"dur\":0.890"));
        assert!(json.contains("\"args\":{\"a\":2,\"b\":0}"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_array() {
        let json = chrome_trace(&TraceSnapshot::default());
        assert_eq!(json, "[\n\n]\n");
    }

    #[test]
    fn escapes_track_names() {
        let snap = TraceSnapshot {
            spans: vec![],
            tracks: vec![(1, "we\"ird\\name".to_string())],
            counters: vec![],
        };
        let json = chrome_trace(&snap);
        assert!(json.contains("we\\\"ird\\\\name"));
    }

    #[test]
    fn counter_totals_render_as_one_metadata_event() {
        use crate::sink::CounterKind;
        let snap = TraceSnapshot {
            spans: vec![],
            tracks: vec![],
            counters: vec![
                (CounterKind::PrefixLookups, 7),
                (CounterKind::PrefixHits, 5),
                (CounterKind::PrefixEvictedBytes, 0),
            ],
        };
        let json = chrome_trace(&snap);
        assert!(json.contains(
            "{\"ph\":\"M\",\"name\":\"kt_counters\",\"pid\":0,\"tid\":0,\
             \"args\":{\"prefix.lookups\":7,\"prefix.hits\":5,\
             \"prefix.evicted_bytes\":0}}"
        ));

        // All-zero counters leave the artifact untouched.
        let quiet = TraceSnapshot {
            spans: vec![],
            tracks: vec![],
            counters: vec![(CounterKind::PrefixLookups, 0)],
        };
        assert_eq!(chrome_trace(&quiet), "[\n\n]\n");
    }
}
