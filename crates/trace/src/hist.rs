//! Log₂-bucketed latency histogram with nearest-rank percentiles.
//!
//! [`LogHistogram`] replaces raw `Vec<u64>` sample plumbing: recording
//! is O(1) with a fixed 65-bucket footprint, histograms from different
//! sources merge exactly (merge is associative and commutative — the
//! buckets just add), and percentile queries answer within one log₂
//! bucket of the exact nearest-rank statistic over the original
//! samples. Bucket `k` (k ≥ 1) covers values in `[2^(k-1), 2^k - 1]`;
//! bucket 0 holds exact zeros, so sub-microsecond and multi-second
//! latencies coexist without configuration.

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const N_BUCKETS: usize = 65;

/// An exemplar: the id of a concrete sample representing its bucket
/// (OpenMetrics-style). Each bucket keeps the exemplar with the
/// largest value it has seen, so the worst buckets always point at a
/// real request that can be looked up in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// Identity of the sample's source (a request id in kt-serve).
    pub id: u64,
    /// The sample value itself.
    pub value: u64,
}

/// A mergeable log₂-bucketed histogram of `u64` samples (typically
/// nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; N_BUCKETS],
    exemplars: [Option<Exemplar>; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; N_BUCKETS],
            exemplars: [None; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of `v`: 0 for zero, otherwise `64 - leading_zeros`
    /// (so bucket `k` covers `[2^(k-1), 2^k - 1]`).
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Largest value bucket `i` can hold.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records every sample of an iterator.
    pub fn record_all(&mut self, vs: impl IntoIterator<Item = u64>) {
        for v in vs {
            self.record(v);
        }
    }

    /// Records one sample carrying a source id. The sample's bucket
    /// keeps whichever exemplar has the larger value, so after any
    /// stream of records each bucket's exemplar is its observed
    /// worst case.
    pub fn record_with_exemplar(&mut self, v: u64, id: u64) {
        self.record(v);
        let i = Self::bucket_index(v);
        let candidate = Exemplar { id, value: v };
        match self.exemplars[i] {
            Some(e) if e.value >= v => {}
            _ => self.exemplars[i] = Some(candidate),
        }
    }

    /// Exemplar representing bucket `i`, if any sample with an id
    /// landed there.
    pub fn exemplar(&self, i: usize) -> Option<Exemplar> {
        self.exemplars[i]
    }

    /// The exemplar from the highest non-empty bucket that has one —
    /// the request to look at first when the tail regresses.
    pub fn worst_exemplar(&self) -> Option<Exemplar> {
        self.exemplars.iter().rev().flatten().next().copied()
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (exact), `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (exact), `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in bucket `i` (for exposition formats).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Folds another histogram in. Exact: merging then querying equals
    /// querying a histogram fed both sample streams.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        for (e, o) in self.exemplars.iter_mut().zip(&other.exemplars) {
            // Keep the larger-valued exemplar per bucket (ties broken
            // by id), so merge stays commutative.
            *e = match (*e, *o) {
                (Some(a), Some(b)) => {
                    Some(if (a.value, a.id) >= (b.value, b.id) { a } else { b })
                }
                (a, b) => a.or(b),
            };
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile (p in `[0, 100]`; 50 = median, 100 =
    /// max). Returns `None` when empty. The answer lands in the same
    /// log₂ bucket as the exact nearest-rank order statistic: the
    /// bucket's upper bound, clamped to the observed maximum.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        for k in 1..=63 {
            let ub = LogHistogram::bucket_upper_bound(k);
            assert_eq!(LogHistogram::bucket_index(ub), k);
            assert_eq!(LogHistogram::bucket_index(ub + 1), k + 1);
        }
        assert_eq!(LogHistogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.min(), None);
        h.record_all([10, 20, 30, 0]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(30));
        assert_eq!(h.mean(), Some(15.0));
    }

    #[test]
    fn percentile_tracks_exact_bucket() {
        let mut h = LogHistogram::new();
        let samples: Vec<u64> = (1..=200).map(|i| i * 7).collect();
        h.record_all(samples.iter().copied());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            let approx = h.percentile(p).unwrap();
            assert_eq!(
                LogHistogram::bucket_index(approx),
                LogHistogram::bucket_index(exact),
                "p={p}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.percentile(100.0), Some(1400), "p100 is the exact max");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [0u64, 3, 9, 1000, 77] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 5, 123456789] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    /// Asserts nearest-rank `p` lands in the same log₂ bucket as the
    /// exact order statistic over `samples`, and that `max()` is exact.
    fn assert_tail_within_one_bucket(samples: &[u64], ps: &[f64]) {
        let mut h = LogHistogram::new();
        h.record_all(samples.iter().copied());
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for &p in ps {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            let approx = h.percentile(p).unwrap();
            assert_eq!(
                LogHistogram::bucket_index(approx),
                LogHistogram::bucket_index(exact),
                "p={p}: approx {approx} vs exact {exact}"
            );
            assert!(approx >= exact, "bucket upper bound never underestimates");
        }
        assert_eq!(h.max(), sorted.last().copied(), "max is exact");
        assert_eq!(h.percentile(100.0), sorted.last().copied());
    }

    #[test]
    fn tail_accuracy_bimodal() {
        // 2000 fast samples around 50µs, 4 stragglers around 1.3s: the
        // p999 straddles the modes and p100/max sit deep in the gap.
        let mut samples: Vec<u64> = (0..2000u64).map(|i| 50_000 + (i * 37) % 4096).collect();
        samples.extend([1_300_000_000u64, 1_310_000_000, 1_350_000_000, 1_400_000_000]);
        assert_tail_within_one_bucket(&samples, &[50.0, 99.0, 99.9, 100.0]);
    }

    #[test]
    fn tail_accuracy_heavy_tail() {
        // Deterministic Pareto-like tail: value ~ 1000 * (n/i)^2 spans
        // six orders of magnitude with most mass at the bottom.
        let n = 5000u64;
        let samples: Vec<u64> = (1..=n).map(|i| 1000 * (n / i) * (n / i)).collect();
        assert_tail_within_one_bucket(&samples, &[50.0, 90.0, 99.0, 99.9, 100.0]);
    }

    #[test]
    fn exemplars_track_bucket_worst_case_and_survive_merge() {
        let mut a = LogHistogram::new();
        a.record_with_exemplar(100, 1);
        a.record_with_exemplar(120, 2); // same bucket [64,127], larger value wins
        a.record_with_exemplar(110, 3); // smaller than 120: ignored
        a.record_with_exemplar(5_000, 4);
        let b7 = LogHistogram::bucket_index(120);
        assert_eq!(a.exemplar(b7), Some(Exemplar { id: 2, value: 120 }));
        assert_eq!(a.worst_exemplar(), Some(Exemplar { id: 4, value: 5_000 }));

        let mut b = LogHistogram::new();
        b.record_with_exemplar(90, 9); // same bucket as 120, smaller value
        b.record_with_exemplar(1 << 40, 10);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "exemplar merge is commutative");
        assert_eq!(ab.exemplar(b7), Some(Exemplar { id: 2, value: 120 }), "larger value survives merge");
        assert_eq!(ab.worst_exemplar(), Some(Exemplar { id: 10, value: 1 << 40 }));
        // Plain record leaves exemplars untouched.
        let mut plain = LogHistogram::new();
        plain.record(42);
        assert_eq!(plain.exemplar(LogHistogram::bucket_index(42)), None);
        assert_eq!(plain.worst_exemplar(), None);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record_all([4, 8, 15]);
        let before = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, before);
        let mut e = LogHistogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
