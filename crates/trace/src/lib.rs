//! Observability for the KTransformers reproduction.
//!
//! The paper's headline claims are latency *decompositions* — Figure
//! 4's launch-overhead breakdown, §3.3's CPU/GPU overlap, Figure 10's
//! prefill/decode split. This crate provides the instrumentation layer
//! that makes those decompositions observable in our own runs:
//!
//! * [`sink`] — lock-free per-thread span recording behind a global
//!   enabled flag. A disabled instrumentation point costs one relaxed
//!   atomic load; an enabled one records into the calling thread's ring
//!   buffer without locks or allocation. Spans carry a phase
//!   ([`SpanKind`]), a track (worker thread or vGPU stream), and two
//!   kind-specific labels (layer, sequence count, bytes, …).
//! * [`chrome`] — a Chrome-trace-format (Perfetto JSON) exporter: a
//!   serving run with tracing enabled produces a timeline loadable in
//!   <https://ui.perfetto.dev>, with one row per worker thread and one
//!   per vGPU stream, so CPU expert execution visibly overlapping the
//!   GPU stream is an *artifact*, not an assertion.
//! * [`hist`] — [`LogHistogram`], a log₂-bucketed mergeable latency
//!   histogram with nearest-rank percentile queries and per-bucket
//!   [`Exemplar`]s; the serving layer and the bench binaries aggregate
//!   queue-wait/TTFT/inter-token samples through it instead of
//!   hoarding raw `Vec<u64>`s.
//! * [`ctx`] — request-scoped trace context ([`TraceCtx`]) and latency
//!   attribution: per-[`SpanKind`] phase deltas around a step map onto
//!   named [`Component`]s whose sum is bounded by the step wall time,
//!   accumulating into a per-request [`RequestBreakdown`].
//! * [`flight`] — the tail-latency [`FlightRecorder`]: a bounded ring
//!   of recently completed per-request span sets in which any request
//!   resolving with an SLO violation (or shed/failed) is frozen, each
//!   exportable as a per-request Perfetto track group.
//!
//! Enable tracing programmatically ([`enable`]) or by setting
//! `KT_TRACE=1` in the environment ([`enable_from_env`] is called on
//! engine and server construction).

pub mod chrome;
pub mod ctx;
pub mod flight;
pub mod hist;
pub mod sink;

pub use chrome::chrome_trace;
pub use ctx::{step_components, Component, RequestBreakdown, TraceCtx, N_COMPONENTS};
pub use flight::{
    FlightRecorder, RequestTrace, StepTrace, TraceOutcome, DEFAULT_CAPTURED_CAP,
    DEFAULT_RECENT_CAP, REQUEST_TRACK_BASE,
};
pub use hist::{Exemplar, LogHistogram};
pub use sink::{
    counter_add, disable, enable, enable_from_env, enabled, instant, now_ns, record_on, sink,
    span, span_ab, stream_track, CounterKind, Ring, Span, SpanGuard, SpanKind, TraceSink,
    TraceSnapshot, DEFAULT_RING_SPANS, N_COUNTERS, N_SPAN_KINDS, STREAM_TRACK_BASE,
};
