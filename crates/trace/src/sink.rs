//! Lock-free per-thread span recording.
//!
//! The design target is a hot path that costs **one relaxed atomic
//! load** when tracing is disabled: every instrumentation point calls
//! [`enabled`] first and constructs nothing when it returns false.
//! When tracing is on, each thread records spans into its own
//! fixed-capacity ring buffer ([`Ring`]) registered with a process-wide
//! [`TraceSink`]; recording takes no locks and allocates nothing.
//!
//! Each ring is single-producer (the owning thread) / any-consumer
//! (the exporter). Slots use a per-slot seqlock — the writer marks the
//! slot odd while overwriting and stamps it with the span index when
//! done — so the exporter can snapshot a live ring without stopping
//! writers and discard exactly the slots that were mid-overwrite. The
//! ring keeps the newest `capacity` spans; older spans are overwritten.
//!
//! Tracks: every registered ring gets a unique *track* id (one track
//! per worker thread in the exported timeline), and a reserved id range
//! starting at [`STREAM_TRACK_BASE`] maps virtual-GPU streams to their
//! own tracks, so CPU/GPU overlap is visible even though every stream
//! op executes on the single device thread.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans each ring holds before overwriting the oldest (per thread).
pub const DEFAULT_RING_SPANS: usize = 1 << 15;

/// First track id reserved for virtual-GPU streams (stream `s` maps to
/// `STREAM_TRACK_BASE + s`). Thread tracks are assigned from 1 upward
/// and never reach this range.
pub const STREAM_TRACK_BASE: u32 = 1 << 30;

/// Track id of virtual-GPU stream `stream`.
pub fn stream_track(stream: usize) -> u32 {
    STREAM_TRACK_BASE + stream as u32
}

/// What a span measures. The `a`/`b` labels carried alongside are
/// kind-specific: layer index for engine phases, batch geometry for
/// scheduler spans, byte counts for arena events (see each variant).
#[repr(u32)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole engine step (`a` = new tokens, `b` = sequences).
    EngineStep = 0,
    /// Embedding lookup + step workspace turnover.
    Embed,
    /// Per-layer attention (+ dense MLP on dense layers); `a` = layer.
    Attention,
    /// Router gating inside the submit callback; `a` = layer.
    Gating,
    /// The submit host callback: routing, deferral split, CPU task
    /// enqueue; `a` = layer.
    ExpertDispatch,
    /// Immediate routed-expert execution on a CPU worker; `a` = layer.
    CpuExpertImmediate,
    /// Deferred routed-expert execution on a CPU worker; `a` = layer.
    CpuExpertDeferred,
    /// Shared experts (+ GPU-pinned routed experts); `a` = layer.
    SharedExperts,
    /// The merge kernel's spin-wait on CPU completion; `a` = layer.
    MergeSpin,
    /// Scatter-add of immediate expert output into the residual
    /// stream; `a` = layer.
    ScatterAdd,
    /// Fold of the *previous* MoE layer's deferred output (§4.1);
    /// `a` = the layer whose deferred output is flushed.
    DeferralFlush,
    /// Final norm + LM head GEMMs (`a` = logits rows).
    LmHead,
    /// Simulated launch latency on a vGPU stream track.
    VgpuLaunch,
    /// Kernel-op execution on a vGPU stream track.
    VgpuKernel,
    /// Host-func execution on a vGPU stream track (§3.3 callbacks).
    VgpuHostFunc,
    /// Graph replay submission (instant; `b` = ops in the graph).
    VgpuGraphReplay,
    /// One scheduler step (`a` = scheduled sequences, `b` = tokens).
    ServeStep,
    /// Request admission (instant; `a` = request tag — the low 32 bits
    /// of the server-assigned request id — `b` = queue wait in µs,
    /// saturated).
    ServeAdmit,
    /// One prefill chunk fed through a step (`a` = chunk tokens,
    /// `b` = request tag).
    ServePrefillChunk,
    /// Fresh arena allocation (instant; `a` = bytes, saturated).
    ArenaAlloc,
    /// Prefix-cache lookup at admission (instant; `a` = prompt tokens,
    /// `b` = matched tokens).
    PrefixLookup,
    /// Seeding a lease from a prefix snapshot (`a` = seeded tokens,
    /// `b` = layers).
    PrefixSeed,
    /// Prefix-cache eviction (instant; `a` = bytes freed, saturated;
    /// `b` = segments evicted).
    PrefixEvict,
    /// A queued request shed by the admission controller (instant;
    /// `a` = SLO class index, `b` = negative predicted slack in µs,
    /// saturated).
    ServeShed,
    /// A resolved request that missed an SLO target (instant; `a` =
    /// SLO class index, `b` = 0 for a TTFT miss, 1 for an ITL miss).
    ServeSloViolation,
    /// Cache-resident routed experts executing on the vGPU under
    /// dynamic placement; `a` = layer.
    GpuExperts,
    /// Per-sequence attention inside the batched attention op, emitted
    /// only for tagged (request-scoped) sequences; `a` = request tag
    /// (low 32 bits of the request id), `b` = layer.
    SeqAttention,
    /// Residency bookkeeping for the VRAM expert cache inside the
    /// dispatch callback — the touch/request/split pass that decides
    /// which experts pay the (modeled) PCIe upload; `a` = layer,
    /// `b` = non-resident experts admitted this step. In the harness
    /// the upload itself is a cost-model term with no wall time, so
    /// this span carries the real bookkeeping cost and reserves the
    /// attribution slot a real-GPU port would fill with copy time.
    PcieUpload,
    /// A running sequence preempted by the scheduler under KV page
    /// pressure (instant; `a` = request tag, `b` = pages released).
    ServePreempt,
    /// A preempted sequence's KV pages copied to the swap tier;
    /// `a` = bytes (saturated), `b` = request tag.
    KvSwapOut,
    /// A swapped sequence's KV rows restored into a fresh lease;
    /// `a` = bytes (saturated), `b` = request tag.
    KvSwapIn,
}

/// Number of [`SpanKind`] variants (the phase table's size).
pub const N_SPAN_KINDS: usize = 31;

impl SpanKind {
    /// Stable display name (also the Chrome-trace event name).
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::EngineStep => "engine.step",
            SpanKind::Embed => "engine.embed",
            SpanKind::Attention => "engine.attention",
            SpanKind::Gating => "engine.gating",
            SpanKind::ExpertDispatch => "engine.dispatch",
            SpanKind::CpuExpertImmediate => "cpu.expert_immediate",
            SpanKind::CpuExpertDeferred => "cpu.expert_deferred",
            SpanKind::SharedExperts => "engine.shared_experts",
            SpanKind::MergeSpin => "engine.merge_spin",
            SpanKind::ScatterAdd => "engine.scatter_add",
            SpanKind::DeferralFlush => "engine.deferral_flush",
            SpanKind::LmHead => "engine.lm_head",
            SpanKind::VgpuLaunch => "vgpu.launch",
            SpanKind::VgpuKernel => "vgpu.kernel",
            SpanKind::VgpuHostFunc => "vgpu.host_func",
            SpanKind::VgpuGraphReplay => "vgpu.graph_replay",
            SpanKind::ServeStep => "serve.step",
            SpanKind::ServeAdmit => "serve.admit",
            SpanKind::ServePrefillChunk => "serve.prefill_chunk",
            SpanKind::ArenaAlloc => "arena.alloc",
            SpanKind::PrefixLookup => "prefix.lookup",
            SpanKind::PrefixSeed => "prefix.seed",
            SpanKind::PrefixEvict => "prefix.evict",
            SpanKind::ServeShed => "serve.shed",
            SpanKind::ServeSloViolation => "serve.slo_violation",
            SpanKind::GpuExperts => "engine.gpu_experts",
            SpanKind::SeqAttention => "engine.seq_attention",
            SpanKind::PcieUpload => "vgpu.pcie_upload",
            SpanKind::ServePreempt => "serve.preempt",
            SpanKind::KvSwapOut => "kv.swap_out",
            SpanKind::KvSwapIn => "kv.swap_in",
        }
    }

    /// Every span kind, in `repr` order (index = `kind as usize`).
    pub const ALL: [SpanKind; N_SPAN_KINDS] = [
        SpanKind::EngineStep,
        SpanKind::Embed,
        SpanKind::Attention,
        SpanKind::Gating,
        SpanKind::ExpertDispatch,
        SpanKind::CpuExpertImmediate,
        SpanKind::CpuExpertDeferred,
        SpanKind::SharedExperts,
        SpanKind::MergeSpin,
        SpanKind::ScatterAdd,
        SpanKind::DeferralFlush,
        SpanKind::LmHead,
        SpanKind::VgpuLaunch,
        SpanKind::VgpuKernel,
        SpanKind::VgpuHostFunc,
        SpanKind::VgpuGraphReplay,
        SpanKind::ServeStep,
        SpanKind::ServeAdmit,
        SpanKind::ServePrefillChunk,
        SpanKind::ArenaAlloc,
        SpanKind::PrefixLookup,
        SpanKind::PrefixSeed,
        SpanKind::PrefixEvict,
        SpanKind::ServeShed,
        SpanKind::ServeSloViolation,
        SpanKind::GpuExperts,
        SpanKind::SeqAttention,
        SpanKind::PcieUpload,
        SpanKind::ServePreempt,
        SpanKind::KvSwapOut,
        SpanKind::KvSwapIn,
    ];

    fn from_u32(v: u32) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

/// Process-wide monotonic counters exported alongside spans.
///
/// Counters complement spans: a span records *when* something happened
/// on a track; a counter accumulates *how much* across the whole run
/// (prefix-cache hit/miss totals, evicted bytes). Recording is one
/// relaxed `fetch_add` behind the same [`enabled`] gate as spans, and
/// totals ride into [`TraceSnapshot::counters`] so the Chrome-trace
/// metadata block carries them into Perfetto sessions.
#[repr(usize)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// Prefix-cache lookups at admission.
    PrefixLookups = 0,
    /// Lookups that matched at least `min_prefix_len` tokens.
    PrefixHits,
    /// Lookups that matched nothing reusable.
    PrefixMisses,
    /// Total prompt tokens served from cached prefixes.
    PrefixHitTokens,
    /// Bytes freed by prefix-cache eviction.
    PrefixEvictedBytes,
    /// Slack predictions computed by the admission controller.
    SlackPredictions,
    /// Queued requests shed by the admission controller.
    SloShed,
    /// Resolved requests that missed their TTFT target.
    SloTtftViolations,
    /// Resolved requests with at least one inter-token gap over the
    /// ITL target.
    SloItlViolations,
    /// Expert activations served from the VRAM expert cache (dynamic
    /// placement; see `kt_core::placement::dynamic`).
    ExpertCacheHits,
    /// Expert activations that ran without a resident copy (CPU
    /// execution, or a GPU run paying the PCIe upload).
    ExpertCacheMisses,
    /// Bytes freed by expert-cache eviction.
    ExpertCacheEvictedBytes,
    /// Sequences preempted by swapping their KV pages out.
    PreemptSwap,
    /// Sequences preempted by dropping their KV pages for recompute.
    PreemptRecompute,
    /// Prompt rows seeded by whole-page reference instead of row copy
    /// (the zero-copy half of a paged prefix hit).
    PrefixSharedRows,
}

/// Number of [`CounterKind`] variants (the counter table's size).
pub const N_COUNTERS: usize = 15;

impl CounterKind {
    /// Every counter, in `repr` order.
    pub const ALL: [CounterKind; N_COUNTERS] = [
        CounterKind::PrefixLookups,
        CounterKind::PrefixHits,
        CounterKind::PrefixMisses,
        CounterKind::PrefixHitTokens,
        CounterKind::PrefixEvictedBytes,
        CounterKind::SlackPredictions,
        CounterKind::SloShed,
        CounterKind::SloTtftViolations,
        CounterKind::SloItlViolations,
        CounterKind::ExpertCacheHits,
        CounterKind::ExpertCacheMisses,
        CounterKind::ExpertCacheEvictedBytes,
        CounterKind::PreemptSwap,
        CounterKind::PreemptRecompute,
        CounterKind::PrefixSharedRows,
    ];

    /// Stable display name (also the Chrome-trace metadata key).
    pub fn as_str(self) -> &'static str {
        match self {
            CounterKind::PrefixLookups => "prefix.lookups",
            CounterKind::PrefixHits => "prefix.hits",
            CounterKind::PrefixMisses => "prefix.misses",
            CounterKind::PrefixHitTokens => "prefix.hit_tokens",
            CounterKind::PrefixEvictedBytes => "prefix.evicted_bytes",
            CounterKind::SlackPredictions => "slo.slack_predictions",
            CounterKind::SloShed => "slo.shed",
            CounterKind::SloTtftViolations => "slo.ttft_violations",
            CounterKind::SloItlViolations => "slo.itl_violations",
            CounterKind::ExpertCacheHits => "expert_cache.hits",
            CounterKind::ExpertCacheMisses => "expert_cache.misses",
            CounterKind::ExpertCacheEvictedBytes => "expert_cache.evicted_bytes",
            CounterKind::PreemptSwap => "preempt.swap",
            CounterKind::PreemptRecompute => "preempt.recompute",
            CounterKind::PrefixSharedRows => "prefix.shared_rows",
        }
    }
}

/// One recorded span, decoded from a ring slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the span measures.
    pub kind: SpanKind,
    /// Track the span renders on (thread track or stream track).
    pub track: u32,
    /// Start, nanoseconds since the sink's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 = instant event).
    pub dur_ns: u64,
    /// Kind-specific label (see [`SpanKind`]).
    pub a: u32,
    /// Kind-specific label (see [`SpanKind`]).
    pub b: u32,
}

impl Span {
    /// End timestamp, nanoseconds since the sink's epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Whether two spans overlap in time (half-open intervals).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start_ns < other.end_ns() && other.start_ns < self.end_ns()
    }
}

/// One ring slot: a seqlock word plus the packed span payload
/// (`kind|track`, `start_ns`, `dur_ns`, `a|b`).
///
/// `seq` is `2*i + 1` while span `i` is being written and `2*i + 2`
/// once it is complete, so a reader can both detect torn reads and
/// verify *which* span the slot holds.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

/// A single-producer span ring buffer bound to one track.
///
/// `record` must only be called by the owning thread (the one the ring
/// was registered for); concurrent writers would interleave slots and
/// lose spans, though never corrupt memory. Snapshots may run from any
/// thread at any time.
pub struct Ring {
    track: u32,
    name: String,
    slots: Box<[Slot]>,
    /// Completed spans ever recorded (monotonic; slot = index % cap).
    head: AtomicU64,
}

impl Ring {
    fn new(track: u32, name: String, capacity: usize) -> Ring {
        let slots: Box<[Slot]> = (0..capacity.max(1)).map(|_| Slot::default()).collect();
        Ring {
            track,
            name,
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Track this ring's spans render on by default.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Human-readable track name (usually the thread name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Completed spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Records one span. Single-producer: only the owning thread.
    pub fn record(
        &self,
        kind: SpanKind,
        track: Option<u32>,
        start_ns: u64,
        dur_ns: u64,
        a: u32,
        b: u32,
    ) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        // Seqlock write: mark the slot odd (the Acquire swap keeps the
        // payload stores from floating above it), store the payload,
        // stamp the slot even with the span index, then publish.
        slot.seq.swap(2 * i + 1, Ordering::Acquire);
        let track = track.unwrap_or(self.track);
        slot.words[0].store(
            (kind as u32 as u64) | ((track as u64) << 32),
            Ordering::Relaxed,
        );
        slot.words[1].store(start_ns, Ordering::Relaxed);
        slot.words[2].store(dur_ns, Ordering::Relaxed);
        slot.words[3].store((a as u64) | ((b as u64) << 32), Ordering::Relaxed);
        slot.seq.store(2 * i + 2, Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Copies every span still resident in the ring into `out`, oldest
    /// first. Spans mid-overwrite during the snapshot are skipped.
    fn snapshot_into(&self, out: &mut Vec<Span>) {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        for i in head.saturating_sub(cap)..head {
            let slot = &self.slots[(i % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != 2 * i + 2 {
                continue;
            }
            let w: [u64; 4] = std::array::from_fn(|k| slot.words[k].load(Ordering::Relaxed));
            // Seqlock validation: the payload loads must settle before
            // the stamp is re-checked (same fence crossbeam's seqlock
            // readers use).
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != 2 * i + 2 {
                continue;
            }
            let Some(kind) = SpanKind::from_u32(w[0] as u32) else {
                continue;
            };
            out.push(Span {
                kind,
                track: (w[0] >> 32) as u32,
                start_ns: w[1],
                dur_ns: w[2],
                a: w[3] as u32,
                b: (w[3] >> 32) as u32,
            });
        }
    }
}

/// Everything a snapshot captured: spans (grouped by ring, oldest first
/// within each ring) and the track-id → name table.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Recorded spans, per-ring order preserved.
    pub spans: Vec<Span>,
    /// `(track id, display name)` pairs, registration order.
    pub tracks: Vec<(u32, String)>,
    /// Counter totals at snapshot time, [`CounterKind::ALL`] order.
    pub counters: Vec<(CounterKind, u64)>,
}

/// The span registry: an enabled flag, the shared timebase, and every
/// ring registered by a recording thread.
///
/// Most code uses the process-global instance via [`sink`] and the
/// free functions ([`span`], [`instant`], [`record_on`]); constructing
/// standalone sinks is for tests that need isolated registries.
pub struct TraceSink {
    enabled: AtomicBool,
    epoch: Instant,
    next_thread_track: AtomicU32,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Names for tracks without a ring of their own (vGPU streams).
    extra_tracks: Mutex<Vec<(u32, String)>>,
    /// Monotonic counter table, indexed by [`CounterKind`].
    counters: [AtomicU64; N_COUNTERS],
    /// Cumulative span-kind durations in nanoseconds, indexed by
    /// [`SpanKind`]. Fed by every armed [`SpanGuard`] on drop; readers
    /// difference two [`TraceSink::phase_snapshot`]s around a region to
    /// get per-kind time spent inside it (the per-step latency
    /// attribution in `kt-serve` is built on exactly that).
    phases: [AtomicU64; N_SPAN_KINDS],
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Creates an empty, disabled sink with its epoch at "now".
    pub fn new() -> TraceSink {
        TraceSink {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_thread_track: AtomicU32::new(1),
            rings: Mutex::new(Vec::new()),
            extra_tracks: Mutex::new(Vec::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phases: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Already-recorded spans stay exportable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on (one relaxed load — the disabled-path
    /// cost of every instrumentation point).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this sink's epoch (the shared timebase all
    /// spans are stamped in).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Registers a new ring on the next free thread track.
    pub fn register_ring(&self, name: &str) -> Arc<Ring> {
        self.register_ring_with_capacity(name, DEFAULT_RING_SPANS)
    }

    /// Registers a new ring holding at most `capacity` spans.
    pub fn register_ring_with_capacity(&self, name: &str, capacity: usize) -> Arc<Ring> {
        let track = self.next_thread_track.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Ring::new(track, name.to_string(), capacity));
        self.rings.lock().expect("ring registry").push(Arc::clone(&ring));
        ring
    }

    /// Names a track that has no ring of its own (vGPU stream tracks).
    /// Idempotent: renaming an already-named track is a no-op.
    pub fn name_track(&self, track: u32, name: &str) {
        let mut extra = self.extra_tracks.lock().expect("track names");
        if extra.iter().all(|(t, _)| *t != track) {
            extra.push((track, name.to_string()));
        }
    }

    /// Adds `delta` to a monotonic counter (one relaxed `fetch_add`).
    #[inline]
    pub fn add_counter(&self, kind: CounterKind, delta: u64) {
        self.counters[kind as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current total of one counter.
    pub fn counter(&self, kind: CounterKind) -> u64 {
        self.counters[kind as usize].load(Ordering::Relaxed)
    }

    /// Adds `dur_ns` to one span kind's cumulative phase time (called
    /// by every armed span guard on drop; one relaxed `fetch_add`).
    #[inline]
    pub fn add_phase(&self, kind: SpanKind, dur_ns: u64) {
        self.phases[kind as usize].fetch_add(dur_ns, Ordering::Relaxed);
    }

    /// Cumulative nanoseconds spent in spans of `kind` since process
    /// start (only windows where tracing was enabled accumulate).
    pub fn phase_ns(&self, kind: SpanKind) -> u64 {
        self.phases[kind as usize].load(Ordering::Relaxed)
    }

    /// Copies the whole phase table, [`SpanKind::ALL`] order. Two
    /// snapshots differenced around a region give per-kind time inside
    /// it; loads are relaxed, so concurrent writers may leak a few
    /// nanoseconds across the boundary — callers absorb that in their
    /// attribution tolerance.
    pub fn phase_snapshot(&self) -> [u64; N_SPAN_KINDS] {
        std::array::from_fn(|i| self.phases[i].load(Ordering::Relaxed))
    }

    /// Snapshots every ring (skipping slots mid-overwrite) plus the
    /// track-name table and counter totals. Safe to call while threads
    /// keep recording.
    pub fn snapshot(&self) -> TraceSnapshot {
        let rings: Vec<Arc<Ring>> = self.rings.lock().expect("ring registry").clone();
        let mut spans = Vec::new();
        let mut tracks: Vec<(u32, String)> = Vec::new();
        for ring in &rings {
            ring.snapshot_into(&mut spans);
            tracks.push((ring.track(), ring.name().to_string()));
        }
        tracks.extend(self.extra_tracks.lock().expect("track names").iter().cloned());
        let counters = CounterKind::ALL
            .iter()
            .map(|&k| (k, self.counter(k)))
            .collect();
        TraceSnapshot { spans, tracks, counters }
    }

    /// Exports the current snapshot as Chrome-trace JSON (see
    /// [`crate::chrome::chrome_trace`]).
    pub fn export_chrome(&self) -> String {
        crate::chrome::chrome_trace(&self.snapshot())
    }
}

static GLOBAL: OnceLock<TraceSink> = OnceLock::new();

/// The process-global sink every instrumentation point records into.
pub fn sink() -> &'static TraceSink {
    GLOBAL.get_or_init(TraceSink::new)
}

/// Whether global tracing is on. The disabled path is one `OnceLock`
/// pointer read plus one relaxed bool load; before the sink is first
/// touched it is just the pointer read.
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some_and(TraceSink::is_enabled)
}

/// Enables global tracing.
pub fn enable() {
    sink().enable();
}

/// Disables global tracing (recorded spans stay exportable).
pub fn disable() {
    sink().disable();
}

/// Enables global tracing when the `KT_TRACE` environment variable is
/// set to `1`, `true`, or `on` (the serving/engine construction paths
/// call this, so any run can be traced without code changes).
pub fn enable_from_env() {
    if let Some(v) = std::env::var_os("KT_TRACE") {
        if matches!(v.to_str(), Some("1") | Some("true") | Some("on")) {
            enable();
        }
    }
}

thread_local! {
    /// The calling thread's ring, registered on first record.
    static THREAD_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

fn with_thread_ring(f: impl FnOnce(&Ring)) {
    THREAD_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        let ring = slot.get_or_insert_with(|| {
            let current = std::thread::current();
            let name = current
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{:?}", current.id()));
            sink().register_ring(&name)
        });
        f(ring);
    });
}

/// An in-flight span: records on drop. Construct via [`span`] /
/// [`span_ab`]; when tracing is disabled the guard is inert and the
/// constructor touched no clock.
#[must_use = "the span measures until the guard drops"]
pub struct SpanGuard {
    kind: SpanKind,
    start_ns: u64,
    a: u32,
    b: u32,
    armed: bool,
}

impl SpanGuard {
    /// Updates the labels after construction (e.g. once a count is
    /// known at the end of the measured region).
    pub fn set_labels(&mut self, a: u32, b: u32) {
        self.a = a;
        self.b = b;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = sink().now_ns();
        let dur = end.saturating_sub(self.start_ns);
        sink().add_phase(self.kind, dur);
        with_thread_ring(|r| {
            r.record(self.kind, None, self.start_ns, dur, self.a, self.b);
        });
    }
}

/// Opens a span of `kind` on the calling thread's track.
#[inline]
pub fn span(kind: SpanKind) -> SpanGuard {
    span_ab(kind, 0, 0)
}

/// Opens a labelled span of `kind` on the calling thread's track.
#[inline]
pub fn span_ab(kind: SpanKind, a: u32, b: u32) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            kind,
            start_ns: 0,
            a,
            b,
            armed: false,
        };
    }
    SpanGuard {
        kind,
        start_ns: sink().now_ns(),
        a,
        b,
        armed: true,
    }
}

/// Records a zero-duration event on the calling thread's track.
#[inline]
pub fn instant(kind: SpanKind, a: u32, b: u32) {
    if !enabled() {
        return;
    }
    let t = sink().now_ns();
    with_thread_ring(|r| r.record(kind, None, t, 0, a, b));
}

/// Records a completed span onto an explicit track (the vGPU device
/// thread uses this to place op spans on per-stream tracks).
#[inline]
pub fn record_on(track: u32, kind: SpanKind, start_ns: u64, dur_ns: u64, a: u32, b: u32) {
    if !enabled() {
        return;
    }
    with_thread_ring(|r| r.record(kind, Some(track), start_ns, dur_ns, a, b));
}

/// Adds `delta` to a global monotonic counter. Gated on [`enabled`]
/// like span recording: a disabled run accumulates nothing, so exported
/// totals describe exactly the traced window.
#[inline]
pub fn counter_add(kind: CounterKind, delta: u64) {
    if !enabled() {
        return;
    }
    sink().add_counter(kind, delta);
}

/// Nanoseconds since the global sink's epoch.
#[inline]
pub fn now_ns() -> u64 {
    sink().now_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_records_and_snapshots_in_order() {
        let sink = TraceSink::new();
        let ring = sink.register_ring("t0");
        for i in 0..10u32 {
            ring.record(SpanKind::Attention, None, i as u64 * 100, 50, i, 7);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.spans.len(), 10);
        for (i, s) in snap.spans.iter().enumerate() {
            assert_eq!(s.kind, SpanKind::Attention);
            assert_eq!(s.a, i as u32);
            assert_eq!(s.b, 7);
            assert_eq!(s.start_ns, i as u64 * 100);
            assert_eq!(s.dur_ns, 50);
            assert_eq!(s.track, ring.track());
        }
        assert_eq!(snap.tracks, vec![(ring.track(), "t0".to_string())]);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let sink = TraceSink::new();
        let ring = sink.register_ring_with_capacity("t0", 8);
        for i in 0..20u32 {
            ring.record(SpanKind::Embed, None, i as u64, 0, i, 0);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.spans.len(), 8);
        let labels: Vec<u32> = snap.spans.iter().map(|s| s.a).collect();
        assert_eq!(labels, (12..20).collect::<Vec<u32>>(), "newest 8 survive");
        assert_eq!(ring.recorded(), 20);
    }

    #[test]
    fn track_override_and_stream_tracks() {
        let sink = TraceSink::new();
        let ring = sink.register_ring("device");
        sink.name_track(stream_track(1), "vGPU stream 1");
        sink.name_track(stream_track(1), "renamed"); // idempotent
        ring.record(SpanKind::VgpuKernel, Some(stream_track(1)), 5, 10, 0, 0);
        let snap = sink.snapshot();
        assert_eq!(snap.spans[0].track, stream_track(1));
        assert!(snap
            .tracks
            .contains(&(stream_track(1), "vGPU stream 1".to_string())));
        assert!(stream_track(0) > 1_000_000, "reserved range is disjoint");
    }

    #[test]
    fn counters_accumulate_and_snapshot_in_declaration_order() {
        let sink = TraceSink::new();
        sink.add_counter(CounterKind::PrefixLookups, 3);
        sink.add_counter(CounterKind::PrefixHits, 2);
        sink.add_counter(CounterKind::PrefixHitTokens, 170);
        assert_eq!(sink.counter(CounterKind::PrefixLookups), 3);
        assert_eq!(sink.counter(CounterKind::PrefixMisses), 0);
        let snap = sink.snapshot();
        assert_eq!(snap.counters.len(), N_COUNTERS);
        let names: Vec<&str> = snap.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            CounterKind::ALL.map(CounterKind::as_str).to_vec(),
            "snapshot preserves declaration order"
        );
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(k, _)| k.as_str() == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("prefix.lookups"), Some(3));
        assert_eq!(get("prefix.hits"), Some(2));
        assert_eq!(get("prefix.hit_tokens"), Some(170));
        assert_eq!(get("prefix.evicted_bytes"), Some(0));
    }

    #[test]
    fn span_overlap_predicate() {
        let s = |start: u64, dur: u64| Span {
            kind: SpanKind::EngineStep,
            track: 1,
            start_ns: start,
            dur_ns: dur,
            a: 0,
            b: 0,
        };
        assert!(s(0, 10).overlaps(&s(5, 10)));
        assert!(s(5, 10).overlaps(&s(0, 10)));
        assert!(!s(0, 10).overlaps(&s(10, 10)), "half-open: touching is not overlap");
        assert!(s(0, 100).overlaps(&s(40, 1)));
    }

    #[test]
    fn span_kind_all_round_trips_repr() {
        assert_eq!(SpanKind::ALL.len(), N_SPAN_KINDS);
        for (i, &k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(k as usize, i, "{} repr out of order", k.as_str());
            assert_eq!(SpanKind::from_u32(i as u32), Some(k));
        }
        assert_eq!(SpanKind::from_u32(N_SPAN_KINDS as u32), None);
    }

    #[test]
    fn phase_table_accumulates_per_kind() {
        let sink = TraceSink::new();
        sink.add_phase(SpanKind::Attention, 100);
        sink.add_phase(SpanKind::Attention, 50);
        sink.add_phase(SpanKind::LmHead, 7);
        assert_eq!(sink.phase_ns(SpanKind::Attention), 150);
        assert_eq!(sink.phase_ns(SpanKind::LmHead), 7);
        assert_eq!(sink.phase_ns(SpanKind::Embed), 0);
        let snap = sink.phase_snapshot();
        assert_eq!(snap[SpanKind::Attention as usize], 150);
        assert_eq!(snap[SpanKind::LmHead as usize], 7);
    }

    #[test]
    fn disabled_guard_records_nothing() {
        // The global sink starts disabled; guards must be inert.
        assert!(!enabled() || sink().is_enabled());
        let before = sink().snapshot().spans.len();
        if !sink().is_enabled() {
            drop(span(SpanKind::Embed));
            instant(SpanKind::ArenaAlloc, 1, 2);
            assert_eq!(sink().snapshot().spans.len(), before);
        }
    }
}
