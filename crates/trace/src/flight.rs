//! The tail-latency flight recorder: bounded per-request span sets.
//!
//! The span rings in [`crate::sink`] are process-wide and overwrite
//! oldest-first, so by the time a p99 request resolves, the spans that
//! explain it may already be gone. The recorder keeps the request view
//! alive: the scheduler builds a [`RequestTrace`] per in-flight request
//! (one [`StepTrace`] per scheduler step it participated in, components
//! attributed via [`crate::ctx::step_components`]) and hands it to the
//! [`FlightRecorder`] at resolution. Completions circulate through a
//! bounded `recent` ring; any request that resolves with an SLO
//! violation — or as `Shed`/`Failed` — is *frozen* into a separate
//! bounded `captured` list that ordinary traffic cannot evict, so the
//! waterfall of the request you care about is still there when you ask.
//!
//! Each trace exports as a Chrome-trace track group of its own
//! ([`RequestTrace`] events render on track
//! `REQUEST_TRACK_BASE + tag`): a `queue_wait` span, one
//! `request.step` span per step, the component sub-spans laid
//! sequentially inside each step window, and a `request.first_token`
//! instant. Every event carries the request id in its `args`, which is
//! what `trace_summarize` (crates/bench) keys on.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::chrome::{escape, us};
use crate::ctx::{Component, RequestBreakdown, N_COMPONENTS};

/// First track id reserved for per-request track groups. Disjoint from
/// thread tracks (from 1) and vGPU stream tracks
/// ([`crate::STREAM_TRACK_BASE`] = 1 << 30).
pub const REQUEST_TRACK_BASE: u32 = 1 << 29;

/// Completed requests the `recent` ring holds before overwriting.
pub const DEFAULT_RECENT_CAP: usize = 64;

/// Frozen (violating/shed/failed) requests kept before the oldest
/// capture is dropped.
pub const DEFAULT_CAPTURED_CAP: usize = 32;

/// Steps stored per request trace; later steps still fold into the
/// breakdown but are not individually kept (bounds recorder memory for
/// very long generations).
pub const MAX_STEPS_PER_TRACE: usize = 4096;

/// How a traced request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Resolved normally (with or without SLO violations).
    Completed,
    /// Cancelled by the client.
    Cancelled,
    /// Shed by the admission controller.
    Shed,
    /// Failed (fault injection or internal error).
    Failed,
}

impl TraceOutcome {
    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::Cancelled => "cancelled",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Failed => "failed",
        }
    }
}

/// One scheduler step a request participated in.
#[derive(Debug, Clone, Copy)]
pub struct StepTrace {
    /// Step index within the request's lifetime (0-based).
    pub index: u32,
    /// Step start, nanoseconds since the sink epoch.
    pub start_ns: u64,
    /// Step wall time.
    pub dur_ns: u64,
    /// Prompt tokens prefilled this step (0 = decode step).
    pub prefill_tokens: u32,
    /// Whether the step emitted a token for this request.
    pub sampled: bool,
    /// Per-[`Component`] attribution of the step wall time.
    pub components: [u64; N_COMPONENTS],
    /// Overlapped CPU-expert busy time during the step.
    pub cpu_busy_ns: u64,
}

impl StepTrace {
    /// A prefill-chunk step: the whole wall time is attributed to
    /// [`Component::PrefillChunk`] (chunk steps are dominated by the
    /// prompt GEMMs; decomposing them adds noise, not signal).
    pub fn prefill(index: u32, start_ns: u64, dur_ns: u64, chunk_tokens: u32, sampled: bool) -> StepTrace {
        let mut components = [0u64; N_COMPONENTS];
        components[Component::PrefillChunk as usize] = dur_ns;
        StepTrace {
            index,
            start_ns,
            dur_ns,
            prefill_tokens: chunk_tokens.max(1),
            sampled,
            components,
            cpu_busy_ns: 0,
        }
    }

    /// A decode step with phase-derived components.
    pub fn decode(
        index: u32,
        start_ns: u64,
        dur_ns: u64,
        components: [u64; N_COMPONENTS],
        cpu_busy_ns: u64,
    ) -> StepTrace {
        StepTrace {
            index,
            start_ns,
            dur_ns,
            prefill_tokens: 0,
            sampled: true,
            components,
            cpu_busy_ns,
        }
    }
}

/// One request's full latency waterfall, built step by step while the
/// request is in flight and finalized at resolution.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Server-assigned request id.
    pub request_id: u64,
    /// SLO class index.
    pub class: u32,
    /// Submit time, nanoseconds since the sink epoch.
    pub enqueued_ns: u64,
    /// Admission time (`None` while queued or if never admitted).
    pub admitted_ns: Option<u64>,
    /// Resolution time (0 while in flight).
    pub resolved_ns: u64,
    /// How the request left the system (`None` while in flight).
    pub outcome: Option<TraceOutcome>,
    /// Whether the request missed a TTFT or ITL target.
    pub slo_violation: bool,
    /// Recorded steps, oldest first (capped at
    /// [`MAX_STEPS_PER_TRACE`]; see [`RequestTrace::steps_total`]).
    pub steps: Vec<StepTrace>,
    /// Steps folded into the breakdown, including any not stored.
    pub steps_total: u32,
    /// Whole-step wall time spent admitted but unscheduled.
    pub idle_ns: u64,
    /// The accumulated attribution (finalized by `finish`).
    pub breakdown: RequestBreakdown,
}

impl RequestTrace {
    /// Starts a trace for a freshly queued request.
    pub fn begin(request_id: u64, class: u32, enqueued_ns: u64) -> RequestTrace {
        RequestTrace {
            request_id,
            class,
            enqueued_ns,
            admitted_ns: None,
            resolved_ns: 0,
            outcome: None,
            slo_violation: false,
            steps: Vec::new(),
            steps_total: 0,
            idle_ns: 0,
            breakdown: RequestBreakdown {
                request_id,
                class,
                ..Default::default()
            },
        }
    }

    /// Marks admission (the queue→running edge of the waterfall).
    pub fn admitted(&mut self, now_ns: u64) {
        self.admitted_ns = Some(now_ns);
    }

    /// Folds one step into the trace and its breakdown.
    pub fn push_step(&mut self, step: StepTrace) {
        for (acc, v) in self.breakdown.components.iter_mut().zip(step.components.iter()) {
            *acc += v;
        }
        self.breakdown.cpu_busy_ns += step.cpu_busy_ns;
        if step.prefill_tokens > 0 {
            self.breakdown.prefill_steps += 1;
        } else {
            self.breakdown.decode_steps += 1;
        }
        self.steps_total += 1;
        if self.steps.len() < MAX_STEPS_PER_TRACE {
            self.steps.push(step);
        }
    }

    /// Records a whole step the request sat admitted but unscheduled
    /// (attributed to queue wait at `finish`).
    pub fn add_idle(&mut self, wall_ns: u64) {
        self.idle_ns += wall_ns;
    }

    /// Finalizes the trace with the measured end-to-end numbers from
    /// the server's request metrics. `queue_wait_ns` is the measured
    /// submit→admission wait; together with accumulated idle steps it
    /// becomes the [`Component::QueueWait`] attribution.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        &mut self,
        resolved_ns: u64,
        outcome: TraceOutcome,
        slo_violation: bool,
        queue_wait_ns: u64,
        measured_ttft_ns: Option<u64>,
        measured_decode_ns: u64,
        tokens: u32,
    ) {
        self.resolved_ns = resolved_ns;
        self.outcome = Some(outcome);
        self.slo_violation = slo_violation;
        self.breakdown.components[Component::QueueWait as usize] = queue_wait_ns + self.idle_ns;
        self.breakdown.queue_wait_ns = queue_wait_ns;
        self.breakdown.measured_ttft_ns = measured_ttft_ns;
        self.breakdown.measured_decode_ns = measured_decode_ns;
        self.breakdown.tokens = tokens;
    }

    /// Whether this trace gets frozen into the recorder's captured
    /// list: an SLO violation, a shed, or a failure.
    pub fn frozen(&self) -> bool {
        self.slo_violation
            || matches!(self.outcome, Some(TraceOutcome::Shed) | Some(TraceOutcome::Failed))
    }

    /// Track id this request's waterfall renders on.
    pub fn track(&self) -> u32 {
        // Mask to 28 bits so request tracks never collide with the
        // vGPU stream range at 1 << 30.
        REQUEST_TRACK_BASE + (self.request_id as u32 & ((1 << 28) - 1))
    }

    /// Appends this trace's Chrome-trace events (one JSON object per
    /// element) to `events`.
    fn chrome_events(&self, events: &mut Vec<String>) {
        let track = self.track();
        let outcome = self.outcome.map_or("in-flight", TraceOutcome::as_str);
        let title = format!(
            "request {} [class {}] {}{}",
            self.request_id,
            self.class,
            outcome,
            if self.slo_violation { " SLO-VIOLATED" } else { "" }
        );
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{track},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&title)
        ));
        let x = |name: &str, start_ns: u64, dur_ns: u64, extra: &str| {
            format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"kt.request\",\"pid\":0,\
                 \"tid\":{track},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"request_id\":{}{extra}}}}}",
                escape(name),
                us(start_ns),
                us(dur_ns),
                self.request_id
            )
        };
        let queue_end = self
            .admitted_ns
            .unwrap_or(if self.resolved_ns > 0 { self.resolved_ns } else { self.enqueued_ns });
        events.push(x(
            Component::QueueWait.as_str(),
            self.enqueued_ns,
            queue_end.saturating_sub(self.enqueued_ns),
            "",
        ));
        let mut first_token_ns = None;
        for s in &self.steps {
            events.push(x(
                "request.step",
                s.start_ns,
                s.dur_ns,
                &format!(
                    ",\"step\":{},\"prefill\":{},\"sampled\":{}",
                    s.index,
                    s.prefill_tokens,
                    u32::from(s.sampled)
                ),
            ));
            // Component sub-spans laid sequentially from the step
            // start: real durations, canonical order, nested inside
            // the step span on the same track.
            let mut t = s.start_ns;
            for c in Component::ALL {
                if c == Component::QueueWait {
                    continue;
                }
                let dur = s.components[c as usize];
                if dur == 0 {
                    continue;
                }
                events.push(x(c.as_str(), t, dur, &format!(",\"step\":{}", s.index)));
                t += dur;
            }
            if s.sampled && first_token_ns.is_none() {
                first_token_ns = Some(s.start_ns + s.dur_ns);
            }
        }
        if let Some(t) = first_token_ns {
            events.push(x("request.first_token", t, 0, ""));
        }
    }

    /// Renders this request's waterfall as a standalone Chrome-trace
    /// JSON array (loadable in Perfetto, parseable line-by-line).
    pub fn export_chrome(&self) -> String {
        let mut events = Vec::new();
        self.chrome_events(&mut events);
        format!("[\n{}\n]\n", events.join(",\n"))
    }
}

/// Bounded store of recently completed and frozen request traces.
///
/// One instance per server; all methods take `&self` and are safe to
/// call from the scheduler thread and scrape threads concurrently.
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
}

struct RecorderInner {
    recent: VecDeque<RequestTrace>,
    captured: VecDeque<RequestTrace>,
    recent_cap: usize,
    captured_cap: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default ring capacities.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_RECENT_CAP, DEFAULT_CAPTURED_CAP)
    }

    /// A recorder holding at most `recent_cap` completions and
    /// `captured_cap` frozen traces.
    pub fn with_capacity(recent_cap: usize, captured_cap: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(RecorderInner {
                recent: VecDeque::new(),
                captured: VecDeque::new(),
                recent_cap: recent_cap.max(1),
                captured_cap: captured_cap.max(1),
            }),
        }
    }

    /// Records a finished trace. Frozen traces (SLO violation, shed,
    /// failure) additionally go to the captured list, which ordinary
    /// completions never evict.
    pub fn record(&self, trace: RequestTrace) {
        let mut inner = self.inner.lock().expect("flight recorder");
        if trace.frozen() {
            if inner.captured.len() == inner.captured_cap {
                inner.captured.pop_front();
            }
            inner.captured.push_back(trace.clone());
        }
        if inner.recent.len() == inner.recent_cap {
            inner.recent.pop_front();
        }
        inner.recent.push_back(trace);
    }

    /// Looks a trace up by request id — captured list first (frozen
    /// traces outlive their recent-ring copy), then the recent ring,
    /// newest match wins.
    pub fn get(&self, request_id: u64) -> Option<RequestTrace> {
        let inner = self.inner.lock().expect("flight recorder");
        inner
            .captured
            .iter()
            .rev()
            .chain(inner.recent.iter().rev())
            .find(|t| t.request_id == request_id)
            .cloned()
    }

    /// The finalized breakdown for a request still in the recorder.
    pub fn breakdown(&self, request_id: u64) -> Option<RequestBreakdown> {
        self.get(request_id).map(|t| t.breakdown)
    }

    /// Ids currently frozen in the captured list, oldest first.
    pub fn captured_ids(&self) -> Vec<u64> {
        let inner = self.inner.lock().expect("flight recorder");
        inner.captured.iter().map(|t| t.request_id).collect()
    }

    /// Number of completions in the recent ring.
    pub fn recent_len(&self) -> usize {
        self.inner.lock().expect("flight recorder").recent.len()
    }

    /// Breakdowns of everything in the recent ring, oldest first.
    pub fn recent_breakdowns(&self) -> Vec<RequestBreakdown> {
        let inner = self.inner.lock().expect("flight recorder");
        inner.recent.iter().map(|t| t.breakdown).collect()
    }

    /// Exports one request's waterfall (see
    /// [`RequestTrace::export_chrome`]).
    pub fn export_chrome(&self, request_id: u64) -> Option<String> {
        self.get(request_id).map(|t| t.export_chrome())
    }

    /// Exports every captured trace as one Chrome-trace JSON array —
    /// the artifact `trace_summarize` consumes.
    pub fn export_captured_chrome(&self) -> String {
        let inner = self.inner.lock().expect("flight recorder");
        let mut events = Vec::new();
        for t in &inner.captured {
            t.chrome_events(&mut events);
        }
        drop(inner);
        format!("[\n{}\n]\n", events.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::N_COMPONENTS;

    fn completed(id: u64, violated: bool) -> RequestTrace {
        let mut t = RequestTrace::begin(id, 0, 1_000);
        t.admitted(2_000);
        let mut comps = [0u64; N_COMPONENTS];
        comps[Component::Attention as usize] = 400;
        comps[Component::CpuExpert as usize] = 500;
        comps[Component::Other as usize] = 100;
        t.push_step(StepTrace::prefill(0, 2_000, 3_000, 16, true));
        t.push_step(StepTrace::decode(1, 5_500, 1_000, comps, 2_000));
        t.add_idle(250);
        t.finish(7_000, TraceOutcome::Completed, violated, 1_000, Some(3_000), 1_500, 2);
        t
    }

    #[test]
    fn breakdown_accumulates_steps_idle_and_queue_wait() {
        let t = completed(42, false);
        let b = t.breakdown;
        assert_eq!(b.request_id, 42);
        assert_eq!(b.component_ns(Component::QueueWait), 1_250, "measured + idle");
        assert_eq!(b.component_ns(Component::PrefillChunk), 3_000);
        assert_eq!(b.component_ns(Component::Attention), 400);
        assert_eq!(b.cpu_busy_ns, 2_000);
        assert_eq!(b.prefill_steps, 1);
        assert_eq!(b.decode_steps, 1);
        assert_eq!(b.measured_total_ns(), 1_000 + 3_000 + 1_500);
        assert_eq!(b.total_ns(), 1_250 + 3_000 + 1_000);
        assert!(!t.frozen());
    }

    #[test]
    fn violating_and_shed_traces_freeze() {
        assert!(completed(1, true).frozen());
        let mut shed = RequestTrace::begin(2, 1, 10);
        shed.finish(500, TraceOutcome::Shed, false, 490, None, 0, 0);
        assert!(shed.frozen());
        let mut failed = RequestTrace::begin(3, 1, 10);
        failed.finish(500, TraceOutcome::Failed, false, 0, None, 0, 0);
        assert!(failed.frozen());
        let mut cancelled = RequestTrace::begin(4, 1, 10);
        cancelled.finish(500, TraceOutcome::Cancelled, false, 0, None, 0, 0);
        assert!(!cancelled.frozen());
    }

    #[test]
    fn recorder_bounds_rings_and_keeps_captures() {
        let rec = FlightRecorder::with_capacity(4, 2);
        for id in 0..10 {
            rec.record(completed(id, id == 1 || id == 2 || id == 3));
        }
        assert_eq!(rec.recent_len(), 4);
        // Captured keeps the newest 2 frozen traces even though the
        // recent ring has long since dropped them.
        assert_eq!(rec.captured_ids(), vec![2, 3]);
        assert!(rec.get(2).is_some(), "frozen trace outlives recent ring");
        assert!(rec.get(0).is_none(), "unfrozen old trace evicted");
        assert_eq!(rec.breakdown(9).unwrap().request_id, 9);
    }

    #[test]
    fn export_contains_request_labeled_waterfall() {
        let t = completed(7, true);
        let json = t.export_chrome();
        for name in ["queue_wait", "prefill_chunk", "attention", "cpu_expert", "request.step", "request.first_token"] {
            assert!(
                json.contains(&format!("\"name\":\"{name}\"")),
                "missing {name} span in:\n{json}"
            );
        }
        assert!(json.contains("\"request_id\":7"));
        assert!(json.contains("SLO-VIOLATED"));
        assert!(json.lines().all(|l| !l.contains("\"name\":\"queue_wait\"") || l.contains("\"request_id\":7")));
        // Track is in the reserved per-request range.
        assert!(json.contains(&format!("\"tid\":{}", REQUEST_TRACK_BASE + 7)));

        let rec = FlightRecorder::new();
        rec.record(t);
        assert!(rec.export_chrome(7).is_some());
        let all = rec.export_captured_chrome();
        assert!(all.contains("\"request_id\":7"));
        assert!(rec.export_chrome(999).is_none());
    }
}
