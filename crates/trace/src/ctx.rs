//! Request-scoped trace context and latency attribution.
//!
//! kt-trace's span rings (PR 4) answer *where time goes in aggregate*;
//! this module adds the request dimension. A [`TraceCtx`] names the
//! request a unit of work belongs to — its low 32 bits ride in the
//! existing span `a`/`b` label slots (`serve.admit`,
//! `serve.prefill_chunk`, `engine.seq_attention`), so no span layout
//! changes were needed — and a [`RequestBreakdown`] decomposes one
//! request's measured TTFT + decode time into named [`Component`]s.
//!
//! ## The attribution invariant
//!
//! Components are derived from the sink's cumulative phase table
//! ([`crate::TraceSink::phase_snapshot`]): the scheduler differences
//! two snapshots around each `forward_batch` call and maps the
//! per-[`SpanKind`] deltas through [`step_components`]. Every phase in
//! the mapping runs serialized on the vGPU device thread, so the
//! per-step component sum can never exceed the step's wall time; the
//! [`Component::Other`] slot absorbs the remainder (embed, launch
//! overhead, inter-op gaps). Summed over a request's steps plus its
//! measured queue wait, the breakdown therefore sums to the measured
//! end-to-end time from below — the tested invariant is
//! `0.75 ≤ coverage() ≤ 1.05`, with CI gating ≥ 0.9 in aggregate.
//!
//! Overlapped CPU-expert compute is intentionally *not* a component:
//! the device timeline already pays for it via `engine.merge_spin`
//! (the un-hidden tail), which is what [`Component::CpuExpert`] maps
//! to. The raw overlapped busy time is reported separately as
//! [`RequestBreakdown::cpu_busy_ns`] so a reader can still see how
//! much CPU work the overlap hid.

use crate::sink::{SpanKind, N_SPAN_KINDS};

/// Identity of the work being traced: which request, which scheduler
/// step of that request, which model layer. Threaded from
/// `kt_serve::Request` down through batch composition; the engine sees
/// it as the per-sequence `tag` (the low 32 bits of `request_id`, 0
/// meaning "untagged").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Server-assigned request id (0 = none).
    pub request_id: u64,
    /// Scheduler step index within the request's lifetime.
    pub step: u32,
    /// Model layer, where applicable.
    pub layer: u32,
}

impl TraceCtx {
    /// Context for one request, before any step ran.
    pub fn for_request(request_id: u64) -> TraceCtx {
        TraceCtx { request_id, step: 0, layer: 0 }
    }

    /// The 32-bit tag carried in span label slots (low bits of the
    /// request id; ids are assigned sequentially so collisions need
    /// 2^32 requests in one trace window).
    #[inline]
    pub fn tag(&self) -> u32 {
        self.request_id as u32
    }
}

/// Number of [`Component`] variants.
pub const N_COMPONENTS: usize = 10;

/// One named slice of a request's end-to-end latency.
#[repr(usize)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Time queued before admission, plus whole steps the request sat
    /// admitted-but-unscheduled.
    QueueWait = 0,
    /// Whole steps spent prefilling this request's prompt chunks.
    PrefillChunk,
    /// Batched attention (+ dense MLP) on decode steps.
    Attention,
    /// Router gating + dispatch bookkeeping on decode steps.
    Gating,
    /// CPU routed-expert time the overlap could not hide (the merge
    /// kernel's spin on CPU completion).
    CpuExpert,
    /// Shared + cache-resident routed experts on the vGPU.
    GpuExpert,
    /// Expert-cache residency/admission bookkeeping (the harness's
    /// stand-in for PCIe upload wall time — see
    /// [`SpanKind::PcieUpload`]).
    PcieUpload,
    /// Scatter-add + deferral flush of expert output.
    Merge,
    /// Final norm + LM head.
    LmHead,
    /// Step wall time not covered by any phase above (embed, vGPU
    /// launch overhead, inter-op gaps).
    Other,
}

impl Component {
    /// Every component, in `repr` order (index = `c as usize`).
    pub const ALL: [Component; N_COMPONENTS] = [
        Component::QueueWait,
        Component::PrefillChunk,
        Component::Attention,
        Component::Gating,
        Component::CpuExpert,
        Component::GpuExpert,
        Component::PcieUpload,
        Component::Merge,
        Component::LmHead,
        Component::Other,
    ];

    /// Stable display name (also the Prometheus `component` label).
    pub fn as_str(self) -> &'static str {
        match self {
            Component::QueueWait => "queue_wait",
            Component::PrefillChunk => "prefill_chunk",
            Component::Attention => "attention",
            Component::Gating => "gating",
            Component::CpuExpert => "cpu_expert",
            Component::GpuExpert => "gpu_expert",
            Component::PcieUpload => "pcie_upload",
            Component::Merge => "merge",
            Component::LmHead => "lm_head",
            Component::Other => "other",
        }
    }
}

/// Maps per-[`SpanKind`] phase deltas for one decode step onto the
/// component vector. `wall_ns` is the step's measured wall time; the
/// remainder after all mapped phases lands in [`Component::Other`]
/// (saturating — concurrent engines would otherwise underflow it).
///
/// Returns `(components, cpu_busy_ns)` where `cpu_busy_ns` is the
/// overlapped CPU-expert busy time (informational, not a component —
/// see the module docs).
pub fn step_components(deltas: &[u64; N_SPAN_KINDS], wall_ns: u64) -> ([u64; N_COMPONENTS], u64) {
    let d = |k: SpanKind| deltas[k as usize];
    let mut c = [0u64; N_COMPONENTS];
    c[Component::Attention as usize] = d(SpanKind::Attention);
    // The dispatch callback nests both gating and the residency pass;
    // count dispatch once and carve the upload bookkeeping out of it.
    c[Component::Gating as usize] =
        d(SpanKind::ExpertDispatch).saturating_sub(d(SpanKind::PcieUpload));
    c[Component::PcieUpload as usize] = d(SpanKind::PcieUpload);
    c[Component::CpuExpert as usize] = d(SpanKind::MergeSpin);
    c[Component::GpuExpert as usize] = d(SpanKind::SharedExperts) + d(SpanKind::GpuExperts);
    c[Component::Merge as usize] = d(SpanKind::ScatterAdd) + d(SpanKind::DeferralFlush);
    c[Component::LmHead as usize] = d(SpanKind::LmHead);
    let mapped: u64 = c.iter().sum();
    c[Component::Other as usize] = wall_ns.saturating_sub(mapped);
    let cpu_busy = d(SpanKind::CpuExpertImmediate) + d(SpanKind::CpuExpertDeferred);
    (c, cpu_busy)
}

/// Where one request's measured end-to-end latency went.
///
/// Built by the flight recorder as steps complete; surfaced via
/// `Server::breakdown(id)` and fed (per component, per request) into
/// the `kt_latency_component_seconds` histogram family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// The request this breakdown describes.
    pub request_id: u64,
    /// SLO class index the request ran under.
    pub class: u32,
    /// Nanoseconds per [`Component`], `Component::ALL` order.
    pub components: [u64; N_COMPONENTS],
    /// Overlapped CPU-expert busy time (informational; already paid
    /// for on the device timeline via [`Component::CpuExpert`]).
    pub cpu_busy_ns: u64,
    /// Measured wait from submit to admission.
    pub queue_wait_ns: u64,
    /// Measured time-to-first-token (admission → first sampled token),
    /// `None` if the request resolved before producing one.
    pub measured_ttft_ns: Option<u64>,
    /// Measured decode time (sum of inter-token latencies).
    pub measured_decode_ns: u64,
    /// Tokens the request generated.
    pub tokens: u32,
    /// Steps that prefilled a chunk of this request's prompt.
    pub prefill_steps: u32,
    /// Steps that decoded a token for this request.
    pub decode_steps: u32,
}

impl RequestBreakdown {
    /// Nanoseconds attributed to one component.
    #[inline]
    pub fn component_ns(&self, c: Component) -> u64 {
        self.components[c as usize]
    }

    /// Sum of every attributed component.
    pub fn total_ns(&self) -> u64 {
        self.components.iter().sum()
    }

    /// The measured end-to-end time the components must account for:
    /// queue wait + TTFT + decode.
    pub fn measured_total_ns(&self) -> u64 {
        self.queue_wait_ns + self.measured_ttft_ns.unwrap_or(0) + self.measured_decode_ns
    }

    /// Fraction of the measured end-to-end time the components explain
    /// (`1.0` when nothing was measured). The tested invariant: by
    /// construction this lands in roughly `[0.75, 1.05]` — below 1
    /// because inter-step scheduler gaps are unattributed, slightly
    /// above only through clock-read jitter at step boundaries.
    pub fn coverage(&self) -> f64 {
        let measured = self.measured_total_ns();
        if measured == 0 {
            return 1.0;
        }
        self.total_ns() as f64 / measured as f64
    }

    /// Components sorted by attributed time, largest first, zero
    /// entries skipped.
    pub fn top_components(&self) -> Vec<(Component, u64)> {
        let mut v: Vec<(Component, u64)> = Component::ALL
            .iter()
            .map(|&c| (c, self.component_ns(c)))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        v.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.as_str().cmp(y.0.as_str())));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_all_round_trips_repr() {
        assert_eq!(Component::ALL.len(), N_COMPONENTS);
        for (i, &c) in Component::ALL.iter().enumerate() {
            assert_eq!(c as usize, i, "{} repr out of order", c.as_str());
        }
    }

    #[test]
    fn step_components_sum_to_wall_exactly_when_mapped_fits() {
        let mut d = [0u64; N_SPAN_KINDS];
        d[SpanKind::Attention as usize] = 100;
        d[SpanKind::ExpertDispatch as usize] = 60; // nests 10ns upload pass
        d[SpanKind::PcieUpload as usize] = 10;
        d[SpanKind::MergeSpin as usize] = 30;
        d[SpanKind::SharedExperts as usize] = 20;
        d[SpanKind::GpuExperts as usize] = 5;
        d[SpanKind::ScatterAdd as usize] = 15;
        d[SpanKind::DeferralFlush as usize] = 5;
        d[SpanKind::LmHead as usize] = 40;
        d[SpanKind::CpuExpertImmediate as usize] = 500; // overlapped
        let (c, cpu_busy) = step_components(&d, 300);
        assert_eq!(c.iter().sum::<u64>(), 300, "components sum to wall");
        assert_eq!(c[Component::Gating as usize], 50, "upload carved out of dispatch");
        assert_eq!(c[Component::PcieUpload as usize], 10);
        assert_eq!(c[Component::CpuExpert as usize], 30, "merge spin is the cpu component");
        assert_eq!(c[Component::GpuExpert as usize], 25);
        assert_eq!(c[Component::Merge as usize], 20);
        assert_eq!(c[Component::Other as usize], 300 - 275);
        assert_eq!(cpu_busy, 500, "overlapped busy time reported separately");
    }

    #[test]
    fn step_components_other_saturates_when_deltas_exceed_wall() {
        let mut d = [0u64; N_SPAN_KINDS];
        d[SpanKind::Attention as usize] = 1000;
        let (c, _) = step_components(&d, 300);
        assert_eq!(c[Component::Other as usize], 0);
    }

    #[test]
    fn breakdown_coverage_and_top_components() {
        let mut b = RequestBreakdown {
            request_id: 7,
            queue_wait_ns: 100,
            measured_ttft_ns: Some(400),
            measured_decode_ns: 500,
            ..Default::default()
        };
        b.components[Component::QueueWait as usize] = 100;
        b.components[Component::Attention as usize] = 300;
        b.components[Component::CpuExpert as usize] = 450;
        b.components[Component::Other as usize] = 50;
        assert_eq!(b.measured_total_ns(), 1000);
        assert_eq!(b.total_ns(), 900);
        assert!((b.coverage() - 0.9).abs() < 1e-9);
        let top = b.top_components();
        assert_eq!(top[0], (Component::CpuExpert, 450));
        assert_eq!(top[1], (Component::Attention, 300));
        assert_eq!(top.len(), 4, "zero components skipped");
        assert_eq!(RequestBreakdown::default().coverage(), 1.0);
    }

    #[test]
    fn trace_ctx_tag_is_low_bits() {
        let ctx = TraceCtx::for_request(0x1_0000_002a);
        assert_eq!(ctx.tag(), 0x2a);
        assert_eq!(TraceCtx::default().tag(), 0);
    }
}
