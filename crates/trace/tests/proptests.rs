//! Property tests for the trace sink's concurrent recording and the
//! histogram's merge algebra.
//!
//! The sink's rings are single-producer/any-consumer: N writer threads
//! each own a ring and record concurrently while snapshots may run at
//! any time. The properties checked here are the ones the exporter
//! relies on: every span a quiesced snapshot returns is complete and
//! untorn, per-thread spans come back in recording order, timestamps
//! are monotonic per track, and ring overwrite keeps exactly the
//! newest `capacity` spans.

use kt_trace::{LogHistogram, SpanKind, TraceSink};
use proptest::prelude::*;
use std::sync::Arc;

/// Encodes a self-checking span payload for writer `t`, item `i`:
/// every field is a deterministic function of `(t, i)`, so a torn
/// read (fields from different writes) violates the relations below.
fn payload(t: usize, i: u64) -> (u64, u64, u32, u32) {
    let start = (t as u64) << 32 | i;
    (start, start.wrapping_mul(3) & 0xFFFF, i as u32, t as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent writers + quiesced snapshot: completeness, per-track
    /// order, monotonic timestamps, correct overwrite window.
    #[test]
    fn concurrent_recording_is_complete_ordered_and_untorn(
        n_threads in 1usize..4,
        n_spans in 1u64..150,
        capacity in 8usize..64,
    ) {
        let sink = Arc::new(TraceSink::new());
        sink.enable();
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                let ring = sink.register_ring_with_capacity(&format!("w{t}"), capacity);
                for i in 0..n_spans {
                    let (start, dur, a, b) = payload(t, i);
                    ring.record(SpanKind::Attention, None, start, dur, a, b);
                }
                ring.track()
            }));
        }
        let tracks: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Distinct track per thread.
        let mut sorted = tracks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n_threads);

        let snap = sink.snapshot();
        let kept = n_spans.min(capacity as u64);
        prop_assert_eq!(snap.spans.len() as u64, kept * n_threads as u64);
        for (t, &track) in tracks.iter().enumerate() {
            let mine: Vec<_> = snap.spans.iter().filter(|s| s.track == track).collect();
            prop_assert_eq!(mine.len() as u64, kept);
            for (k, s) in mine.iter().enumerate() {
                // The newest `kept` spans survive, in recording order.
                let i = n_spans - kept + k as u64;
                let (start, dur, a, b) = payload(t, i);
                prop_assert_eq!(s.start_ns, start);
                prop_assert_eq!(s.dur_ns, dur);
                prop_assert_eq!(s.a, a);
                prop_assert_eq!(s.b, b);
            }
            // Monotonic per track.
            for w in mine.windows(2) {
                prop_assert!(w[0].start_ns < w[1].start_ns);
            }
        }
    }

    /// Snapshots racing live writers never observe a torn span: every
    /// span returned satisfies the payload relations of *some* single
    /// write, and per-track timestamps stay monotonic.
    #[test]
    fn live_snapshots_never_tear(
        n_threads in 1usize..3,
        n_spans in 50u64..400,
    ) {
        let sink = Arc::new(TraceSink::new());
        sink.enable();
        let mut writers = Vec::new();
        for t in 0..n_threads {
            let sink = Arc::clone(&sink);
            writers.push(std::thread::spawn(move || {
                let ring = sink.register_ring_with_capacity(&format!("w{t}"), 16);
                for i in 0..n_spans {
                    let (start, dur, a, b) = payload(t, i);
                    ring.record(SpanKind::MergeSpin, None, start, dur, a, b);
                }
            }));
        }
        for _ in 0..50 {
            let snap = sink.snapshot();
            for s in &snap.spans {
                let t = (s.start_ns >> 32) as usize;
                let i = s.start_ns & 0xFFFF_FFFF;
                let (start, dur, a, b) = payload(t, i);
                prop_assert_eq!(s.start_ns, start);
                prop_assert_eq!(s.dur_ns, dur, "torn dur for ({}, {})", t, i);
                prop_assert_eq!(s.a, a, "torn a");
                prop_assert_eq!(s.b, b, "torn b");
                prop_assert!(t < n_threads);
                prop_assert!(i < n_spans);
            }
            let mut by_track: std::collections::HashMap<u32, Vec<u64>> =
                std::collections::HashMap::new();
            for s in &snap.spans {
                by_track.entry(s.track).or_default().push(s.start_ns);
            }
            for starts in by_track.values() {
                for w in starts.windows(2) {
                    prop_assert!(w[0] < w[1], "per-track order under race");
                }
            }
        }
        for w in writers {
            w.join().unwrap();
        }
    }

    /// Histogram merge is associative and agrees with recording the
    /// concatenated sample stream directly.
    #[test]
    fn histogram_merge_is_associative(
        xs in proptest::collection::vec(0u64..u64::MAX, 0..40),
        ys in proptest::collection::vec(0u64..u64::MAX, 0..40),
        zs in proptest::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let h = |v: &[u64]| {
            let mut h = LogHistogram::new();
            h.record_all(v.iter().copied());
            h
        };
        let (a, b, c) = (h(&xs), h(&ys), h(&zs));

        // (a ⊎ b) ⊎ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊎ (b ⊎ c)
        let mut right_inner = b.clone();
        right_inner.merge(&c);
        let mut right = a.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // Both equal the histogram of the concatenated stream.
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let combined = h(&all);
        prop_assert_eq!(&left, &combined);

        // And percentile queries agree wherever defined.
        for p in [0.0, 50.0, 99.0, 100.0] {
            prop_assert_eq!(left.percentile(p), combined.percentile(p));
        }
    }

    /// Merge is commutative too (the buckets just add).
    #[test]
    fn histogram_merge_is_commutative(
        xs in proptest::collection::vec(0u64..1_000_000, 0..30),
        ys in proptest::collection::vec(0u64..1_000_000, 0..30),
    ) {
        let h = |v: &[u64]| {
            let mut h = LogHistogram::new();
            h.record_all(v.iter().copied());
            h
        };
        let mut ab = h(&xs);
        ab.merge(&h(&ys));
        let mut ba = h(&ys);
        ba.merge(&h(&xs));
        prop_assert_eq!(ab, ba);
    }
}
