//! Property tests for shared-prefix KV reuse: seeding a fresh cache
//! from a frozen prefix snapshot and prefilling only the suffix must
//! produce **bitwise** the same outputs and cache state (including the
//! MLA decoded-row memo) as a cold full prefill.
//!
//! This is the model-layer contract the serving layer's prefix cache
//! stands on, and it composes with the chunk-invariance contract next
//! door (`chunked_prefill_proptests`): a seeded-then-suffix-prefilled
//! sequence is exactly a cold prefill chunked at the seed boundary,
//! where the first chunk's rows came out of the snapshot instead of
//! being recomputed. Checked for GQA and MLA, for every weight dtype,
//! and for both the flat in-memory cache and the two-tier offloaded
//! cache (which keeps no memo — seeding degrades gracefully).
//!
//! A second property pins the eviction policy: whatever insert/lookup
//! sequence runs, resident bytes never exceed the configured budget.

use kt_model::attention::Attention;
use kt_model::config::AttentionKind;
use kt_model::kvcache::{KvCache, KvStore, OffloadedLayerCache};
use kt_model::prefix::{PrefixCache, PrefixCacheConfig};
use kt_model::rope::Rope;
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};
use proptest::prelude::*;

const HIDDEN: usize = 24;
const N_HEADS: usize = 4;
const HEAD_DIM: usize = 8;
const MAX_SEQ: usize = 64;

fn dtype_strategy() -> impl Strategy<Value = WeightDtype> {
    prop_oneof![
        Just(WeightDtype::F32),
        Just(WeightDtype::Bf16),
        Just(WeightDtype::Int8 { group: 8 }),
        Just(WeightDtype::Int4 { group: 8 }),
    ]
}

fn kind_strategy() -> impl Strategy<Value = AttentionKind> {
    prop_oneof![
        Just(AttentionKind::Gqa { kv_heads: 2 }),
        // Rank a multiple of the quant group so Int8/Int4 packing of
        // the rank-k decompression weights is valid.
        Just(AttentionKind::Mla { kv_lora_rank: 8 }),
    ]
}

/// Asserts two KV stores hold bitwise-identical K/V rows.
fn assert_same_cache(a: &(impl KvStore + ?Sized), b: &(impl KvStore + ?Sized)) {
    assert_eq!(a.len(), b.len(), "cache lengths diverged");
    for pos in 0..a.len() {
        assert_eq!(a.k_row(pos), b.k_row(pos), "k row {pos} diverged");
        assert_eq!(a.v_row(pos), b.v_row(pos), "v row {pos} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prefix_seeded_suffix_is_bitwise_identical_to_cold_prefill(
        seed in 0u64..1000,
        t_total in 2usize..20,
        split_raw in 1usize..64,
        dtype in dtype_strategy(),
        kind in kind_strategy(),
    ) {
        let m = 1 + split_raw % (t_total - 1); // cached prefix length, 1..t_total
        let mut rng = seeded(seed);
        let attn =
            Attention::random(HIDDEN, N_HEADS, HEAD_DIM, kind, dtype, &mut rng).unwrap();
        let rope = Rope::new(HEAD_DIM, MAX_SEQ, 10_000.0);
        let x = Matrix::random_uniform(t_total, HIDDEN, 1.0, &mut rng).unwrap();
        let spec = attn.cache_spec();
        let tokens: Vec<u32> = (0..t_total).map(|i| ((i as u64 * 13 + seed) % 50) as u32).collect();

        // Cold reference: the whole prompt through a fresh flat cache.
        // For MLA this also builds the decoded-row memo to full length.
        let mut donor = KvCache::new(&[spec], MAX_SEQ);
        let cold = attn.forward(&x, donor.layer_mut(0), &rope, None).unwrap();

        // Freeze the first m positions and look the prompt back up.
        let px = PrefixCache::new(PrefixCacheConfig { capacity_bytes: 1 << 20, min_prefix_len: 1 });
        px.insert(&tokens[..m], &donor);
        let mat = px.lookup(&tokens).expect("inserted prefix must hit");
        prop_assert_eq!(mat.len(), m);

        let suffix = Matrix::from_rows(
            t_total - m,
            HIDDEN,
            &x.as_slice()[m * HIDDEN..],
        )
        .unwrap();

        // Flat in-memory cache: seed, prefill the suffix, compare
        // outputs, K/V rows and memo bitwise against the cold run.
        let mut fresh = KvCache::new(&[spec], MAX_SEQ);
        mat.seed_into(&mut fresh).unwrap();
        prop_assert_eq!(fresh.seq_len(), m);
        let warm = attn.forward(&suffix, fresh.layer_mut(0), &rope, None).unwrap();
        for t in 0..t_total - m {
            prop_assert_eq!(
                warm.row(t),
                cold.row(m + t),
                "suffix output row {} diverged (split {}/{})", t, m, t_total
            );
        }
        assert_same_cache(donor.layer(0), fresh.layer(0));
        let dl = donor.layer(0);
        let fl = fresh.layer(0);
        prop_assert_eq!(dl.memo_width(), fl.memo_width(), "memo layout diverged");
        if dl.memo_width() > 0 {
            // The seeded memo (m snapshot rows + incrementally decoded
            // suffix rows) matches the cold memo bit for bit.
            prop_assert_eq!(fl.memo_len(), dl.memo_len());
            for pos in 0..dl.memo_len() {
                prop_assert_eq!(dl.memo_row(pos), fl.memo_row(pos), "memo row {} diverged", pos);
            }
        }

        // Offloaded two-tier cache: it keeps no memo (memo_ensure
        // refuses), so seeding copies K/V rows only and attention
        // re-materializes — still bitwise identical, with the same
        // eviction pattern as a cold offloaded prefill.
        let window = 1 + t_total / 3;
        let mut off_mono = OffloadedLayerCache::new(spec.0, spec.1, window, MAX_SEQ).unwrap();
        let off_cold = attn.forward(&x, &mut off_mono, &rope, None).unwrap();
        let mut off = OffloadedLayerCache::new(spec.0, spec.1, window, MAX_SEQ).unwrap();
        mat.seed_layer(0, &mut off).unwrap();
        prop_assert_eq!(off.len(), m);
        let off_warm = attn.forward(&suffix, &mut off, &rope, None).unwrap();
        for t in 0..t_total - m {
            prop_assert_eq!(
                off_warm.row(t),
                off_cold.row(m + t),
                "offloaded suffix row {} diverged (split {}/{})", t, m, t_total
            );
        }
        assert_same_cache(&off_mono, &off);
        // And the offloaded path agrees with the flat path exactly.
        prop_assert_eq!(off_cold.as_slice(), cold.as_slice());
    }

    #[test]
    fn eviction_never_exceeds_the_byte_budget(
        capacity in 100usize..2000,
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..4, 1..9), any::<bool>()),
            1..40,
        ),
    ) {
        // A tiny alphabet forces shared prefixes, edge splits and
        // promotions; the tight budget forces eviction churn.
        let px = PrefixCache::new(PrefixCacheConfig {
            capacity_bytes: capacity,
            min_prefix_len: 1,
        });
        for (tokens, is_insert) in &ops {
            if *is_insert {
                let mut donor = KvCache::new(&[(3, 2)], MAX_SEQ);
                for (pos, &t) in tokens.iter().enumerate() {
                    let k = [pos as f32, t as f32, 0.5];
                    let v = [t as f32, pos as f32];
                    donor.layer_mut(0).push(&k, &v).unwrap();
                }
                px.insert(tokens, &donor);
            } else {
                let _ = px.lookup(tokens);
            }
            let s = px.stats();
            prop_assert!(
                s.resident_bytes <= capacity as u64,
                "budget exceeded: {} resident under a {} budget",
                s.resident_bytes,
                capacity
            );
            prop_assert_eq!(s.lookups, s.hits + s.misses);
            prop_assert_eq!(s.entries == 0, s.resident_bytes == 0);
        }
    }
}
