//! Property tests for the KV-cache pool: random lease/release
//! schedules must never alias a cache, never leak a lease, and always
//! make released slots reusable — and misuse (releasing a lease into
//! the wrong pool, even one whose ids collide) must error without
//! corrupting the free list. With a prefix cache attached, concurrent
//! lease/insert/evict churn must preserve the construction invariant
//! `in_use + free == constructed` at every observable instant.

use kt_model::pool::{CacheLease, KvCachePool};
use kt_model::prefix::PrefixCacheConfig;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn lease_release_schedules_preserve_invariants(
        max_leases in 1usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0usize..8), 1..40),
    ) {
        let pool = KvCachePool::new(&[(4, 4), (2, 2)], 8, max_leases);
        let mut held: Vec<CacheLease> = Vec::new();
        let mut seen_ids: HashSet<u64> = HashSet::new();

        for (is_lease, pick) in ops {
            if is_lease {
                match pool.lease() {
                    Some(lease) => {
                        prop_assert!(
                            held.len() < max_leases,
                            "lease granted beyond max_leases"
                        );
                        // No aliasing: every lease id is fresh.
                        prop_assert!(
                            seen_ids.insert(lease.id()),
                            "lease id {} handed out twice", lease.id()
                        );
                        // Recycled caches arrive reset.
                        prop_assert_eq!(lease.cache.seq_len(), 0);
                        held.push(lease);
                    }
                    None => prop_assert_eq!(
                        held.len(), max_leases,
                        "pool starved below its limit"
                    ),
                }
            } else if !held.is_empty() {
                let mut lease = held.swap_remove(pick % held.len());
                // Dirty the cache; the pool must reset it on release.
                lease.cache.layer_mut(0).push(&[1.0; 4], &[2.0; 4]).unwrap();
                pool.release(lease).unwrap();
            }
            // Accounting stays consistent after every op.
            prop_assert_eq!(pool.in_use(), held.len());
            prop_assert_eq!(pool.available(), max_leases - held.len());
        }

        // Releasing everything leaves no leaks: the pool drains to
        // zero outstanding and a full complement of leases is
        // available again.
        for lease in held.drain(..) {
            pool.release(lease).unwrap();
        }
        prop_assert_eq!(pool.in_use(), 0);
        prop_assert_eq!(pool.available(), max_leases);
        let refill: Vec<CacheLease> =
            (0..max_leases).map(|_| pool.lease().unwrap()).collect();
        prop_assert!(pool.lease().is_none());
        for lease in refill {
            prop_assert_eq!(lease.cache.seq_len(), 0, "recycled cache not reset");
            pool.release(lease).unwrap();
        }
    }

    #[test]
    fn concurrent_lease_release_is_race_free(
        seed_ops in proptest::collection::vec(1usize..6, 2..5),
    ) {
        // Several threads hammer one pool; aggregate invariants must
        // hold no matter the interleaving.
        let pool = std::sync::Arc::new(KvCachePool::new(&[(4, 4)], 4, 3));
        let ids = std::sync::Arc::new(std::sync::Mutex::new(HashSet::<u64>::new()));
        std::thread::scope(|scope| {
            for &rounds in &seed_ops {
                let pool = std::sync::Arc::clone(&pool);
                let ids = std::sync::Arc::clone(&ids);
                scope.spawn(move || {
                    for _ in 0..rounds * 8 {
                        if let Some(lease) = pool.lease() {
                            assert!(
                                ids.lock().unwrap().insert(lease.id()),
                                "aliased lease id under concurrency"
                            );
                            assert_eq!(lease.cache.seq_len(), 0);
                            pool.release(lease).unwrap();
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
        prop_assert_eq!(pool.in_use(), 0, "leases leaked under concurrency");
        prop_assert!(pool.pooled() <= 3, "free list exceeded max_leases");
    }

    #[test]
    fn foreign_colliding_releases_error_without_corrupting_the_free_list(
        ops in proptest::collection::vec(any::<bool>(), 1..15),
    ) {
        for misroute in ops {
            // Two pools with identical shapes: their first lease ids
            // collide (both count from zero), so only the pool tag can
            // tell a foreign lease apart.
            let a = KvCachePool::new(&[(4, 4)], 8, 2);
            let b = KvCachePool::new(&[(4, 4)], 8, 2);
            let la = a.lease().unwrap();
            let lb = b.lease().unwrap();
            prop_assert_eq!(la.id(), lb.id(), "ids collide by construction");
            if misroute {
                // Misrouted releases error; the foreign cache never
                // lands in the wrong pool's free list. The consumed
                // lease stays observable as a leak in its origin pool.
                prop_assert!(a.release(lb).is_err(), "foreign lease accepted");
                prop_assert!(b.release(la).is_err(), "foreign lease accepted");
                for p in [&a, &b] {
                    let o = p.occupancy();
                    prop_assert_eq!((o.in_use, o.free, o.constructed), (1, 0, 1));
                }
            } else {
                a.release(la).unwrap();
                b.release(lb).unwrap();
                for p in [&a, &b] {
                    let o = p.occupancy();
                    prop_assert_eq!((o.in_use, o.free, o.constructed), (0, 1, 1));
                }
            }
            // Whatever happened, pool `a` still serves fresh leases
            // from an uncorrupted free list, up to its limit.
            let drain: Vec<CacheLease> = std::iter::from_fn(|| a.lease()).collect();
            prop_assert_eq!(drain.len(), if misroute { 1 } else { 2 });
            for l in drain {
                prop_assert_eq!(l.cache.seq_len(), 0, "recycled cache not reset");
                a.release(l).unwrap();
            }
            let o = a.occupancy();
            prop_assert_eq!(o.in_use + o.free, o.constructed, "free list corrupted");
        }
    }

    #[test]
    fn concurrent_prefix_churn_preserves_construction_invariant(
        thread_rounds in proptest::collection::vec(2usize..8, 2..4),
        budget in 200usize..1200,
    ) {
        // A tight prefix budget forces insert/evict churn while
        // several threads lease, seed, extend and release. The pool's
        // construction invariant must hold at every sampled instant
        // (occupancy() reads all fields under one lock, so samples are
        // consistent snapshots).
        let pool = std::sync::Arc::new(
            KvCachePool::new(&[(3, 2)], 16, 3).with_prefix_cache(PrefixCacheConfig {
                capacity_bytes: budget,
                min_prefix_len: 2,
            }),
        );
        std::thread::scope(|scope| {
            for (t, &rounds) in thread_rounds.iter().enumerate() {
                let pool = std::sync::Arc::clone(&pool);
                scope.spawn(move || {
                    for r in 0..rounds * 4 {
                        // Overlapping prompts across threads: hits,
                        // splits and evictions all occur.
                        let n = 3 + (t + r) % 6;
                        let prompt: Vec<u32> = (0..n).map(|i| (i % 3) as u32 + (r % 2) as u32).collect();
                        let Some((mut lease, seeded)) = pool.lease_for_prompt(&prompt) else {
                            continue;
                        };
                        assert!(seeded < prompt.len(), "seed must leave a suffix");
                        // Rows are a pure function of (position, token),
                        // so seeded rows match what we would push.
                        for (pos, &tok) in prompt.iter().enumerate().skip(seeded) {
                            let k = [pos as f32, tok as f32, 1.5];
                            let v = [tok as f32, pos as f32];
                            lease.cache.layer_mut(0).push(&k, &v).unwrap();
                        }
                        let o = pool.occupancy();
                        assert_eq!(
                            o.in_use + o.free,
                            o.constructed,
                            "construction invariant broken mid-flight"
                        );
                        assert!(o.in_use <= 3, "leases beyond max");
                        pool.release_with_prefix(lease, &prompt).unwrap();
                    }
                });
            }
        });
        let o = pool.occupancy();
        prop_assert_eq!(o.in_use, 0, "leases leaked under churn");
        prop_assert_eq!(o.in_use + o.free, o.constructed);
        let s = pool.prefix_stats().expect("prefix cache attached");
        prop_assert!(s.resident_bytes <= budget as u64, "budget exceeded: {:?}", s);
        prop_assert_eq!(s.lookups, s.hits + s.misses);
    }
}
