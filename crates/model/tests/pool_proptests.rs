//! Property tests for the KV-cache pool: random lease/release
//! schedules must never alias a cache, never leak a lease, and always
//! make released slots reusable.

use kt_model::pool::{CacheLease, KvCachePool};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #[test]
    fn lease_release_schedules_preserve_invariants(
        max_leases in 1usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0usize..8), 1..40),
    ) {
        let pool = KvCachePool::new(&[(4, 4), (2, 2)], 8, max_leases);
        let mut held: Vec<CacheLease> = Vec::new();
        let mut seen_ids: HashSet<u64> = HashSet::new();

        for (is_lease, pick) in ops {
            if is_lease {
                match pool.lease() {
                    Some(lease) => {
                        prop_assert!(
                            held.len() < max_leases,
                            "lease granted beyond max_leases"
                        );
                        // No aliasing: every lease id is fresh.
                        prop_assert!(
                            seen_ids.insert(lease.id()),
                            "lease id {} handed out twice", lease.id()
                        );
                        // Recycled caches arrive reset.
                        prop_assert_eq!(lease.cache.seq_len(), 0);
                        held.push(lease);
                    }
                    None => prop_assert_eq!(
                        held.len(), max_leases,
                        "pool starved below its limit"
                    ),
                }
            } else if !held.is_empty() {
                let mut lease = held.swap_remove(pick % held.len());
                // Dirty the cache; the pool must reset it on release.
                lease.cache.layer_mut(0).push(&[1.0; 4], &[2.0; 4]).unwrap();
                pool.release(lease).unwrap();
            }
            // Accounting stays consistent after every op.
            prop_assert_eq!(pool.in_use(), held.len());
            prop_assert_eq!(pool.available(), max_leases - held.len());
        }

        // Releasing everything leaves no leaks: the pool drains to
        // zero outstanding and a full complement of leases is
        // available again.
        for lease in held.drain(..) {
            pool.release(lease).unwrap();
        }
        prop_assert_eq!(pool.in_use(), 0);
        prop_assert_eq!(pool.available(), max_leases);
        let refill: Vec<CacheLease> =
            (0..max_leases).map(|_| pool.lease().unwrap()).collect();
        prop_assert!(pool.lease().is_none());
        for lease in refill {
            prop_assert_eq!(lease.cache.seq_len(), 0, "recycled cache not reset");
            pool.release(lease).unwrap();
        }
    }

    #[test]
    fn concurrent_lease_release_is_race_free(
        seed_ops in proptest::collection::vec(1usize..6, 2..5),
    ) {
        // Several threads hammer one pool; aggregate invariants must
        // hold no matter the interleaving.
        let pool = std::sync::Arc::new(KvCachePool::new(&[(4, 4)], 4, 3));
        let ids = std::sync::Arc::new(std::sync::Mutex::new(HashSet::<u64>::new()));
        std::thread::scope(|scope| {
            for &rounds in &seed_ops {
                let pool = std::sync::Arc::clone(&pool);
                let ids = std::sync::Arc::clone(&ids);
                scope.spawn(move || {
                    for _ in 0..rounds * 8 {
                        if let Some(lease) = pool.lease() {
                            assert!(
                                ids.lock().unwrap().insert(lease.id()),
                                "aliased lease id under concurrency"
                            );
                            assert_eq!(lease.cache.seq_len(), 0);
                            pool.release(lease).unwrap();
                        }
                        std::hint::spin_loop();
                    }
                });
            }
        });
        prop_assert_eq!(pool.in_use(), 0, "leases leaked under concurrency");
        prop_assert!(pool.pooled() <= 3, "free list exceeded max_leases");
    }
}
