//! Property tests for the chunk-invariance of prefill: feeding a
//! prompt through [`Attention::forward`] in arbitrary chunks (any
//! split, down to one token per call) must produce **bitwise** the
//! same outputs and the same KV-cache state as one monolithic call.
//!
//! This is the model-layer contract the serving scheduler's chunked
//! prefill stands on. It holds structurally: every position-dependent
//! projection goes through the row-stable `gemm_rowwise`, attention
//! scores are per-token loops, and cache appends happen in position
//! order regardless of chunking. Checked for GQA and MLA, for every
//! weight dtype, and for both the flat in-memory cache and the
//! two-tier offloaded cache (with windows small enough that evictions
//! happen mid-prefill).

use kt_model::attention::Attention;
use kt_model::config::AttentionKind;
use kt_model::kvcache::{KvStore, LayerCache, OffloadedLayerCache};
use kt_model::rope::Rope;
use kt_tensor::rng::seeded;
use kt_tensor::{Matrix, WeightDtype};
use proptest::prelude::*;

const HIDDEN: usize = 24;
const N_HEADS: usize = 4;
const HEAD_DIM: usize = 8;
const MAX_SEQ: usize = 64;

fn dtype_strategy() -> impl Strategy<Value = WeightDtype> {
    prop_oneof![
        Just(WeightDtype::F32),
        Just(WeightDtype::Bf16),
        Just(WeightDtype::Int8 { group: 8 }),
        Just(WeightDtype::Int4 { group: 8 }),
    ]
}

fn kind_strategy() -> impl Strategy<Value = AttentionKind> {
    prop_oneof![
        Just(AttentionKind::Gqa { kv_heads: 2 }),
        // Rank a multiple of the quant group so Int8/Int4 packing of
        // the rank-k decompression weights is valid.
        Just(AttentionKind::Mla { kv_lora_rank: 8 }),
    ]
}

/// Turns proptest-drawn raw cut sizes into an exact cover of `total`.
fn chunks_covering(total: usize, raw: &[usize]) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = total;
    for &c in raw {
        if left == 0 {
            break;
        }
        let take = c.clamp(1, left);
        chunks.push(take);
        left -= take;
    }
    if left > 0 {
        chunks.push(left);
    }
    chunks
}

/// Runs the prompt through `attn` chunk by chunk, returning the
/// row-concatenated outputs.
fn forward_chunked(
    attn: &Attention,
    x: &Matrix,
    cache: &mut impl KvStore,
    rope: &Rope,
    chunks: &[usize],
) -> Matrix {
    let mut out = Matrix::zeros(x.rows(), HIDDEN).unwrap();
    let mut start = 0;
    for &len in chunks {
        let flat = &x.as_slice()[start * HIDDEN..(start + len) * HIDDEN];
        let chunk = Matrix::from_rows(len, HIDDEN, flat).unwrap();
        let y = attn.forward(&chunk, cache, rope, None).unwrap();
        for t in 0..len {
            out.row_mut(start + t).copy_from_slice(y.row(t));
        }
        start += len;
    }
    assert_eq!(start, x.rows(), "chunks must cover the prompt");
    out
}

/// Asserts two KV stores hold bitwise-identical state.
fn assert_same_cache(a: &impl KvStore, b: &impl KvStore) {
    assert_eq!(a.len(), b.len(), "cache lengths diverged");
    for pos in 0..a.len() {
        assert_eq!(a.k_row(pos), b.k_row(pos), "k row {pos} diverged");
        assert_eq!(a.v_row(pos), b.v_row(pos), "v row {pos} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_prefill_is_bitwise_identical_in_memory_and_offloaded(
        seed in 0u64..1000,
        t_total in 1usize..20,
        raw_chunks in proptest::collection::vec(1usize..7, 0..12),
        dtype in dtype_strategy(),
        kind in kind_strategy(),
    ) {
        let mut rng = seeded(seed);
        let attn =
            Attention::random(HIDDEN, N_HEADS, HEAD_DIM, kind, dtype, &mut rng).unwrap();
        let rope = Rope::new(HEAD_DIM, MAX_SEQ, 10_000.0);
        let x = Matrix::random_uniform(t_total, HIDDEN, 1.0, &mut rng).unwrap();
        let chunks = chunks_covering(t_total, &raw_chunks);
        let (kw, vw) = attn.cache_spec();

        // Monolithic reference on the flat cache.
        let mut mono_cache = LayerCache::new(kw, vw, MAX_SEQ);
        let mono = attn.forward(&x, &mut mono_cache, &rope, None).unwrap();

        // Chunked, flat in-memory cache: outputs and KV state bitwise.
        let mut cache = LayerCache::new(kw, vw, MAX_SEQ);
        let chunked = forward_chunked(&attn, &x, &mut cache, &rope, &chunks);
        prop_assert_eq!(
            mono.as_slice(),
            chunked.as_slice(),
            "in-memory outputs diverged for chunks {:?}",
            &chunks
        );
        assert_same_cache(&mono_cache, &cache);

        // Chunked, offloaded cache with a window small enough that
        // evictions interleave with the chunked appends. MLA caches a
        // zero-width value row; the offloaded tiers store it fine.
        let window = 1 + (t_total / 3);
        let mut off_mono = OffloadedLayerCache::new(kw, vw, window, MAX_SEQ).unwrap();
        let off_ref = attn.forward(&x, &mut off_mono, &rope, None).unwrap();
        let mut off = OffloadedLayerCache::new(kw, vw, window, MAX_SEQ).unwrap();
        let off_chunked = forward_chunked(&attn, &x, &mut off, &rope, &chunks);
        prop_assert_eq!(
            off_ref.as_slice(),
            off_chunked.as_slice(),
            "offloaded outputs diverged for chunks {:?}",
            &chunks
        );
        assert_same_cache(&off_mono, &off);
        // The offloaded view agrees with the flat one, and chunking
        // did not change what got evicted.
        assert_same_cache(&mono_cache, &off);
        if t_total > window {
            prop_assert!(off.slow_len() > 0, "window never overflowed");
            prop_assert_eq!(off.slow_len(), off_mono.slow_len());
        }

        // The memo-accelerated decode path (engaged on the flat cache
        // by MLA) must agree with the memo-free offloaded path — both
        // stores already matched `mono` above, so here we only pin the
        // final-row agreement explicitly for clarity.
        prop_assert_eq!(mono.row(t_total - 1), off_ref.row(t_total - 1));
    }
}
