//! Property tests for the paged KV backend: the block allocator's
//! page accounting must stay exact under arbitrary allocate / clone /
//! drop churn (no double-free, no leak — a page returns to the pool
//! exactly when its last reference drops), stores sharing pages must
//! never observe each other's writes (copy-on-write isolates every
//! mutation of a shared page), and a full churn of push / share /
//! reset across many stores must keep every store's readable rows
//! equal to an independently tracked shadow model.

use kt_model::paged::{BlockAllocator, PageData, PagedKvStore};
use kt_model::KvStore;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

const KW: usize = 3;
const VW: usize = 2;

/// Distinct live pages across every holder list.
fn live(holders: &[&[Arc<PageData>]]) -> usize {
    let set: HashSet<*const PageData> = holders
        .iter()
        .flat_map(|h| h.iter())
        .map(Arc::as_ptr)
        .collect();
    set.len()
}

proptest! {
    #[test]
    fn allocator_churn_never_double_frees_or_leaks(
        total in 1usize..10,
        ops in proptest::collection::vec(
            (0u8..4, 0usize..16), 1..60
        ),
    ) {
        let alloc = BlockAllocator::new(total);
        let mut held: Vec<Arc<PageData>> = Vec::new();
        let mut clones: Vec<Arc<PageData>> = Vec::new();
        for (op, pick) in ops {
            match op {
                // Allocate (or observe a correctly reported exhaustion).
                0 | 1 => match alloc.try_page(KW, VW, 4) {
                    Some(p) => held.push(p),
                    None => prop_assert_eq!(
                        live(&[&held, &clones]),
                        total,
                        "refused a page while some were free"
                    ),
                },
                // Add a second reference to a held page (a frozen
                // prefix segment or a sharing lessee would hold one).
                2 if !held.is_empty() => {
                    clones.push(Arc::clone(&held[pick % held.len()]));
                }
                // Drop one reference from either side.
                _ if !clones.is_empty() && pick % 2 == 0 => {
                    clones.swap_remove(pick % clones.len());
                }
                _ if !held.is_empty() => {
                    held.swap_remove(pick % held.len());
                }
                _ => {}
            }
            // The allocator's count equals the number of distinct
            // pages actually alive — dropping a clone of a still-held
            // page must not free it (double-free), dropping the last
            // reference must (leak).
            let s = alloc.stats();
            prop_assert_eq!(s.allocated, live(&[&held, &clones]));
            prop_assert_eq!(s.allocated + s.free, total);
            prop_assert_eq!(s.alloc_total - s.freed_total, s.allocated as u64);
        }
        held.clear();
        clones.clear();
        let s = alloc.stats();
        prop_assert_eq!(s.allocated, 0, "pages leaked after dropping all refs");
        prop_assert_eq!(s.free, total);
        prop_assert_eq!(s.alloc_total, s.freed_total);
    }

    #[test]
    fn store_churn_matches_shadow_model_and_conserves_pages(
        page_rows in 1usize..5,
        ops in proptest::collection::vec(
            (0u8..6, 0usize..4, 0usize..4, 0usize..8), 1..80
        ),
    ) {
        const N_STORES: usize = 4;
        let alloc = BlockAllocator::new(24);
        let mut stores: Vec<PagedKvStore> = (0..N_STORES)
            .map(|_| PagedKvStore::new(KW, VW, 6 * page_rows, page_rows, &alloc))
            .collect();
        // Shadow model: the scalar each readable row must hold
        // (rows shared out of a partially filled tail read as the
        // allocator's zero fill).
        let mut model: Vec<Vec<f32>> = vec![Vec::new(); N_STORES];
        let mut salt = 0.0f32;

        for (op, a, b, page) in ops {
            let (a, b) = (a % N_STORES, b % N_STORES);
            match op {
                // Push one row into store `a`.
                0..=2 => {
                    salt += 1.0;
                    match stores[a].push(&[salt; KW], &[-salt; VW]) {
                        Ok(()) => model[a].push(salt),
                        // Pool exhausted or store at capacity: the
                        // failed push must not have grown the store.
                        Err(_) => prop_assert_eq!(stores[a].len(), model[a].len()),
                    }
                }
                // Share one of `a`'s pages into `b` (page-aligned
                // target only; the donor page may be a partially
                // filled tail, whose unwritten rows read as zero).
                3 | 4 if a != b => {
                    let n_pages = stores[a].pages().len();
                    if n_pages == 0
                        || !stores[b].len().is_multiple_of(page_rows)
                        || stores[b].len() + page_rows > stores[b].capacity()
                    {
                        continue;
                    }
                    let idx = page % n_pages;
                    let shared = Arc::clone(&stores[a].pages()[idx]);
                    stores[b].share_page(&shared).unwrap();
                    let donated: Vec<f32> = (0..page_rows)
                        .map(|r| {
                            model[a].get(idx * page_rows + r).copied().unwrap_or(0.0)
                        })
                        .collect();
                    model[b].extend(donated);
                }
                // Reset a store: its uniquely held pages go back.
                5 => {
                    stores[a].reset();
                    model[a].clear();
                }
                _ => {}
            }
            // Conservation: the allocator's live count is exactly the
            // distinct pages reachable from the stores.
            let tables: Vec<&[Arc<PageData>]> =
                stores.iter().map(|s| s.pages()).collect();
            prop_assert_eq!(alloc.allocated_pages(), live(&tables));
            // Isolation: every store reads back its own shadow model —
            // a write that leaked through a shared page (missed
            // copy-on-write) or a copy that dropped rows would show up
            // here as a foreign or stale scalar.
            for (s, m) in stores.iter().zip(&model) {
                prop_assert_eq!(s.len(), m.len());
                for (pos, &want) in m.iter().enumerate() {
                    prop_assert_eq!(s.k_row(pos), &[want; KW][..]);
                    prop_assert_eq!(s.v_row(pos), &[-want; VW][..]);
                }
            }
        }
        for s in &mut stores {
            s.reset();
        }
        prop_assert_eq!(alloc.allocated_pages(), 0, "reset leaked pages");
    }

    #[test]
    fn cow_write_never_reaches_a_shared_page(
        page_rows in 2usize..6,
        fill in 1usize..5,
    ) {
        // Fill part of the first page, then freeze a second reference
        // to it (what a prefix segment holds). The next push lands in
        // that page and must copy-on-write: the frozen reference keeps
        // its bits — including the zero fill past `fill` — bit for bit.
        let fill = fill.min(page_rows - 1);
        let alloc = BlockAllocator::new(4);
        let mut store = PagedKvStore::new(KW, VW, 4 * page_rows, page_rows, &alloc);
        for i in 0..fill {
            let v = (i + 1) as f32;
            store.push(&[v; KW], &[-v; VW]).unwrap();
        }
        let frozen = Arc::clone(&store.pages()[0]);
        let before = alloc.allocated_pages();

        store.push(&[99.0; KW], &[-99.0; VW]).unwrap();

        // The write went to a private copy, not the frozen page.
        prop_assert!(
            !Arc::ptr_eq(&frozen, &store.pages()[0]),
            "store still writes the shared page"
        );
        prop_assert_eq!(alloc.allocated_pages(), before + 1);
        for r in 0..page_rows {
            let want = if r < fill { (r + 1) as f32 } else { 0.0 };
            prop_assert_eq!(frozen.k_row(r), &[want; KW][..]);
            prop_assert_eq!(frozen.v_row(r), &[-want; VW][..]);
        }
        prop_assert_eq!(store.k_row(fill), &[99.0; KW][..]);
        // Dropping the frozen reference frees exactly one page.
        drop(frozen);
        prop_assert_eq!(alloc.allocated_pages(), before);
        store.reset();
        prop_assert_eq!(alloc.allocated_pages(), 0);
    }
}
