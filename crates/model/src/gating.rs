//! MoE routers: top-k and grouped top-k gating with shared experts.
//!
//! Covers the routing strategies of the evaluated models (Table 1):
//! Qwen2 uses softmax top-k; DeepSeek-V2 uses grouped softmax top-k;
//! DeepSeek-V3 uses grouped **sigmoid** top-k with weight
//! renormalization and a routed scaling factor. Group selection follows
//! DeepSeek: a group's score is the sum of its two highest expert
//! scores, the best `topk_groups` groups survive, and top-k is taken
//! over the surviving experts.

use kt_kernels::moe::MoeRouting;
use kt_kernels::act::{sigmoid, softmax_inplace};
use kt_tensor::Matrix;
use rand::rngs::StdRng;

use crate::error::ModelError;

/// Router scoring function applied to gate logits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreFunc {
    /// Softmax over all experts (DeepSeek-V2, Qwen2).
    Softmax,
    /// Elementwise sigmoid (DeepSeek-V3).
    Sigmoid,
}

/// Routing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Number of routed experts.
    pub n_experts: usize,
    /// Experts selected per token.
    pub top_k: usize,
    /// Expert groups (1 = plain top-k).
    pub n_groups: usize,
    /// Groups surviving group selection.
    pub topk_groups: usize,
    /// Scoring function.
    pub score: ScoreFunc,
    /// Multiplier applied to final routing weights.
    pub routed_scaling: f32,
    /// Renormalize selected weights to sum to 1 before scaling.
    pub norm_topk_prob: bool,
}

impl GateConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] on violated constraints.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.n_experts == 0 || self.top_k == 0 || self.top_k > self.n_experts {
            return Err(ModelError::config(format!(
                "top_k {} must be in 1..={}",
                self.top_k, self.n_experts
            )));
        }
        if self.n_groups == 0 || !self.n_experts.is_multiple_of(self.n_groups) {
            return Err(ModelError::config(format!(
                "n_groups {} must divide n_experts {}",
                self.n_groups, self.n_experts
            )));
        }
        if self.topk_groups == 0 || self.topk_groups > self.n_groups {
            return Err(ModelError::config(format!(
                "topk_groups {} must be in 1..={}",
                self.topk_groups, self.n_groups
            )));
        }
        let per_group = self.n_experts / self.n_groups;
        if self.top_k > per_group * self.topk_groups {
            return Err(ModelError::config(format!(
                "top_k {} cannot be satisfied by {} groups of {}",
                self.top_k, self.topk_groups, per_group
            )));
        }
        Ok(())
    }
}

/// A learned (here: randomly initialized) gating network.
#[derive(Debug, Clone)]
pub struct Router {
    /// Gate projection, `n_experts x hidden` (dense; it is tiny and
    /// lives on the GPU in the paper's placement).
    w: Matrix,
    cfg: GateConfig,
}

impl Router {
    /// Creates a router with random weights.
    ///
    /// # Errors
    ///
    /// Propagates config validation errors.
    pub fn random(cfg: GateConfig, hidden: usize, rng: &mut StdRng) -> Result<Self, ModelError> {
        cfg.validate()?;
        let w = Matrix::random_kaiming(cfg.n_experts, hidden, rng)?;
        Ok(Router { w, cfg })
    }

    /// Creates a router from explicit weights (for tests).
    ///
    /// # Errors
    ///
    /// Propagates config validation errors and shape mismatches.
    pub fn from_weights(cfg: GateConfig, w: Matrix) -> Result<Self, ModelError> {
        cfg.validate()?;
        if w.rows() != cfg.n_experts {
            return Err(ModelError::config(format!(
                "gate weight has {} rows, expected {}",
                w.rows(),
                cfg.n_experts
            )));
        }
        Ok(Router { w, cfg })
    }

    /// Routing configuration.
    pub fn config(&self) -> &GateConfig {
        &self.cfg
    }

    /// Serializes the router (config + gate weights).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), ModelError> {
        use kt_tensor::serial::{write_f32s, write_u64};
        write_u64(w, self.cfg.n_experts as u64)?;
        write_u64(w, self.cfg.top_k as u64)?;
        write_u64(w, self.cfg.n_groups as u64)?;
        write_u64(w, self.cfg.topk_groups as u64)?;
        write_u64(w, matches!(self.cfg.score, ScoreFunc::Sigmoid) as u64)?;
        write_u64(w, self.cfg.norm_topk_prob as u64)?;
        write_f32s(w, &[self.cfg.routed_scaling])?;
        self.w.write_to(w)?;
        Ok(())
    }

    /// Deserializes a router written by [`Router::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] on corrupt input.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, ModelError> {
        use kt_tensor::serial::{read_f32s, read_len, read_u64, MAX_ELEMS};
        let n_experts = read_len(r, MAX_ELEMS)?;
        let top_k = read_len(r, MAX_ELEMS)?;
        let n_groups = read_len(r, MAX_ELEMS)?;
        let topk_groups = read_len(r, MAX_ELEMS)?;
        let score = if read_u64(r)? != 0 {
            ScoreFunc::Sigmoid
        } else {
            ScoreFunc::Softmax
        };
        let norm_topk_prob = read_u64(r)? != 0;
        let scaling = read_f32s(r, 1)?;
        let cfg = GateConfig {
            n_experts,
            top_k,
            n_groups,
            topk_groups,
            score,
            routed_scaling: scaling.first().copied().unwrap_or(1.0),
            norm_topk_prob,
        };
        let w = Matrix::read_from(r)?;
        Router::from_weights(cfg, w)
    }

    /// Raw expert scores for one token (after the scoring function).
    pub fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut s: Vec<f32> = (0..self.cfg.n_experts)
            .map(|e| {
                self.w
                    .row(e)
                    .iter()
                    .zip(x)
                    .map(|(w, v)| w * v)
                    .sum::<f32>()
            })
            .collect();
        match self.cfg.score {
            ScoreFunc::Softmax => softmax_inplace(&mut s),
            ScoreFunc::Sigmoid => {
                for v in &mut s {
                    *v = sigmoid(*v);
                }
            }
        }
        s
    }

    /// Routes one token, returning `(expert, weight)` pairs sorted by
    /// descending weight.
    pub fn route_row(&self, x: &[f32]) -> Vec<(usize, f32)> {
        let scores = self.scores(x);
        let per_group = self.cfg.n_experts / self.cfg.n_groups;

        // Group selection: score = sum of the two best experts in the
        // group (DeepSeek's grouped top-k).
        let allowed: Vec<bool> = if self.cfg.n_groups > 1 {
            let mut group_scores: Vec<(usize, f32)> = (0..self.cfg.n_groups)
                .map(|g| {
                    let mut best = [f32::NEG_INFINITY; 2];
                    for &s in &scores[g * per_group..(g + 1) * per_group] {
                        if s > best[0] {
                            best[1] = best[0];
                            best[0] = s;
                        } else if s > best[1] {
                            best[1] = s;
                        }
                    }
                    (g, best[0] + best[1].max(0.0))
                })
                .collect();
            group_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut allowed = vec![false; self.cfg.n_experts];
            for &(g, _) in group_scores.iter().take(self.cfg.topk_groups) {
                allowed[g * per_group..(g + 1) * per_group].fill(true);
            }
            allowed
        } else {
            vec![true; self.cfg.n_experts]
        };

        // Top-k over surviving experts.
        let mut ranked: Vec<(usize, f32)> = scores
            .iter()
            .enumerate()
            .filter(|(e, _)| allowed[*e])
            .map(|(e, &s)| (e, s))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(self.cfg.top_k);

        if self.cfg.norm_topk_prob {
            let sum: f32 = ranked.iter().map(|&(_, s)| s).sum();
            if sum > 0.0 {
                for r in &mut ranked {
                    r.1 /= sum;
                }
            }
        }
        for r in &mut ranked {
            r.1 *= self.cfg.routed_scaling;
        }
        ranked
    }

    /// Routes a batch of tokens.
    pub fn route(&self, x: &Matrix) -> MoeRouting {
        MoeRouting::new((0..x.rows()).map(|t| self.route_row(x.row(t))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    fn cfg(n: usize, k: usize, groups: usize, kg: usize, score: ScoreFunc) -> GateConfig {
        GateConfig {
            n_experts: n,
            top_k: k,
            n_groups: groups,
            topk_groups: kg,
            score,
            routed_scaling: 1.0,
            norm_topk_prob: false,
        }
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        assert!(cfg(8, 0, 1, 1, ScoreFunc::Softmax).validate().is_err());
        assert!(cfg(8, 9, 1, 1, ScoreFunc::Softmax).validate().is_err());
        assert!(cfg(8, 2, 3, 1, ScoreFunc::Softmax).validate().is_err());
        assert!(cfg(8, 2, 4, 5, ScoreFunc::Softmax).validate().is_err());
        // 8 experts, 4 groups of 2, keep 1 group -> at most 2 selectable.
        assert!(cfg(8, 3, 4, 1, ScoreFunc::Softmax).validate().is_err());
        assert!(cfg(8, 2, 4, 1, ScoreFunc::Softmax).validate().is_ok());
    }

    #[test]
    fn topk_selects_highest_scores() {
        let mut rng = seeded(1);
        let router = Router::random(cfg(16, 4, 1, 1, ScoreFunc::Softmax), 32, &mut rng).unwrap();
        let mut x = vec![0.0f32; 32];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        let picks = router.route_row(&x);
        assert_eq!(picks.len(), 4);
        let scores = router.scores(&x);
        // Every non-picked expert must score <= the lowest pick.
        let min_pick = picks.iter().map(|&(_, s)| s).fold(f32::INFINITY, f32::min);
        for (e, &s) in scores.iter().enumerate() {
            if !picks.iter().any(|&(p, _)| p == e) {
                assert!(s <= min_pick + 1e-6);
            }
        }
        // Sorted descending.
        for w in picks.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn grouped_topk_respects_group_mask() {
        let mut rng = seeded(2);
        let c = cfg(16, 4, 4, 2, ScoreFunc::Sigmoid);
        let router = Router::random(c, 32, &mut rng).unwrap();
        let mut x = vec![0.0f32; 32];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        let picks = router.route_row(&x);
        assert_eq!(picks.len(), 4);
        // All picks must come from at most topk_groups distinct groups.
        let mut groups: Vec<usize> = picks.iter().map(|&(e, _)| e / 4).collect();
        groups.sort_unstable();
        groups.dedup();
        assert!(groups.len() <= 2, "groups={groups:?}");
    }

    #[test]
    fn normalization_and_scaling_apply() {
        let mut rng = seeded(3);
        let mut c = cfg(8, 4, 1, 1, ScoreFunc::Sigmoid);
        c.norm_topk_prob = true;
        c.routed_scaling = 2.5;
        let router = Router::random(c, 16, &mut rng).unwrap();
        let mut x = vec![0.0f32; 16];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        let picks = router.route_row(&x);
        let sum: f32 = picks.iter().map(|&(_, w)| w).sum();
        assert!((sum - 2.5).abs() < 1e-4, "sum={sum}");
    }

    #[test]
    fn softmax_weights_sum_below_one_without_norm() {
        let mut rng = seeded(4);
        let router = Router::random(cfg(8, 3, 1, 1, ScoreFunc::Softmax), 16, &mut rng).unwrap();
        let mut x = vec![0.0f32; 16];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        let picks = router.route_row(&x);
        let sum: f32 = picks.iter().map(|&(_, w)| w).sum();
        assert!(sum > 0.0 && sum <= 1.0 + 1e-6);
    }

    #[test]
    fn routing_is_deterministic() {
        let mut rng = seeded(5);
        let router = Router::random(cfg(16, 4, 4, 2, ScoreFunc::Sigmoid), 24, &mut rng).unwrap();
        let x = Matrix::random_uniform(3, 24, 1.0, &mut rng).unwrap();
        let a = router.route(&x);
        let b = router.route(&x);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.n_tokens(), 3);
        assert_eq!(a.n_activations(), 12);
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = seeded(41);
        let router =
            Router::random(cfg(16, 4, 4, 2, ScoreFunc::Sigmoid), 24, &mut rng).unwrap();
        let mut buf = Vec::new();
        router.write_to(&mut buf).unwrap();
        let loaded = Router::read_from(&mut buf.as_slice()).unwrap();
        let mut x = vec![0.0f32; 24];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        assert_eq!(router.route_row(&x), loaded.route_row(&x));
        assert_eq!(loaded.config(), router.config());
    }

    #[test]
    fn hand_built_gate_routes_predictably() {
        // Identity-ish gate: expert e fires on feature e.
        let mut w = Matrix::zeros(4, 4).unwrap();
        for e in 0..4 {
            w.set(e, e, 10.0);
        }
        let router =
            Router::from_weights(cfg(4, 2, 1, 1, ScoreFunc::Softmax), w).unwrap();
        let picks = router.route_row(&[0.0, 5.0, 0.0, 3.0]);
        assert_eq!(picks[0].0, 1);
        assert_eq!(picks[1].0, 3);
    }
}
