//! Rotary position embeddings (RoPE).
//!
//! Applied per attention head to queries and keys; pairs `(2i, 2i+1)` of
//! each head vector are rotated by an angle that grows with position and
//! shrinks with dimension index.

/// Precomputed RoPE rotation table.
#[derive(Debug, Clone)]
pub struct Rope {
    /// `cos[pos * half + i]`, `half = head_dim / 2`.
    cos: Vec<f32>,
    sin: Vec<f32>,
    head_dim: usize,
    max_seq: usize,
}

impl Rope {
    /// Precomputes rotations for positions `0..max_seq`.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd or zero.
    pub fn new(head_dim: usize, max_seq: usize, theta: f32) -> Self {
        assert!(head_dim >= 2 && head_dim.is_multiple_of(2), "head_dim must be even");
        let half = head_dim / 2;
        let mut cos = vec![0.0f32; max_seq * half];
        let mut sin = vec![0.0f32; max_seq * half];
        for pos in 0..max_seq {
            for i in 0..half {
                let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
                let angle = pos as f32 * freq;
                cos[pos * half + i] = angle.cos();
                sin[pos * half + i] = angle.sin();
            }
        }
        Rope {
            cos,
            sin,
            head_dim,
            max_seq,
        }
    }

    /// Head dimension this table was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Maximum supported position (exclusive).
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Rotates one head vector in place for position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= max_seq` or the vector length differs from
    /// `head_dim`.
    pub fn apply(&self, v: &mut [f32], pos: usize) {
        assert_eq!(v.len(), self.head_dim, "vector length != head_dim");
        assert!(pos < self.max_seq, "position {pos} beyond RoPE table");
        let half = self.head_dim / 2;
        let cos = &self.cos[pos * half..(pos + 1) * half];
        let sin = &self.sin[pos * half..(pos + 1) * half];
        for i in 0..half {
            let (a, b) = (v[2 * i], v[2 * i + 1]);
            v[2 * i] = a * cos[i] - b * sin[i];
            v[2 * i + 1] = a * sin[i] + b * cos[i];
        }
    }

    /// Applies RoPE to every `head_dim`-sized chunk of `v` (a packed
    /// multi-head vector) at position `pos`.
    pub fn apply_multihead(&self, v: &mut [f32], pos: usize) {
        debug_assert_eq!(v.len() % self.head_dim, 0);
        for chunk in v.chunks_mut(self.head_dim) {
            self.apply(chunk, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(8, 16, 10_000.0);
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let orig = v.clone();
        rope.apply(&mut v, 0);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(16, 64, 10_000.0);
        let mut v: Vec<f32> = (0..16).map(|i| (i as f32) - 7.5).collect();
        let norm0: f32 = v.iter().map(|x| x * x).sum();
        rope.apply(&mut v, 37);
        let norm1: f32 = v.iter().map(|x| x * x).sum();
        assert!((norm0 - norm1).abs() < 1e-3);
    }

    #[test]
    fn inner_product_depends_only_on_relative_position() {
        // The defining RoPE property: <R_m q, R_n k> depends on (m - n).
        let rope = Rope::new(8, 128, 10_000.0);
        let q0 = vec![0.3f32, -1.2, 0.7, 0.1, 1.0, -0.4, 0.2, 0.9];
        let k0 = vec![-0.5f32, 0.8, 0.2, -0.3, 0.6, 1.1, -0.7, 0.4];
        let pairs = [(3usize, 1usize), (10, 8), (50, 48)];
        let mut dots = Vec::new();
        for (m, n) in pairs {
            let mut q = q0.clone();
            let mut k = k0.clone();
            rope.apply(&mut q, m);
            rope.apply(&mut k, n);
            dots.push(dot(&q, &k));
        }
        assert!((dots[0] - dots[1]).abs() < 1e-4);
        assert!((dots[1] - dots[2]).abs() < 1e-4);
    }

    #[test]
    fn multihead_applies_per_chunk() {
        let rope = Rope::new(4, 16, 10_000.0);
        let mut packed = vec![1.0f32, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let mut single = vec![1.0f32, 0.0, 1.0, 0.0];
        rope.apply_multihead(&mut packed, 5);
        rope.apply(&mut single, 5);
        assert_eq!(&packed[..4], single.as_slice());
        assert_eq!(&packed[4..], single.as_slice());
    }

    #[test]
    #[should_panic(expected = "beyond RoPE table")]
    fn out_of_range_position_panics() {
        let rope = Rope::new(4, 8, 10_000.0);
        let mut v = vec![0.0f32; 4];
        rope.apply(&mut v, 8);
    }
}
