//! Shared-prefix KV reuse: a token-keyed radix index over frozen,
//! ref-counted KV snapshots.
//!
//! Serving workloads repeat prompt prefixes constantly — system
//! prompts, few-shot templates, multi-turn history — yet a blank lease
//! recomputes identical KV state for every request. This module caches
//! that state once: completed prefixes are frozen into immutable
//! [`Segment`]s (per-layer K/V rows plus, when present, the MLA
//! decoded-row memo) keyed by their token sequence in a radix tree, and
//! admission seeds a fresh lease from the longest cached prefix so the
//! scheduler only prefills the uncached suffix.
//!
//! Copy-on-write contract: snapshot rows are immutable and shared
//! (`Arc<Segment>`); a lease either *copies* the matched rows into its
//! own private cache (flat caches) or — when both donor and target are
//! page-table backed — takes *references* to whole frozen pages and
//! appends privately from the first page boundary past the match
//! ([`PrefixMatch::seed_into`]'s paged path). Either way the snapshot
//! stays immutable: a paged lease that must overwrite a shared page
//! copies it first ([`crate::paged::PagedKvStore`]'s copy-on-write).
//! Eviction can therefore drop any segment at any time — in-flight
//! seedings hold their own `Arc` and finish safely.
//!
//! Page-alignment invariant: shared pages are taken whole or not at
//! all. [`PrefixMatch::page_aligned_len`] rounds the match down to a
//! page boundary, seeding shares exactly that many rows by reference,
//! and the remaining matched rows (fewer than one page) are row-copied
//! — so sharing never splits mid-page, and
//! [`crate::paged::PagedKvStore::share_page`] enforces it. This also
//! resolves the historical lookup asymmetry: admission probes
//! `prompt[..len-1]` (at least one token must be prefilled to produce
//! logits) while inserts freeze full fed sequences, so a match length
//! is rarely page-aligned on its own; rounding down, not up, keeps the
//! shared region independent of that off-by-one.
//!
//! Bitwise equality: cached K/V rows are position-dependent only on the
//! tokens at or before them (causal attention; RoPE is applied at push
//! time from the absolute position), and every projection that produced
//! them went through the row-stable `gemm_rowwise`. A row copied out of
//! a snapshot therefore carries exactly the bits a cold prefill would
//! produce at that position, and a seeded-then-suffix-prefilled
//! sequence is indistinguishable — bit for bit — from a cold full
//! prefill chunked at the seed boundary.
//!
//! Eviction is LRU-by-bytes: every lookup/insert touches the nodes on
//! its path, and when resident bytes exceed the budget the
//! least-recently-touched *leaf* is dropped (leaves first keeps every
//! interior prefix valid: a parent's rows never reference its
//! children).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::error::ModelError;
use crate::kvcache::{KvCache, KvStore};
use crate::paged::PageData;

/// Configuration for a [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Resident-byte budget for frozen snapshots. 0 caches nothing.
    pub capacity_bytes: usize,
    /// Shortest prefix worth reusing: lookups matching fewer tokens
    /// miss, and shorter completed sequences are not inserted.
    pub min_prefix_len: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        PrefixCacheConfig {
            capacity_bytes: 32 << 20,
            min_prefix_len: 4,
        }
    }
}

/// One layer's frozen rows for a radix-edge token span.
///
/// Flat donors freeze into owned row buffers (`Rows`); paged donors
/// freeze into references to the donor's immutable pages (`Pages`) —
/// zero bytes copied, and the pages become sharable with later leases.
#[derive(Debug)]
enum LayerSeg {
    Rows {
        k: Vec<f32>,
        v: Vec<f32>,
        /// Decoded-row memo for the span — captured only when the donor
        /// memo covered every position of the span, empty otherwise, so
        /// a present memo is always contiguous from the span start.
        memo: Vec<f32>,
        k_width: usize,
        v_width: usize,
        memo_width: usize,
    },
    Pages {
        /// Pages covering the span, in order. The first and last may
        /// extend beyond the span (a span rarely starts or ends on a
        /// page boundary); `start` is the span's row offset within
        /// `pages[0]`. The offset always equals the span's absolute
        /// position mod `page_rows`, because segments are frozen at
        /// their absolute positions and splits preserve them — that is
        /// what lets a later lease share these pages at the same
        /// absolute positions.
        pages: Vec<Arc<PageData>>,
        start: usize,
        k_width: usize,
        v_width: usize,
        page_rows: usize,
        /// Decoded-row memo for the span (same capture rule as `Rows`).
        /// The memo is per-store flat scratch, never page-backed, so it
        /// is the one part of a paged span that still freezes by copy:
        /// reseeding it costs O(span bytes) but saves the seeded lease
        /// from re-decoding every shared position through the MLA
        /// up-projections on its first forward — bit-identical either
        /// way (`gemm_rowwise` row invariance), so this is purely a
        /// latency trade.
        memo: Vec<f32>,
        memo_width: usize,
    },
}

impl LayerSeg {
    fn k_row(&self, r: usize) -> &[f32] {
        match self {
            LayerSeg::Rows { k, k_width, .. } => &k[r * k_width..(r + 1) * k_width],
            LayerSeg::Pages {
                pages,
                start,
                page_rows,
                ..
            } => pages[(start + r) / page_rows].k_row((start + r) % page_rows),
        }
    }

    fn v_row(&self, r: usize) -> &[f32] {
        match self {
            LayerSeg::Rows { v, v_width, .. } => &v[r * v_width..(r + 1) * v_width],
            LayerSeg::Pages {
                pages,
                start,
                page_rows,
                ..
            } => pages[(start + r) / page_rows].v_row((start + r) % page_rows),
        }
    }

    fn memo_width(&self) -> usize {
        match self {
            LayerSeg::Rows { memo_width, .. } | LayerSeg::Pages { memo_width, .. } => *memo_width,
        }
    }

    fn memo_row(&self, r: usize) -> &[f32] {
        match self {
            LayerSeg::Rows {
                memo, memo_width, ..
            }
            | LayerSeg::Pages {
                memo, memo_width, ..
            } => &memo[r * memo_width..(r + 1) * memo_width],
        }
    }

    fn memo_rows(&self) -> usize {
        match self {
            LayerSeg::Rows {
                memo, memo_width, ..
            }
            | LayerSeg::Pages {
                memo, memo_width, ..
            } => memo.len().checked_div(*memo_width).unwrap_or_default(),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            LayerSeg::Rows { k, v, memo, .. } => {
                (k.len() + v.len() + memo.len()) * std::mem::size_of::<f32>()
            }
            // Whole pages, conservatively: that is what holding these
            // references keeps alive in the allocator (a page straddling
            // a split boundary is counted by both halves). The memo
            // rides on top: it is copied, not page-backed.
            LayerSeg::Pages { pages, memo, .. } => {
                pages.iter().map(|p| p.bytes()).sum::<usize>()
                    + memo.len() * std::mem::size_of::<f32>()
            }
        }
    }
}

/// A frozen, immutable KV snapshot for one radix-edge token span:
/// per-layer K/V rows (and the MLA decoded-row memo where the donor
/// had one) for `rows` consecutive positions.
///
/// Segments are shared by reference between the index and in-flight
/// seedings; they are never mutated after construction.
#[derive(Debug)]
pub struct Segment {
    layers: Vec<LayerSeg>,
    rows: usize,
    bytes: usize,
}

impl Segment {
    /// Freezes positions `start..end` of every layer of `cache` —
    /// copying rows out of flat caches, taking page references from
    /// paged ones (zero copy; the donor's pages are immutable once it
    /// releases, and any still-active writer copies-on-write).
    fn from_cache(cache: &KvCache, start: usize, end: usize) -> Segment {
        let rows = end - start;
        let layers: Vec<LayerSeg> = (0..cache.n_layers())
            .map(|i| {
                let lc = cache.layer(i);
                // Memo capture (both variants): only when the donor's
                // memo covered every position of the span, so a present
                // memo is always contiguous from the span start.
                let mw = lc.memo_width();
                let memo = if mw > 0 && lc.memo_len() >= end {
                    let mut m = Vec::with_capacity(rows * mw);
                    for pos in start..end {
                        m.extend_from_slice(lc.memo_row(pos));
                    }
                    m
                } else {
                    Vec::new()
                };
                let memo_width = if memo.is_empty() { 0 } else { mw };
                if let Some(ps) = cache.layer_paged(i) {
                    let pr = ps.page_rows();
                    let first = start / pr;
                    let last = (end - 1) / pr;
                    return LayerSeg::Pages {
                        pages: ps.pages()[first..=last].to_vec(),
                        start: start % pr,
                        k_width: ps.k_width(),
                        v_width: ps.v_width(),
                        page_rows: pr,
                        memo,
                        memo_width,
                    };
                }
                let (kw, vw) = (lc.k_width(), lc.v_width());
                let mut k = Vec::with_capacity(rows * kw);
                let mut v = Vec::with_capacity(rows * vw);
                for pos in start..end {
                    k.extend_from_slice(lc.k_row(pos));
                    v.extend_from_slice(lc.v_row(pos));
                }
                LayerSeg::Rows {
                    k,
                    v,
                    memo_width,
                    memo,
                    k_width: kw,
                    v_width: vw,
                }
            })
            .collect();
        let bytes = layers.iter().map(LayerSeg::bytes).sum();
        Segment { layers, rows, bytes }
    }

    /// Splits into the first `m` rows and the rest (for edge splits).
    /// Page-backed layers split zero-copy: both halves reference the
    /// same immutable pages (a page straddling the boundary appears in
    /// both halves' tables), with adjusted row windows.
    fn split(&self, m: usize) -> (Segment, Segment) {
        let part = |range: std::ops::Range<usize>| -> Segment {
            let layers: Vec<LayerSeg> = self
                .layers
                .iter()
                .map(|ls| match ls {
                    LayerSeg::Rows {
                        k,
                        v,
                        memo,
                        k_width,
                        v_width,
                        memo_width,
                    } => {
                        let memo_rows = ls.memo_rows();
                        // Both halves inherit the memo (it covered the
                        // whole span, so it covers each half
                        // contiguously).
                        let memo = if memo_rows >= self.rows && *memo_width > 0 {
                            memo[range.start * memo_width..range.end * memo_width].to_vec()
                        } else {
                            Vec::new()
                        };
                        LayerSeg::Rows {
                            k: k[range.start * k_width..range.end * k_width].to_vec(),
                            v: v[range.start * v_width..range.end * v_width].to_vec(),
                            memo_width: if memo.is_empty() { 0 } else { *memo_width },
                            memo,
                            k_width: *k_width,
                            v_width: *v_width,
                        }
                    }
                    LayerSeg::Pages {
                        pages,
                        start,
                        k_width,
                        v_width,
                        page_rows,
                        memo,
                        memo_width,
                    } => {
                        // Span row r lives at page-table row `start + r`.
                        let lo = start + range.start;
                        let hi = start + range.end; // exclusive
                        let first = lo / page_rows;
                        let last = (hi - 1) / page_rows;
                        // Both halves inherit the memo (it covered the
                        // whole span, so it covers each half
                        // contiguously).
                        let memo = if ls.memo_rows() >= self.rows && *memo_width > 0 {
                            memo[range.start * memo_width..range.end * memo_width].to_vec()
                        } else {
                            Vec::new()
                        };
                        LayerSeg::Pages {
                            pages: pages[first..=last].to_vec(),
                            start: lo % page_rows,
                            k_width: *k_width,
                            v_width: *v_width,
                            page_rows: *page_rows,
                            memo_width: if memo.is_empty() { 0 } else { *memo_width },
                            memo,
                        }
                    }
                })
                .collect();
            let bytes = layers.iter().map(LayerSeg::bytes).sum();
            Segment {
                layers,
                rows: range.len(),
                bytes,
            }
        };
        (part(0..m), part(m..self.rows))
    }

    /// Positions this segment holds.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Resident bytes (K/V rows plus memo across layers).
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// The longest cached prefix found by [`PrefixCache::lookup`]: a chain
/// of shared segments covering `len` tokens, ready to seed a lease.
#[derive(Debug)]
pub struct PrefixMatch {
    len: usize,
    /// `(segment, rows used)` — the last part may be partial when the
    /// query diverged mid-edge.
    parts: Vec<(Arc<Segment>, usize)>,
}

impl PrefixMatch {
    /// Tokens this match covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the match covers no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the matched rows of one layer into `store` (which must be
    /// empty), including the decoded-row memo while it is contiguous
    /// from position 0 — a memo gap simply stops memo seeding; the
    /// attention memo rebuilds the rest incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the store is not empty or its
    /// row widths do not match the snapshot.
    pub fn seed_layer(&self, layer: usize, store: &mut dyn KvStore) -> Result<(), ModelError> {
        if !store.is_empty() {
            return Err(ModelError::exec(
                "prefix seeding requires an empty KV store",
            ));
        }
        for (seg, rows) in &self.parts {
            let ls = &seg.layers[layer];
            for r in 0..*rows {
                store.push(ls.k_row(r), ls.v_row(r))?;
            }
        }
        self.seed_memo(layer, store)
    }

    /// Seeds the decoded-row memo for one layer. The memo must stay
    /// contiguous from position 0, so seeding stops at the first part
    /// without one (or with a different width); the attention memo
    /// rebuilds the rest incrementally.
    fn seed_memo(&self, layer: usize, store: &mut dyn KvStore) -> Result<(), ModelError> {
        let Some(width) = self
            .parts
            .first()
            .map(|(seg, _)| seg.layers[layer].memo_width())
        else {
            return Ok(());
        };
        if width == 0 || !store.memo_ensure(width) {
            return Ok(());
        }
        for (seg, rows) in &self.parts {
            let ls = &seg.layers[layer];
            if ls.memo_width() != width || ls.memo_rows() < *rows {
                break;
            }
            for r in 0..*rows {
                store.memo_push(ls.memo_row(r))?;
            }
        }
        Ok(())
    }

    /// The match length rounded down to a page boundary — the longest
    /// region seeding may take by whole-page reference (the
    /// page-alignment invariant: sharing never splits mid-page). The
    /// unaligned remainder is row-copied instead.
    pub fn page_aligned_len(&self, page_rows: usize) -> usize {
        if page_rows == 0 {
            return 0;
        }
        self.len - self.len % page_rows
    }

    /// Builds the per-layer table of sharable whole pages for the first
    /// [`PrefixMatch::page_aligned_len`] rows, walking the part chain
    /// at absolute positions.
    ///
    /// Later parts overwrite earlier assignments for a page straddling
    /// a part boundary: the earlier part's copy of that page may carry
    /// rows from a *different* branch beyond the boundary (radix edges
    /// split mid-page), while the later part's copy is the one whose
    /// donor actually matched those rows — and the rows below the
    /// boundary are bitwise identical across donors by the prefix
    /// determinism argument in the module docs. A full page assigned by
    /// the last part touching it therefore carries exactly the matched
    /// bits. Rows-backed or misaligned parts poison the pages they
    /// touch, and the map is cut at the first unsharable page.
    fn shared_page_map(&self, layer: usize, page_rows: usize) -> Vec<Arc<PageData>> {
        let n_full = self.page_aligned_len(page_rows) / page_rows.max(1);
        if n_full == 0 {
            return Vec::new();
        }
        let mut map: Vec<Option<Arc<PageData>>> = vec![None; n_full];
        let mut abs = 0usize;
        for (seg, used) in &self.parts {
            match &seg.layers[layer] {
                LayerSeg::Pages {
                    pages,
                    start,
                    page_rows: pr,
                    ..
                } if *pr == page_rows && *start == abs % page_rows => {
                    // Absolute row of pages[0]'s row 0 (a multiple of
                    // page_rows by the alignment guard above).
                    let base = abs - start;
                    for (pi, page) in pages.iter().enumerate() {
                        let page_lo = base + pi * page_rows;
                        if page_lo >= abs + used {
                            break;
                        }
                        let g = page_lo / page_rows;
                        if g < n_full {
                            map[g] = Some(Arc::clone(page));
                        }
                    }
                }
                _ => {
                    // Not page-sharable: poison every page this part
                    // touches.
                    let g0 = abs / page_rows;
                    let g1 = (abs + used - 1) / page_rows;
                    for slot in map.iter_mut().take(n_full.min(g1 + 1)).skip(g0) {
                        *slot = None;
                    }
                }
            }
            abs += used;
        }
        map.into_iter().map_while(|p| p).collect()
    }

    /// Seeds one paged layer: shares the maximal aligned run of whole
    /// pages by reference, then row-copies the remaining matched rows.
    fn seed_layer_paged(
        &self,
        layer: usize,
        store: &mut crate::paged::PagedKvStore,
    ) -> Result<usize, ModelError> {
        if !store.is_empty() {
            return Err(ModelError::exec(
                "prefix seeding requires an empty KV store",
            ));
        }
        let map = self.shared_page_map(layer, store.page_rows());
        for page in &map {
            store.share_page(page)?;
        }
        let shared_rows = store.len();
        // Row-copy the matched tail (fewer than one page past the last
        // shared page, plus anything the map could not share).
        let mut abs = 0usize;
        for (seg, used) in &self.parts {
            let ls = &seg.layers[layer];
            for r in 0..*used {
                if abs + r >= shared_rows {
                    store.push(ls.k_row(r), ls.v_row(r))?;
                }
            }
            abs += used;
        }
        // The memo is flat scratch, never page-backed, so it seeds by
        // copy even here — without it the lease would re-decode every
        // shared position through the MLA up-projections on its first
        // forward, which costs far more than the copy.
        self.seed_memo(layer, store)?;
        Ok(shared_rows)
    }

    /// Seeds every layer of an empty `cache` from the snapshot chain.
    ///
    /// Flat caches get the copy half of copy-on-write: the lease owns
    /// the copied rows and appends privately; the snapshot stays
    /// frozen and shared. Paged caches share whole frozen pages by
    /// reference — O(1) per page instead of O(bytes) — and row-copy
    /// only the sub-page remainder; the lease appends privately from
    /// there, copying a shared page first if it ever must overwrite
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the cache is not empty, its
    /// layout does not match the snapshot, or (paged) the page
    /// allocator is exhausted mid-seed.
    pub fn seed_into(&self, cache: &mut KvCache) -> Result<(), ModelError> {
        let n_layers = self.parts.first().map_or(0, |(s, _)| s.layers.len());
        if cache.n_layers() != n_layers {
            return Err(ModelError::exec(format!(
                "prefix snapshot has {} layers, cache has {}",
                n_layers,
                cache.n_layers()
            )));
        }
        let _span = kt_trace::span_ab(
            kt_trace::SpanKind::PrefixSeed,
            self.len.min(u32::MAX as usize) as u32,
            n_layers.min(u32::MAX as usize) as u32,
        );
        if cache.is_paged() {
            let mut shared_rows = 0usize;
            for i in 0..n_layers {
                let store = cache
                    .layer_paged_mut(i)
                    .expect("is_paged checked above");
                shared_rows = self.seed_layer_paged(i, store)?;
            }
            kt_trace::counter_add(
                kt_trace::CounterKind::PrefixSharedRows,
                shared_rows as u64,
            );
            return Ok(());
        }
        for i in 0..n_layers {
            self.seed_layer(i, cache.layer_mut(i))?;
        }
        Ok(())
    }
}

/// One radix-tree node: the edge token span from its parent, the frozen
/// segment holding that span's rows, and its children.
#[derive(Debug)]
struct Node {
    /// Edge label (non-empty).
    tokens: Vec<u32>,
    seg: Arc<Segment>,
    children: Vec<Node>,
    /// LRU tick of the last lookup/insert that walked through here.
    last_touch: u64,
}

/// Counters and occupancy of a [`PrefixCache`] (monotonic except the
/// `resident_bytes`/`entries` gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that matched at least `min_prefix_len` tokens.
    pub hits: u64,
    /// Lookups that matched nothing reusable.
    pub misses: u64,
    /// Total tokens served from cached prefixes.
    pub hit_tokens: u64,
    /// Segments frozen into the index.
    pub insertions: u64,
    /// Segments evicted by the byte budget.
    pub evictions: u64,
    /// Bytes freed by eviction.
    pub evicted_bytes: u64,
    /// Bytes currently resident in frozen segments.
    pub resident_bytes: u64,
    /// Segments currently resident.
    pub entries: u64,
}

#[derive(Debug, Default)]
struct Inner {
    children: Vec<Node>,
    tick: u64,
    stats: PrefixStats,
}

/// A token-keyed radix index mapping prompt prefixes to frozen KV
/// snapshots, with LRU-by-bytes eviction under a configurable budget.
///
/// Thread-safe: lookups and inserts serialize on an interior lock;
/// matched segments are returned by `Arc` so the (comparatively
/// expensive) row copying happens outside it.
#[derive(Debug)]
pub struct PrefixCache {
    cfg: PrefixCacheConfig,
    inner: Mutex<Inner>,
}

impl PrefixCache {
    /// Creates an empty index under `cfg`'s budget.
    pub fn new(cfg: PrefixCacheConfig) -> PrefixCache {
        PrefixCache {
            cfg,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured budget and match threshold.
    pub fn config(&self) -> PrefixCacheConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Finds the longest cached prefix of `tokens`, touching every node
    /// on the path for LRU. Matches shorter than `min_prefix_len` count
    /// as misses.
    pub fn lookup(&self, tokens: &[u32]) -> Option<PrefixMatch> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut parts: Vec<(Arc<Segment>, usize)> = Vec::new();
        let mut matched = 0usize;
        let mut cur = &mut inner.children;
        while matched < tokens.len() {
            let Some(ci) = cur.iter().position(|c| c.tokens[0] == tokens[matched]) else {
                break;
            };
            let (common, edge_len) = {
                let child = &mut cur[ci];
                let common = child
                    .tokens
                    .iter()
                    .zip(&tokens[matched..])
                    .take_while(|(a, b)| a == b)
                    .count();
                child.last_touch = tick;
                parts.push((Arc::clone(&child.seg), common));
                (common, child.tokens.len())
            };
            matched += common;
            if common < edge_len {
                break;
            }
            cur = &mut cur[ci].children;
        }
        inner.stats.lookups += 1;
        kt_trace::counter_add(kt_trace::CounterKind::PrefixLookups, 1);
        kt_trace::instant(
            kt_trace::SpanKind::PrefixLookup,
            tokens.len().min(u32::MAX as usize) as u32,
            matched.min(u32::MAX as usize) as u32,
        );
        if matched >= self.cfg.min_prefix_len.max(1) {
            inner.stats.hits += 1;
            inner.stats.hit_tokens += matched as u64;
            kt_trace::counter_add(kt_trace::CounterKind::PrefixHits, 1);
            kt_trace::counter_add(kt_trace::CounterKind::PrefixHitTokens, matched as u64);
            Some(PrefixMatch {
                len: matched,
                parts,
            })
        } else {
            inner.stats.misses += 1;
            kt_trace::counter_add(kt_trace::CounterKind::PrefixMisses, 1);
            None
        }
    }

    /// Freezes the first `tokens.len()` positions of `cache` into the
    /// index (inserting new segments, splitting edges on divergence, or
    /// just promoting an already-cached prefix). No-op when `tokens` is
    /// shorter than `min_prefix_len` or longer than the cached
    /// sequence. Evicts least-recently-used leaves if the insert pushed
    /// residency over budget.
    pub fn insert(&self, tokens: &[u32], cache: &KvCache) {
        if tokens.is_empty()
            || tokens.len() < self.cfg.min_prefix_len
            || tokens.len() > cache.seq_len()
            || self.cfg.capacity_bytes == 0
        {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut pos = 0usize;
        let mut delta_bytes = 0usize;
        let mut delta_entries = 0u64;
        let mut insertions = 0u64;
        let mut cur = &mut inner.children;
        while pos < tokens.len() {
            let Some(ci) = cur.iter().position(|c| c.tokens[0] == tokens[pos]) else {
                // Nothing shares this next token: freeze the whole
                // remaining span as a fresh leaf.
                let seg = Segment::from_cache(cache, pos, tokens.len());
                delta_bytes += seg.bytes();
                delta_entries += 1;
                insertions += 1;
                cur.push(Node {
                    tokens: tokens[pos..].to_vec(),
                    seg: Arc::new(seg),
                    children: Vec::new(),
                    last_touch: tick,
                });
                break;
            };
            let (common, edge_len) = {
                let child = &mut cur[ci];
                let common = child
                    .tokens
                    .iter()
                    .zip(&tokens[pos..])
                    .take_while(|(a, b)| a == b)
                    .count();
                child.last_touch = tick;
                (common, child.tokens.len())
            };
            if common == edge_len {
                pos += common;
                cur = &mut cur[ci].children;
                continue;
            }
            if pos + common == tokens.len() {
                // Query exhausted mid-edge: the existing (longer) edge
                // already covers this prefix. The touch above is the
                // promotion.
                break;
            }
            // Divergence mid-edge: split the edge at the shared head,
            // hang the old tail and the new branch under it. The old
            // segment may still be referenced by in-flight seedings —
            // the halves are fresh allocations; the shared Arc just
            // loses this index's reference.
            let old = cur.remove(ci);
            let (head_seg, tail_seg) = old.seg.split(common);
            let new_seg = Segment::from_cache(cache, pos + common, tokens.len());
            delta_bytes += head_seg.bytes() + tail_seg.bytes() + new_seg.bytes();
            delta_bytes -= old.seg.bytes();
            delta_entries += 2; // one edge became two, plus the new leaf
            insertions += 1;
            let tail = Node {
                tokens: old.tokens[common..].to_vec(),
                seg: Arc::new(tail_seg),
                children: old.children,
                last_touch: old.last_touch,
            };
            let branch = Node {
                tokens: tokens[pos + common..].to_vec(),
                seg: Arc::new(new_seg),
                children: Vec::new(),
                last_touch: tick,
            };
            cur.push(Node {
                tokens: old.tokens[..common].to_vec(),
                seg: Arc::new(head_seg),
                children: vec![tail, branch],
                last_touch: tick,
            });
            break;
        }
        inner.stats.insertions += insertions;
        inner.stats.resident_bytes += delta_bytes as u64;
        inner.stats.entries += delta_entries;
        self.evict_to_budget(&mut inner);
    }

    /// Drops least-recently-touched leaves until residency fits the
    /// budget. Leaves only: every interior prefix stays valid, and
    /// in-flight seedings hold their own `Arc` so dropping is safe.
    fn evict_to_budget(&self, inner: &mut Inner) {
        let mut freed = 0usize;
        let mut evicted = 0u64;
        while inner.stats.resident_bytes > self.cfg.capacity_bytes as u64 {
            let Some(touch) = min_leaf_touch(&inner.children) else {
                break;
            };
            let Some(bytes) = remove_leaf(&mut inner.children, touch) else {
                break;
            };
            freed += bytes;
            evicted += 1;
            inner.stats.resident_bytes -= bytes as u64;
            inner.stats.entries -= 1;
        }
        if evicted > 0 {
            inner.stats.evictions += evicted;
            inner.stats.evicted_bytes += freed as u64;
            kt_trace::counter_add(kt_trace::CounterKind::PrefixEvictedBytes, freed as u64);
            kt_trace::instant(
                kt_trace::SpanKind::PrefixEvict,
                freed.min(u32::MAX as usize) as u32,
                evicted.min(u64::from(u32::MAX)) as u32,
            );
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PrefixStats {
        self.lock().stats
    }

    /// Distinct frozen pages currently shared beyond the index itself
    /// (referenced by at least one lease or in-flight seeding). A page
    /// may legitimately appear in several segments (splits share the
    /// straddling page), so "shared" means strong references exceed
    /// the index's own occurrence count.
    pub fn shared_pages(&self) -> usize {
        let inner = self.lock();
        let mut occurrences: HashMap<usize, (usize, usize)> = HashMap::new();
        fn walk(nodes: &[Node], occ: &mut HashMap<usize, (usize, usize)>) {
            for n in nodes {
                for ls in &n.seg.layers {
                    if let LayerSeg::Pages { pages, .. } = ls {
                        for p in pages {
                            let e = occ
                                .entry(Arc::as_ptr(p) as usize)
                                .or_insert((0, Arc::strong_count(p)));
                            e.0 += 1;
                        }
                    }
                }
            }
            for n in nodes {
                walk(&n.children, occ);
            }
        }
        walk(&inner.children, &mut occurrences);
        occurrences
            .values()
            .filter(|&&(in_index, strong)| strong > in_index)
            .count()
    }

    /// Drops every frozen segment, returning the bytes released. Used
    /// under page pressure: prefix residency is an optimization, and
    /// releasing the index's page references lets the allocator
    /// reclaim them as soon as no lease shares them.
    pub fn clear(&self) -> u64 {
        let mut inner = self.lock();
        inner.children.clear();
        let freed = inner.stats.resident_bytes;
        inner.stats.evictions += inner.stats.entries;
        inner.stats.evicted_bytes += freed;
        inner.stats.resident_bytes = 0;
        inner.stats.entries = 0;
        if freed > 0 {
            kt_trace::counter_add(kt_trace::CounterKind::PrefixEvictedBytes, freed);
        }
        freed
    }
}

/// Smallest `last_touch` over every leaf in the forest.
fn min_leaf_touch(nodes: &[Node]) -> Option<u64> {
    nodes
        .iter()
        .filter_map(|n| {
            if n.children.is_empty() {
                Some(n.last_touch)
            } else {
                min_leaf_touch(&n.children)
            }
        })
        .min()
}

/// Removes the first leaf stamped `touch`, returning its bytes.
fn remove_leaf(nodes: &mut Vec<Node>, touch: u64) -> Option<usize> {
    for i in 0..nodes.len() {
        if nodes[i].children.is_empty() {
            if nodes[i].last_touch == touch {
                return Some(nodes.remove(i).seg.bytes());
            }
        } else if let Some(b) = remove_leaf(&mut nodes[i].children, touch) {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::KvCache;

    /// A single-layer cache whose rows encode their position, plus a
    /// memo when `memo_width > 0`.
    fn donor(tokens: &[u32], memo_width: usize) -> KvCache {
        let mut c = KvCache::new(&[(3, 2)], 64);
        for (pos, &t) in tokens.iter().enumerate() {
            let k = [pos as f32, t as f32, 0.25];
            let v = [pos as f32 * 10.0, t as f32 * 10.0];
            c.layer_mut(0).push(&k, &v).unwrap();
            if memo_width > 0 {
                c.layer_mut(0).memo_ensure(memo_width);
                c.layer_mut(0)
                    .memo_push(&vec![pos as f32 + 0.5; memo_width])
                    .unwrap();
            }
        }
        c
    }

    fn cfg(bytes: usize, min: usize) -> PrefixCacheConfig {
        PrefixCacheConfig {
            capacity_bytes: bytes,
            min_prefix_len: min,
        }
    }

    #[test]
    fn insert_lookup_seed_round_trip_with_memo() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens = [5u32, 6, 7, 8];
        let cache = donor(&tokens, 4);
        px.insert(&tokens, &cache);

        let m = px.lookup(&[5, 6, 7, 8, 9]).expect("prefix hit");
        assert_eq!(m.len(), 4);
        let mut seeded = KvCache::new(&[(3, 2)], 64);
        m.seed_into(&mut seeded).unwrap();
        assert_eq!(seeded.seq_len(), 4);
        for pos in 0..4 {
            assert_eq!(seeded.layer(0).k_row(pos), cache.layer(0).k_row(pos));
            assert_eq!(seeded.layer(0).v_row(pos), cache.layer(0).v_row(pos));
            assert_eq!(
                seeded.layer(0).memo_row(pos),
                cache.layer(0).memo_row(pos),
                "memo rides along"
            );
        }
        assert_eq!(seeded.layer(0).memo_len(), 4);

        let s = px.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (1, 1, 0));
        assert_eq!(s.hit_tokens, 4);
        assert_eq!(s.entries, 1);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn divergence_splits_the_edge_and_both_branches_hit() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 2, 9, 9];
        px.insert(&a, &donor(&a, 0));
        px.insert(&b, &donor(&b, 0));
        assert_eq!(px.stats().entries, 3, "head + two branches");

        for want in [&a[..], &b[..]] {
            let m = px.lookup(want).expect("hit");
            assert_eq!(m.len(), 4);
            let mut seeded = KvCache::new(&[(3, 2)], 64);
            m.seed_into(&mut seeded).unwrap();
            let reference = donor(want, 0);
            for pos in 0..4 {
                assert_eq!(seeded.layer(0).k_row(pos), reference.layer(0).k_row(pos));
                assert_eq!(seeded.layer(0).v_row(pos), reference.layer(0).v_row(pos));
            }
        }
        // Partial-edge match: only the shared head of a diverging query.
        let m = px.lookup(&[1, 2, 3, 7]).expect("partial hit");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn min_prefix_len_gates_both_sides() {
        let px = PrefixCache::new(cfg(1 << 20, 3));
        px.insert(&[1, 2], &donor(&[1, 2], 0));
        assert_eq!(px.stats().entries, 0, "too short to insert");
        px.insert(&[1, 2, 3, 4], &donor(&[1, 2, 3, 4], 0));
        assert!(px.lookup(&[1, 2]).is_none(), "match below threshold");
        assert_eq!(px.lookup(&[1, 2, 3]).unwrap().len(), 3);
        let s = px.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_respects_budget_and_lru_order() {
        // Each 4-token single-layer segment costs 4 * (3+2) * 4 = 80
        // bytes; budget fits two.
        let px = PrefixCache::new(cfg(170, 1));
        let a = [1u32, 11, 12, 13];
        let b = [2u32, 21, 22, 23];
        let c = [3u32, 31, 32, 33];
        px.insert(&a, &donor(&a, 0));
        px.insert(&b, &donor(&b, 0));
        assert_eq!(px.stats().entries, 2);
        // Touch `a` so `b` is the LRU leaf, then overflow.
        assert!(px.lookup(&a).is_some());
        px.insert(&c, &donor(&c, 0));
        let s = px.stats();
        assert!(s.resident_bytes <= 170, "budget respected: {s:?}");
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 80);
        assert!(px.lookup(&a).is_some(), "recently used survives");
        assert!(px.lookup(&c).is_some(), "newest survives");
        assert!(px.lookup(&b).is_none(), "LRU leaf evicted");
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let px = PrefixCache::new(cfg(0, 1));
        px.insert(&[1, 2, 3], &donor(&[1, 2, 3], 0));
        assert_eq!(px.stats().entries, 0);
        assert!(px.lookup(&[1, 2, 3]).is_none());
    }

    #[test]
    fn insert_longer_than_cache_is_ignored() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let cache = donor(&[1, 2], 0);
        px.insert(&[1, 2, 3], &cache);
        assert_eq!(px.stats().entries, 0);
    }

    #[test]
    fn seeding_requires_an_empty_matching_cache() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens = [5u32, 6, 7];
        px.insert(&tokens, &donor(&tokens, 0));
        let m = px.lookup(&tokens).unwrap();
        let mut busy = donor(&[9], 0);
        assert!(m.seed_into(&mut busy).is_err(), "non-empty cache");
        let mut wrong = KvCache::new(&[(3, 2), (3, 2)], 64);
        assert!(m.seed_into(&mut wrong).is_err(), "layer-count mismatch");
    }

    /// A paged single-layer cache whose rows encode their position and
    /// token, mirroring `donor` bit for bit.
    fn paged_donor(
        tokens: &[u32],
        alloc: &crate::paged::BlockAllocator,
        page_rows: usize,
    ) -> KvCache {
        let mut c = KvCache::new_paged(&[(3, 2)], 64, alloc, page_rows);
        for (pos, &t) in tokens.iter().enumerate() {
            let k = [pos as f32, t as f32, 0.25];
            let v = [pos as f32 * 10.0, t as f32 * 10.0];
            c.layer_mut(0).push(&k, &v).unwrap();
        }
        c
    }

    #[test]
    fn paged_seed_shares_whole_pages_and_copies_tail() {
        let alloc = crate::paged::BlockAllocator::new(64);
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens: Vec<u32> = (100..110).collect(); // 10 rows, R=4
        let cache = paged_donor(&tokens, &alloc, 4);
        px.insert(&tokens, &cache);
        drop(cache); // donor releases; frozen pages keep its state alive

        let m = px.lookup(&tokens).expect("hit");
        assert_eq!(m.len(), 10);
        assert_eq!(m.page_aligned_len(4), 8, "rounded down to a page boundary");

        let before = alloc.allocated_pages();
        let mut seeded = KvCache::new_paged(&[(3, 2)], 64, &alloc, 4);
        m.seed_into(&mut seeded).unwrap();
        assert_eq!(seeded.seq_len(), 10);
        // Two pages shared by reference, one fresh page for the 2-row tail.
        assert_eq!(alloc.allocated_pages(), before + 1);
        assert_eq!(seeded.layer_paged(0).unwrap().shared_pages(), 2);
        assert_eq!(px.shared_pages(), 2);

        let reference = donor(&tokens, 0);
        for pos in 0..10 {
            assert_eq!(seeded.layer(0).k_row(pos), reference.layer(0).k_row(pos));
            assert_eq!(seeded.layer(0).v_row(pos), reference.layer(0).v_row(pos));
        }

        // Appending past the seed lands in private pages.
        seeded.layer_mut(0).push(&[9.0; 3], &[9.0; 2]).unwrap();
        assert_eq!(seeded.layer_paged(0).unwrap().shared_pages(), 2);
    }

    #[test]
    fn paged_branch_straddling_page_comes_from_the_matching_branch() {
        // Two branches diverge mid-page: the page straddling the split
        // exists in both donors with different rows past the branch
        // point. The shared-page map must take it from the *branch*
        // part (the last part touching it), not the head.
        let alloc = crate::paged::BlockAllocator::new(64);
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let a: Vec<u32> = (1..=10).collect();
        let mut b: Vec<u32> = (1..=6).collect();
        b.extend([90, 91, 92, 93]);
        px.insert(&a, &paged_donor(&a, &alloc, 4));
        px.insert(&b, &paged_donor(&b, &alloc, 4));

        for want in [&a, &b] {
            let m = px.lookup(want).expect("hit");
            assert_eq!(m.len(), 10);
            let mut seeded = KvCache::new_paged(&[(3, 2)], 64, &alloc, 4);
            m.seed_into(&mut seeded).unwrap();
            let reference = donor(want, 0);
            for pos in 0..10 {
                assert_eq!(
                    seeded.layer(0).k_row(pos),
                    reference.layer(0).k_row(pos),
                    "k row {pos} of {want:?}"
                );
                assert_eq!(
                    seeded.layer(0).v_row(pos),
                    reference.layer(0).v_row(pos),
                    "v row {pos} of {want:?}"
                );
            }
        }
    }

    #[test]
    fn flat_snapshots_row_copy_into_paged_leases() {
        // Mixed mode: a flat donor's snapshot seeds a paged lease by
        // row copy (nothing sharable), still bit-exact.
        let alloc = crate::paged::BlockAllocator::new(64);
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens: Vec<u32> = (7..16).collect();
        let flat = donor(&tokens, 0);
        px.insert(&tokens, &flat);
        let m = px.lookup(&tokens).expect("hit");
        let mut seeded = KvCache::new_paged(&[(3, 2)], 64, &alloc, 4);
        m.seed_into(&mut seeded).unwrap();
        assert_eq!(seeded.seq_len(), tokens.len());
        assert_eq!(seeded.layer_paged(0).unwrap().shared_pages(), 0);
        for pos in 0..tokens.len() {
            assert_eq!(seeded.layer(0).k_row(pos), flat.layer(0).k_row(pos));
            assert_eq!(seeded.layer(0).v_row(pos), flat.layer(0).v_row(pos));
        }
    }

    #[test]
    fn clearing_the_index_releases_page_references() {
        let alloc = crate::paged::BlockAllocator::new(64);
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens: Vec<u32> = (0..8).collect();
        px.insert(&tokens, &paged_donor(&tokens, &alloc, 4));
        assert_eq!(alloc.allocated_pages(), 2, "index keeps frozen pages");
        let freed = px.clear();
        assert!(freed > 0);
        assert_eq!(px.stats().entries, 0);
        assert_eq!(alloc.allocated_pages(), 0, "pages reclaimed");
        assert!(px.lookup(&tokens).is_none());
    }

    #[test]
    fn promotion_of_cached_prefix_adds_nothing() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens = [4u32, 5, 6, 7];
        let cache = donor(&tokens, 0);
        px.insert(&tokens, &cache);
        let before = px.stats();
        px.insert(&tokens, &cache);
        px.insert(&tokens[..2], &cache); // shorter: covered mid-edge
        let after = px.stats();
        assert_eq!(after.entries, before.entries);
        assert_eq!(after.resident_bytes, before.resident_bytes);
        assert_eq!(after.insertions, before.insertions);
    }
}
