//! Shared-prefix KV reuse: a token-keyed radix index over frozen,
//! ref-counted KV snapshots.
//!
//! Serving workloads repeat prompt prefixes constantly — system
//! prompts, few-shot templates, multi-turn history — yet a blank lease
//! recomputes identical KV state for every request. This module caches
//! that state once: completed prefixes are frozen into immutable
//! [`Segment`]s (per-layer K/V rows plus, when present, the MLA
//! decoded-row memo) keyed by their token sequence in a radix tree, and
//! admission seeds a fresh lease from the longest cached prefix so the
//! scheduler only prefills the uncached suffix.
//!
//! Copy-on-write contract: snapshot rows are immutable and shared
//! (`Arc<Segment>`); a lease *copies* the matched rows into its own
//! private cache and appends privately from there. Eviction can
//! therefore drop any segment at any time — in-flight seedings hold
//! their own `Arc` and finish safely.
//!
//! Bitwise equality: cached K/V rows are position-dependent only on the
//! tokens at or before them (causal attention; RoPE is applied at push
//! time from the absolute position), and every projection that produced
//! them went through the row-stable `gemm_rowwise`. A row copied out of
//! a snapshot therefore carries exactly the bits a cold prefill would
//! produce at that position, and a seeded-then-suffix-prefilled
//! sequence is indistinguishable — bit for bit — from a cold full
//! prefill chunked at the seed boundary.
//!
//! Eviction is LRU-by-bytes: every lookup/insert touches the nodes on
//! its path, and when resident bytes exceed the budget the
//! least-recently-touched *leaf* is dropped (leaves first keeps every
//! interior prefix valid: a parent's rows never reference its
//! children).

use std::sync::{Arc, Mutex};

use crate::error::ModelError;
use crate::kvcache::{KvCache, KvStore};

/// Configuration for a [`PrefixCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixCacheConfig {
    /// Resident-byte budget for frozen snapshots. 0 caches nothing.
    pub capacity_bytes: usize,
    /// Shortest prefix worth reusing: lookups matching fewer tokens
    /// miss, and shorter completed sequences are not inserted.
    pub min_prefix_len: usize,
}

impl Default for PrefixCacheConfig {
    fn default() -> Self {
        PrefixCacheConfig {
            capacity_bytes: 32 << 20,
            min_prefix_len: 4,
        }
    }
}

/// One layer's frozen rows for a radix-edge token span.
#[derive(Debug)]
struct LayerSeg {
    k: Vec<f32>,
    v: Vec<f32>,
    /// Decoded-row memo for the span — captured only when the donor
    /// memo covered every position of the span, empty otherwise, so a
    /// present memo is always contiguous from the span start.
    memo: Vec<f32>,
    k_width: usize,
    v_width: usize,
    memo_width: usize,
}

impl LayerSeg {
    fn k_row(&self, r: usize) -> &[f32] {
        &self.k[r * self.k_width..(r + 1) * self.k_width]
    }

    fn v_row(&self, r: usize) -> &[f32] {
        &self.v[r * self.v_width..(r + 1) * self.v_width]
    }

    fn memo_row(&self, r: usize) -> &[f32] {
        &self.memo[r * self.memo_width..(r + 1) * self.memo_width]
    }

    fn memo_rows(&self) -> usize {
        self.memo
            .len()
            .checked_div(self.memo_width)
            .unwrap_or_default()
    }

    fn bytes(&self) -> usize {
        (self.k.len() + self.v.len() + self.memo.len()) * std::mem::size_of::<f32>()
    }
}

/// A frozen, immutable KV snapshot for one radix-edge token span:
/// per-layer K/V rows (and the MLA decoded-row memo where the donor
/// had one) for `rows` consecutive positions.
///
/// Segments are shared by reference between the index and in-flight
/// seedings; they are never mutated after construction.
#[derive(Debug)]
pub struct Segment {
    layers: Vec<LayerSeg>,
    rows: usize,
    bytes: usize,
}

impl Segment {
    /// Freezes positions `start..end` of every layer of `cache`.
    fn from_cache(cache: &KvCache, start: usize, end: usize) -> Segment {
        let rows = end - start;
        let layers: Vec<LayerSeg> = (0..cache.n_layers())
            .map(|i| {
                let lc = cache.layer(i);
                let (kw, vw) = (lc.k_width(), lc.v_width());
                let mut k = Vec::with_capacity(rows * kw);
                let mut v = Vec::with_capacity(rows * vw);
                for pos in start..end {
                    k.extend_from_slice(lc.k_row(pos));
                    v.extend_from_slice(lc.v_row(pos));
                }
                let mw = lc.memo_width();
                let memo = if mw > 0 && lc.memo_len() >= end {
                    let mut m = Vec::with_capacity(rows * mw);
                    for pos in start..end {
                        m.extend_from_slice(lc.memo_row(pos));
                    }
                    m
                } else {
                    Vec::new()
                };
                LayerSeg {
                    k,
                    v,
                    memo_width: if memo.is_empty() { 0 } else { mw },
                    memo,
                    k_width: kw,
                    v_width: vw,
                }
            })
            .collect();
        let bytes = layers.iter().map(LayerSeg::bytes).sum();
        Segment { layers, rows, bytes }
    }

    /// Splits into the first `m` rows and the rest (for edge splits).
    fn split(&self, m: usize) -> (Segment, Segment) {
        let part = |range: std::ops::Range<usize>| -> Segment {
            let layers: Vec<LayerSeg> = self
                .layers
                .iter()
                .map(|ls| {
                    let memo_rows = ls.memo_rows();
                    // Both halves inherit the memo (it covered the whole
                    // span, so it covers each half contiguously).
                    let memo = if memo_rows >= self.rows && ls.memo_width > 0 {
                        ls.memo[range.start * ls.memo_width..range.end * ls.memo_width].to_vec()
                    } else {
                        Vec::new()
                    };
                    LayerSeg {
                        k: ls.k[range.start * ls.k_width..range.end * ls.k_width].to_vec(),
                        v: ls.v[range.start * ls.v_width..range.end * ls.v_width].to_vec(),
                        memo_width: if memo.is_empty() { 0 } else { ls.memo_width },
                        memo,
                        k_width: ls.k_width,
                        v_width: ls.v_width,
                    }
                })
                .collect();
            let bytes = layers.iter().map(LayerSeg::bytes).sum();
            Segment {
                layers,
                rows: range.len(),
                bytes,
            }
        };
        (part(0..m), part(m..self.rows))
    }

    /// Positions this segment holds.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Resident bytes (K/V rows plus memo across layers).
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// The longest cached prefix found by [`PrefixCache::lookup`]: a chain
/// of shared segments covering `len` tokens, ready to seed a lease.
#[derive(Debug)]
pub struct PrefixMatch {
    len: usize,
    /// `(segment, rows used)` — the last part may be partial when the
    /// query diverged mid-edge.
    parts: Vec<(Arc<Segment>, usize)>,
}

impl PrefixMatch {
    /// Tokens this match covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the match covers no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the matched rows of one layer into `store` (which must be
    /// empty), including the decoded-row memo while it is contiguous
    /// from position 0 — a memo gap simply stops memo seeding; the
    /// attention memo rebuilds the rest incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the store is not empty or its
    /// row widths do not match the snapshot.
    pub fn seed_layer(&self, layer: usize, store: &mut dyn KvStore) -> Result<(), ModelError> {
        if !store.is_empty() {
            return Err(ModelError::exec(
                "prefix seeding requires an empty KV store",
            ));
        }
        for (seg, rows) in &self.parts {
            let ls = &seg.layers[layer];
            for r in 0..*rows {
                store.push(ls.k_row(r), ls.v_row(r))?;
            }
        }
        // Memo: must stay contiguous from position 0, so stop at the
        // first part without one (or with a different width).
        let Some(width) = self
            .parts
            .first()
            .map(|(seg, _)| seg.layers[layer].memo_width)
        else {
            return Ok(());
        };
        if width == 0 || !store.memo_ensure(width) {
            return Ok(());
        }
        for (seg, rows) in &self.parts {
            let ls = &seg.layers[layer];
            if ls.memo_width != width || ls.memo_rows() < *rows {
                break;
            }
            for r in 0..*rows {
                store.memo_push(ls.memo_row(r))?;
            }
        }
        Ok(())
    }

    /// Seeds every layer of an empty `cache` from the snapshot chain
    /// (the copy half of copy-on-write: the lease owns the copied rows
    /// and appends privately; the snapshot stays frozen and shared).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the cache is not empty or its
    /// layout does not match the snapshot.
    pub fn seed_into(&self, cache: &mut KvCache) -> Result<(), ModelError> {
        let n_layers = self.parts.first().map_or(0, |(s, _)| s.layers.len());
        if cache.n_layers() != n_layers {
            return Err(ModelError::exec(format!(
                "prefix snapshot has {} layers, cache has {}",
                n_layers,
                cache.n_layers()
            )));
        }
        let _span = kt_trace::span_ab(
            kt_trace::SpanKind::PrefixSeed,
            self.len.min(u32::MAX as usize) as u32,
            n_layers.min(u32::MAX as usize) as u32,
        );
        for i in 0..n_layers {
            self.seed_layer(i, cache.layer_mut(i))?;
        }
        Ok(())
    }
}

/// One radix-tree node: the edge token span from its parent, the frozen
/// segment holding that span's rows, and its children.
#[derive(Debug)]
struct Node {
    /// Edge label (non-empty).
    tokens: Vec<u32>,
    seg: Arc<Segment>,
    children: Vec<Node>,
    /// LRU tick of the last lookup/insert that walked through here.
    last_touch: u64,
}

/// Counters and occupancy of a [`PrefixCache`] (monotonic except the
/// `resident_bytes`/`entries` gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that matched at least `min_prefix_len` tokens.
    pub hits: u64,
    /// Lookups that matched nothing reusable.
    pub misses: u64,
    /// Total tokens served from cached prefixes.
    pub hit_tokens: u64,
    /// Segments frozen into the index.
    pub insertions: u64,
    /// Segments evicted by the byte budget.
    pub evictions: u64,
    /// Bytes freed by eviction.
    pub evicted_bytes: u64,
    /// Bytes currently resident in frozen segments.
    pub resident_bytes: u64,
    /// Segments currently resident.
    pub entries: u64,
}

#[derive(Debug, Default)]
struct Inner {
    children: Vec<Node>,
    tick: u64,
    stats: PrefixStats,
}

/// A token-keyed radix index mapping prompt prefixes to frozen KV
/// snapshots, with LRU-by-bytes eviction under a configurable budget.
///
/// Thread-safe: lookups and inserts serialize on an interior lock;
/// matched segments are returned by `Arc` so the (comparatively
/// expensive) row copying happens outside it.
#[derive(Debug)]
pub struct PrefixCache {
    cfg: PrefixCacheConfig,
    inner: Mutex<Inner>,
}

impl PrefixCache {
    /// Creates an empty index under `cfg`'s budget.
    pub fn new(cfg: PrefixCacheConfig) -> PrefixCache {
        PrefixCache {
            cfg,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured budget and match threshold.
    pub fn config(&self) -> PrefixCacheConfig {
        self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Finds the longest cached prefix of `tokens`, touching every node
    /// on the path for LRU. Matches shorter than `min_prefix_len` count
    /// as misses.
    pub fn lookup(&self, tokens: &[u32]) -> Option<PrefixMatch> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut parts: Vec<(Arc<Segment>, usize)> = Vec::new();
        let mut matched = 0usize;
        let mut cur = &mut inner.children;
        while matched < tokens.len() {
            let Some(ci) = cur.iter().position(|c| c.tokens[0] == tokens[matched]) else {
                break;
            };
            let (common, edge_len) = {
                let child = &mut cur[ci];
                let common = child
                    .tokens
                    .iter()
                    .zip(&tokens[matched..])
                    .take_while(|(a, b)| a == b)
                    .count();
                child.last_touch = tick;
                parts.push((Arc::clone(&child.seg), common));
                (common, child.tokens.len())
            };
            matched += common;
            if common < edge_len {
                break;
            }
            cur = &mut cur[ci].children;
        }
        inner.stats.lookups += 1;
        kt_trace::counter_add(kt_trace::CounterKind::PrefixLookups, 1);
        kt_trace::instant(
            kt_trace::SpanKind::PrefixLookup,
            tokens.len().min(u32::MAX as usize) as u32,
            matched.min(u32::MAX as usize) as u32,
        );
        if matched >= self.cfg.min_prefix_len.max(1) {
            inner.stats.hits += 1;
            inner.stats.hit_tokens += matched as u64;
            kt_trace::counter_add(kt_trace::CounterKind::PrefixHits, 1);
            kt_trace::counter_add(kt_trace::CounterKind::PrefixHitTokens, matched as u64);
            Some(PrefixMatch {
                len: matched,
                parts,
            })
        } else {
            inner.stats.misses += 1;
            kt_trace::counter_add(kt_trace::CounterKind::PrefixMisses, 1);
            None
        }
    }

    /// Freezes the first `tokens.len()` positions of `cache` into the
    /// index (inserting new segments, splitting edges on divergence, or
    /// just promoting an already-cached prefix). No-op when `tokens` is
    /// shorter than `min_prefix_len` or longer than the cached
    /// sequence. Evicts least-recently-used leaves if the insert pushed
    /// residency over budget.
    pub fn insert(&self, tokens: &[u32], cache: &KvCache) {
        if tokens.is_empty()
            || tokens.len() < self.cfg.min_prefix_len
            || tokens.len() > cache.seq_len()
            || self.cfg.capacity_bytes == 0
        {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut pos = 0usize;
        let mut delta_bytes = 0usize;
        let mut delta_entries = 0u64;
        let mut insertions = 0u64;
        let mut cur = &mut inner.children;
        while pos < tokens.len() {
            let Some(ci) = cur.iter().position(|c| c.tokens[0] == tokens[pos]) else {
                // Nothing shares this next token: freeze the whole
                // remaining span as a fresh leaf.
                let seg = Segment::from_cache(cache, pos, tokens.len());
                delta_bytes += seg.bytes();
                delta_entries += 1;
                insertions += 1;
                cur.push(Node {
                    tokens: tokens[pos..].to_vec(),
                    seg: Arc::new(seg),
                    children: Vec::new(),
                    last_touch: tick,
                });
                break;
            };
            let (common, edge_len) = {
                let child = &mut cur[ci];
                let common = child
                    .tokens
                    .iter()
                    .zip(&tokens[pos..])
                    .take_while(|(a, b)| a == b)
                    .count();
                child.last_touch = tick;
                (common, child.tokens.len())
            };
            if common == edge_len {
                pos += common;
                cur = &mut cur[ci].children;
                continue;
            }
            if pos + common == tokens.len() {
                // Query exhausted mid-edge: the existing (longer) edge
                // already covers this prefix. The touch above is the
                // promotion.
                break;
            }
            // Divergence mid-edge: split the edge at the shared head,
            // hang the old tail and the new branch under it. The old
            // segment may still be referenced by in-flight seedings —
            // the halves are fresh allocations; the shared Arc just
            // loses this index's reference.
            let old = cur.remove(ci);
            let (head_seg, tail_seg) = old.seg.split(common);
            let new_seg = Segment::from_cache(cache, pos + common, tokens.len());
            delta_bytes += head_seg.bytes() + tail_seg.bytes() + new_seg.bytes();
            delta_bytes -= old.seg.bytes();
            delta_entries += 2; // one edge became two, plus the new leaf
            insertions += 1;
            let tail = Node {
                tokens: old.tokens[common..].to_vec(),
                seg: Arc::new(tail_seg),
                children: old.children,
                last_touch: old.last_touch,
            };
            let branch = Node {
                tokens: tokens[pos + common..].to_vec(),
                seg: Arc::new(new_seg),
                children: Vec::new(),
                last_touch: tick,
            };
            cur.push(Node {
                tokens: old.tokens[..common].to_vec(),
                seg: Arc::new(head_seg),
                children: vec![tail, branch],
                last_touch: tick,
            });
            break;
        }
        inner.stats.insertions += insertions;
        inner.stats.resident_bytes += delta_bytes as u64;
        inner.stats.entries += delta_entries;
        self.evict_to_budget(&mut inner);
    }

    /// Drops least-recently-touched leaves until residency fits the
    /// budget. Leaves only: every interior prefix stays valid, and
    /// in-flight seedings hold their own `Arc` so dropping is safe.
    fn evict_to_budget(&self, inner: &mut Inner) {
        let mut freed = 0usize;
        let mut evicted = 0u64;
        while inner.stats.resident_bytes > self.cfg.capacity_bytes as u64 {
            let Some(touch) = min_leaf_touch(&inner.children) else {
                break;
            };
            let Some(bytes) = remove_leaf(&mut inner.children, touch) else {
                break;
            };
            freed += bytes;
            evicted += 1;
            inner.stats.resident_bytes -= bytes as u64;
            inner.stats.entries -= 1;
        }
        if evicted > 0 {
            inner.stats.evictions += evicted;
            inner.stats.evicted_bytes += freed as u64;
            kt_trace::counter_add(kt_trace::CounterKind::PrefixEvictedBytes, freed as u64);
            kt_trace::instant(
                kt_trace::SpanKind::PrefixEvict,
                freed.min(u32::MAX as usize) as u32,
                evicted.min(u64::from(u32::MAX)) as u32,
            );
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> PrefixStats {
        self.lock().stats
    }
}

/// Smallest `last_touch` over every leaf in the forest.
fn min_leaf_touch(nodes: &[Node]) -> Option<u64> {
    nodes
        .iter()
        .filter_map(|n| {
            if n.children.is_empty() {
                Some(n.last_touch)
            } else {
                min_leaf_touch(&n.children)
            }
        })
        .min()
}

/// Removes the first leaf stamped `touch`, returning its bytes.
fn remove_leaf(nodes: &mut Vec<Node>, touch: u64) -> Option<usize> {
    for i in 0..nodes.len() {
        if nodes[i].children.is_empty() {
            if nodes[i].last_touch == touch {
                return Some(nodes.remove(i).seg.bytes());
            }
        } else if let Some(b) = remove_leaf(&mut nodes[i].children, touch) {
            return Some(b);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::KvCache;

    /// A single-layer cache whose rows encode their position, plus a
    /// memo when `memo_width > 0`.
    fn donor(tokens: &[u32], memo_width: usize) -> KvCache {
        let mut c = KvCache::new(&[(3, 2)], 64);
        for (pos, &t) in tokens.iter().enumerate() {
            let k = [pos as f32, t as f32, 0.25];
            let v = [pos as f32 * 10.0, t as f32 * 10.0];
            c.layer_mut(0).push(&k, &v).unwrap();
            if memo_width > 0 {
                c.layer_mut(0).memo_ensure(memo_width);
                c.layer_mut(0)
                    .memo_push(&vec![pos as f32 + 0.5; memo_width])
                    .unwrap();
            }
        }
        c
    }

    fn cfg(bytes: usize, min: usize) -> PrefixCacheConfig {
        PrefixCacheConfig {
            capacity_bytes: bytes,
            min_prefix_len: min,
        }
    }

    #[test]
    fn insert_lookup_seed_round_trip_with_memo() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens = [5u32, 6, 7, 8];
        let cache = donor(&tokens, 4);
        px.insert(&tokens, &cache);

        let m = px.lookup(&[5, 6, 7, 8, 9]).expect("prefix hit");
        assert_eq!(m.len(), 4);
        let mut seeded = KvCache::new(&[(3, 2)], 64);
        m.seed_into(&mut seeded).unwrap();
        assert_eq!(seeded.seq_len(), 4);
        for pos in 0..4 {
            assert_eq!(seeded.layer(0).k_row(pos), cache.layer(0).k_row(pos));
            assert_eq!(seeded.layer(0).v_row(pos), cache.layer(0).v_row(pos));
            assert_eq!(
                seeded.layer(0).memo_row(pos),
                cache.layer(0).memo_row(pos),
                "memo rides along"
            );
        }
        assert_eq!(seeded.layer(0).memo_len(), 4);

        let s = px.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (1, 1, 0));
        assert_eq!(s.hit_tokens, 4);
        assert_eq!(s.entries, 1);
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn divergence_splits_the_edge_and_both_branches_hit() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let a = [1u32, 2, 3, 4];
        let b = [1u32, 2, 9, 9];
        px.insert(&a, &donor(&a, 0));
        px.insert(&b, &donor(&b, 0));
        assert_eq!(px.stats().entries, 3, "head + two branches");

        for want in [&a[..], &b[..]] {
            let m = px.lookup(want).expect("hit");
            assert_eq!(m.len(), 4);
            let mut seeded = KvCache::new(&[(3, 2)], 64);
            m.seed_into(&mut seeded).unwrap();
            let reference = donor(want, 0);
            for pos in 0..4 {
                assert_eq!(seeded.layer(0).k_row(pos), reference.layer(0).k_row(pos));
                assert_eq!(seeded.layer(0).v_row(pos), reference.layer(0).v_row(pos));
            }
        }
        // Partial-edge match: only the shared head of a diverging query.
        let m = px.lookup(&[1, 2, 3, 7]).expect("partial hit");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn min_prefix_len_gates_both_sides() {
        let px = PrefixCache::new(cfg(1 << 20, 3));
        px.insert(&[1, 2], &donor(&[1, 2], 0));
        assert_eq!(px.stats().entries, 0, "too short to insert");
        px.insert(&[1, 2, 3, 4], &donor(&[1, 2, 3, 4], 0));
        assert!(px.lookup(&[1, 2]).is_none(), "match below threshold");
        assert_eq!(px.lookup(&[1, 2, 3]).unwrap().len(), 3);
        let s = px.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_respects_budget_and_lru_order() {
        // Each 4-token single-layer segment costs 4 * (3+2) * 4 = 80
        // bytes; budget fits two.
        let px = PrefixCache::new(cfg(170, 1));
        let a = [1u32, 11, 12, 13];
        let b = [2u32, 21, 22, 23];
        let c = [3u32, 31, 32, 33];
        px.insert(&a, &donor(&a, 0));
        px.insert(&b, &donor(&b, 0));
        assert_eq!(px.stats().entries, 2);
        // Touch `a` so `b` is the LRU leaf, then overflow.
        assert!(px.lookup(&a).is_some());
        px.insert(&c, &donor(&c, 0));
        let s = px.stats();
        assert!(s.resident_bytes <= 170, "budget respected: {s:?}");
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 80);
        assert!(px.lookup(&a).is_some(), "recently used survives");
        assert!(px.lookup(&c).is_some(), "newest survives");
        assert!(px.lookup(&b).is_none(), "LRU leaf evicted");
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let px = PrefixCache::new(cfg(0, 1));
        px.insert(&[1, 2, 3], &donor(&[1, 2, 3], 0));
        assert_eq!(px.stats().entries, 0);
        assert!(px.lookup(&[1, 2, 3]).is_none());
    }

    #[test]
    fn insert_longer_than_cache_is_ignored() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let cache = donor(&[1, 2], 0);
        px.insert(&[1, 2, 3], &cache);
        assert_eq!(px.stats().entries, 0);
    }

    #[test]
    fn seeding_requires_an_empty_matching_cache() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens = [5u32, 6, 7];
        px.insert(&tokens, &donor(&tokens, 0));
        let m = px.lookup(&tokens).unwrap();
        let mut busy = donor(&[9], 0);
        assert!(m.seed_into(&mut busy).is_err(), "non-empty cache");
        let mut wrong = KvCache::new(&[(3, 2), (3, 2)], 64);
        assert!(m.seed_into(&mut wrong).is_err(), "layer-count mismatch");
    }

    #[test]
    fn promotion_of_cached_prefix_adds_nothing() {
        let px = PrefixCache::new(cfg(1 << 20, 1));
        let tokens = [4u32, 5, 6, 7];
        let cache = donor(&tokens, 0);
        px.insert(&tokens, &cache);
        let before = px.stats();
        px.insert(&tokens, &cache);
        px.insert(&tokens[..2], &cache); // shorter: covered mid-edge
        let after = px.stats();
        assert_eq!(after.entries, before.entries);
        assert_eq!(after.resident_bytes, before.resident_bytes);
        assert_eq!(after.insertions, before.insertions);
    }
}
