//! Byte-level tokenizer.
//!
//! The scaled-down models use a 256-entry vocabulary, which makes the
//! identity byte mapping a *lossless* tokenizer: any UTF-8 text round
//! trips exactly. This keeps examples and tests working on real strings
//! without shipping a trained vocabulary.

/// Encodes text as its UTF-8 bytes (token ids 0..=255).
pub fn encode(text: &str) -> Vec<u32> {
    text.bytes().map(u32::from).collect()
}

/// Decodes token ids back to text; ids above 255 and invalid UTF-8
/// sequences are replaced with `U+FFFD` (lossy, like console output).
pub fn decode(tokens: &[u32]) -> String {
    let bytes: Vec<u8> = tokens
        .iter()
        .map(|&t| u8::try_from(t).unwrap_or(b'?'))
        .collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Vocabulary size of the byte tokenizer.
pub const VOCAB: usize = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trips() {
        let text = "KTransformers: hybrid inference!";
        assert_eq!(decode(&encode(text)), text);
    }

    #[test]
    fn utf8_round_trips() {
        let text = "Mixture-of-Experts — 专家混合 🚀";
        assert_eq!(decode(&encode(text)), text);
    }

    #[test]
    fn all_ids_are_in_vocab() {
        let ids = encode("any text at all");
        assert!(ids.iter().all(|&t| (t as usize) < VOCAB));
    }

    #[test]
    fn out_of_range_ids_decode_lossily() {
        let s = decode(&[72, 105, 9999]);
        assert!(s.starts_with("Hi"));
        assert_eq!(s.len(), 3);
    }
}
