//! Per-layer KV caches.
//!
//! Grouped-query attention caches roped keys and values per position;
//! MLA caches the compressed per-token latent instead (the memory win
//! that makes DeepSeek's attention GPU-resident even at long contexts).

use crate::error::ModelError;

/// Abstract per-layer KV storage: what attention needs from a cache.
///
/// Implemented by the flat [`LayerCache`] and by the two-tier
/// [`OffloadedLayerCache`] (§5 lists KV-cache offloading among the
/// techniques the injection framework enables).
pub trait KvStore {
    /// Number of cached positions.
    fn len(&self) -> usize;
    /// Whether no positions are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Appends one position.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when full or on width mismatch.
    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError>;
    /// Key (or latent) row at `pos`.
    fn k_row(&self, pos: usize) -> &[f32];
    /// Value row at `pos`.
    fn v_row(&self, pos: usize) -> &[f32];
}

/// The cache of one attention layer.
///
/// Rows are positions; `k_width`/`v_width` depend on the attention kind
/// (GQA: `kv_heads * head_dim` each; MLA: latent rank and 0).
#[derive(Debug, Clone)]
pub struct LayerCache {
    k: Vec<f32>,
    v: Vec<f32>,
    k_width: usize,
    v_width: usize,
    len: usize,
    capacity: usize,
}

impl LayerCache {
    /// Creates an empty cache with row widths and position capacity.
    pub fn new(k_width: usize, v_width: usize, capacity: usize) -> Self {
        LayerCache {
            k: Vec::with_capacity(k_width * capacity.min(64)),
            v: Vec::with_capacity(v_width * capacity.min(64)),
            k_width,
            v_width,
            len: 0,
            capacity,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum positions this cache will accept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Key (or latent) row width.
    pub fn k_width(&self) -> usize {
        self.k_width
    }

    /// Value row width.
    pub fn v_width(&self) -> usize {
        self.v_width
    }

    /// Appends one position.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when full or on width mismatch.
    pub fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        if self.len >= self.capacity {
            return Err(ModelError::exec(format!(
                "KV cache full at {} positions",
                self.capacity
            )));
        }
        if k_row.len() != self.k_width || v_row.len() != self.v_width {
            return Err(ModelError::exec(format!(
                "cache row widths {}/{} do not match {}/{}",
                k_row.len(),
                v_row.len(),
                self.k_width,
                self.v_width
            )));
        }
        self.k.extend_from_slice(k_row);
        self.v.extend_from_slice(v_row);
        self.len += 1;
        Ok(())
    }

    /// Key/latent row at position `pos`.
    pub fn k_row(&self, pos: usize) -> &[f32] {
        &self.k[pos * self.k_width..(pos + 1) * self.k_width]
    }

    /// Value row at position `pos`.
    pub fn v_row(&self, pos: usize) -> &[f32] {
        &self.v[pos * self.v_width..(pos + 1) * self.v_width]
    }

    /// Clears all cached positions (new conversation).
    pub fn reset(&mut self) {
        self.k.clear();
        self.v.clear();
        self.len = 0;
    }

    /// Bytes currently held (the quantity MLA compresses).
    pub fn bytes(&self) -> usize {
        (self.k.len() + self.v.len()) * std::mem::size_of::<f32>()
    }
}

impl KvStore for LayerCache {
    fn len(&self) -> usize {
        LayerCache::len(self)
    }

    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        LayerCache::push(self, k_row, v_row)
    }

    fn k_row(&self, pos: usize) -> &[f32] {
        LayerCache::k_row(self, pos)
    }

    fn v_row(&self, pos: usize) -> &[f32] {
        LayerCache::v_row(self, pos)
    }
}

/// A two-tier KV cache: the most recent `window` positions stay in the
/// fast (GPU) tier, older positions are evicted to the large (CPU/DRAM)
/// tier. Reads from the slow tier are counted so deployments can size
/// the window against their PCIe budget.
///
/// Eviction is strictly FIFO (attention reads every position each step
/// anyway, so recency is the only useful policy without sparsity).
#[derive(Debug, Clone)]
pub struct OffloadedLayerCache {
    /// Fast-tier rows, indexed by `pos - offloaded`.
    gpu: LayerCache,
    /// Slow-tier rows, indexed by `pos`.
    cpu: LayerCache,
    /// Fast-tier capacity in positions.
    window: usize,
    /// Positions evicted to the slow tier so far.
    offloaded: usize,
    /// Bytes moved fast -> slow (eviction traffic).
    evicted_bytes: usize,
}

impl OffloadedLayerCache {
    /// Creates a two-tier cache: `window` fast positions, `capacity`
    /// total.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when `window` is zero or exceeds
    /// `capacity`.
    pub fn new(
        k_width: usize,
        v_width: usize,
        window: usize,
        capacity: usize,
    ) -> Result<Self, ModelError> {
        if window == 0 || window > capacity {
            return Err(ModelError::config(format!(
                "window {window} must be in 1..={capacity}"
            )));
        }
        Ok(OffloadedLayerCache {
            gpu: LayerCache::new(k_width, v_width, capacity),
            cpu: LayerCache::new(k_width, v_width, capacity),
            window,
            offloaded: 0,
            evicted_bytes: 0,
        })
    }

    /// Positions currently in the fast tier.
    pub fn fast_len(&self) -> usize {
        self.gpu.len()
    }

    /// Positions evicted to the slow tier.
    pub fn slow_len(&self) -> usize {
        self.cpu.len()
    }

    /// Bytes moved to the slow tier so far.
    pub fn evicted_bytes(&self) -> usize {
        self.evicted_bytes
    }

    /// Bytes resident in the fast tier (the VRAM the window costs).
    pub fn fast_bytes(&self) -> usize {
        self.gpu.bytes()
    }

    fn maybe_evict(&mut self) -> Result<(), ModelError> {
        // Evict the oldest fast row once the window is exceeded. The
        // fast tier is a LayerCache without removal, so rebuild it —
        // O(window) per eviction, acceptable for a reference
        // implementation whose costs are modeled, not measured.
        if self.gpu.len() <= self.window {
            return Ok(());
        }
        let k0 = self.gpu.k_row(0).to_vec();
        let v0 = self.gpu.v_row(0).to_vec();
        self.cpu.push(&k0, &v0)?;
        self.evicted_bytes += (k0.len() + v0.len()) * std::mem::size_of::<f32>();
        let mut rebuilt = LayerCache::new(
            self.gpu.k_width(),
            self.gpu.v_width(),
            self.gpu.capacity(),
        );
        for pos in 1..self.gpu.len() {
            rebuilt.push(self.gpu.k_row(pos), self.gpu.v_row(pos))?;
        }
        self.gpu = rebuilt;
        self.offloaded += 1;
        Ok(())
    }
}

impl KvStore for OffloadedLayerCache {
    fn len(&self) -> usize {
        self.offloaded + self.gpu.len()
    }

    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        self.gpu.push(k_row, v_row)?;
        self.maybe_evict()
    }

    fn k_row(&self, pos: usize) -> &[f32] {
        if pos < self.offloaded {
            self.cpu.k_row(pos)
        } else {
            self.gpu.k_row(pos - self.offloaded)
        }
    }

    fn v_row(&self, pos: usize) -> &[f32] {
        if pos < self.offloaded {
            self.cpu.v_row(pos)
        } else {
            self.gpu.v_row(pos - self.offloaded)
        }
    }
}

/// All layers' caches for one sequence.
#[derive(Debug, Clone)]
pub struct KvCache {
    layers: Vec<LayerCache>,
}

impl KvCache {
    /// Builds caches from per-layer `(k_width, v_width)` specs.
    pub fn new(specs: &[(usize, usize)], capacity: usize) -> Self {
        KvCache {
            layers: specs
                .iter()
                .map(|&(kw, vw)| LayerCache::new(kw, vw, capacity))
                .collect(),
        }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Sequence length (positions cached in layer 0).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerCache::len)
    }

    /// Mutable access to one layer's cache.
    pub fn layer_mut(&mut self, i: usize) -> &mut LayerCache {
        &mut self.layers[i]
    }

    /// Shared access to one layer's cache.
    pub fn layer(&self, i: usize) -> &LayerCache {
        &self.layers[i]
    }

    /// Clears all layers.
    pub fn reset(&mut self) {
        for l in &mut self.layers {
            l.reset();
        }
    }

    /// Total cached bytes across layers.
    pub fn bytes(&self) -> usize {
        self.layers.iter().map(LayerCache::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut c = LayerCache::new(4, 2, 8);
        c.push(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0]).unwrap();
        c.push(&[7.0, 8.0, 9.0, 10.0], &[11.0, 12.0]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.k_row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.v_row(1), &[11.0, 12.0]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = LayerCache::new(2, 2, 1);
        c.push(&[0.0; 2], &[0.0; 2]).unwrap();
        assert!(c.push(&[0.0; 2], &[0.0; 2]).is_err());
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut c = LayerCache::new(4, 2, 8);
        assert!(c.push(&[0.0; 3], &[0.0; 2]).is_err());
        assert!(c.push(&[0.0; 4], &[0.0; 1]).is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_width_values_for_mla() {
        let mut c = LayerCache::new(8, 0, 4);
        c.push(&[0.5; 8], &[]).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.v_row(0), &[] as &[f32]);
        assert_eq!(c.bytes(), 32);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = LayerCache::new(2, 2, 4);
        c.push(&[1.0; 2], &[2.0; 2]).unwrap();
        c.reset();
        assert!(c.is_empty());
        c.push(&[3.0; 2], &[4.0; 2]).unwrap();
        assert_eq!(c.k_row(0), &[3.0, 3.0]);
    }

    #[test]
    fn offloaded_cache_preserves_logical_view() {
        let mut plain = LayerCache::new(3, 2, 32);
        let mut tiered = OffloadedLayerCache::new(3, 2, 4, 32).unwrap();
        for pos in 0..10 {
            let k = [pos as f32; 3];
            let v = [pos as f32 * 10.0; 2];
            KvStore::push(&mut plain, &k, &v).unwrap();
            tiered.push(&k, &v).unwrap();
        }
        assert_eq!(KvStore::len(&tiered), 10);
        assert_eq!(tiered.fast_len(), 4);
        assert_eq!(tiered.slow_len(), 6);
        for pos in 0..10 {
            assert_eq!(KvStore::k_row(&plain, pos), KvStore::k_row(&tiered, pos));
            assert_eq!(KvStore::v_row(&plain, pos), KvStore::v_row(&tiered, pos));
        }
    }

    #[test]
    fn offloaded_cache_counts_eviction_traffic() {
        let mut tiered = OffloadedLayerCache::new(4, 4, 2, 16).unwrap();
        for _ in 0..5 {
            tiered.push(&[0.0; 4], &[0.0; 4]).unwrap();
        }
        // 3 evictions x 8 f32 = 96 bytes.
        assert_eq!(tiered.evicted_bytes(), 3 * 8 * 4);
        // Fast tier holds exactly the window.
        assert_eq!(tiered.fast_bytes(), 2 * 8 * 4);
    }

    #[test]
    fn offloaded_cache_validates_window() {
        assert!(OffloadedLayerCache::new(4, 4, 0, 8).is_err());
        assert!(OffloadedLayerCache::new(4, 4, 9, 8).is_err());
        assert!(OffloadedLayerCache::new(4, 4, 8, 8).is_ok());
    }

    #[test]
    fn multi_layer_cache_tracks_seq_len() {
        let mut kv = KvCache::new(&[(4, 4), (8, 0)], 16);
        assert_eq!(kv.n_layers(), 2);
        assert_eq!(kv.seq_len(), 0);
        kv.layer_mut(0).push(&[0.0; 4], &[0.0; 4]).unwrap();
        kv.layer_mut(1).push(&[0.0; 8], &[]).unwrap();
        assert_eq!(kv.seq_len(), 1);
        assert!(kv.bytes() > 0);
        kv.reset();
        assert_eq!(kv.seq_len(), 0);
    }
}
