//! Per-layer KV caches.
//!
//! Grouped-query attention caches roped keys and values per position;
//! MLA caches the compressed per-token latent instead (the memory win
//! that makes DeepSeek's attention GPU-resident even at long contexts).

use crate::error::ModelError;
use crate::paged::{BlockAllocator, PagedKvStore};

/// Abstract per-layer KV storage: what attention needs from a cache.
///
/// Implemented by the flat [`LayerCache`], the two-tier
/// [`OffloadedLayerCache`] (§5 lists KV-cache offloading among the
/// techniques the injection framework enables), and the
/// [`PagedKvStore`] page table.
pub trait KvStore {
    /// Number of cached positions.
    fn len(&self) -> usize;
    /// Whether no positions are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Key (or latent) row width in floats.
    fn k_width(&self) -> usize;
    /// Value row width in floats.
    fn v_width(&self) -> usize;
    /// Maximum positions this store will accept.
    fn capacity(&self) -> usize;
    /// Bytes of authoritative cached rows (the state that must persist
    /// or transfer on placement changes; excludes memos and unused
    /// allocation).
    fn bytes(&self) -> usize {
        self.len() * (self.k_width() + self.v_width()) * std::mem::size_of::<f32>()
    }
    /// Appends one position.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when full or on width mismatch.
    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError>;
    /// Key (or latent) row at `pos`.
    fn k_row(&self, pos: usize) -> &[f32];
    /// Value row at `pos`.
    fn v_row(&self, pos: usize) -> &[f32];

    /// Configures the decoded-row memo to `width` floats per position,
    /// returning `false` when this store keeps no memo (callers must
    /// then re-materialize decoded rows from scratch every step).
    ///
    /// The memo is an optional acceleration tier for attention variants
    /// whose cached rows are not directly usable (MLA caches compressed
    /// latents): rows that are expensive to recompute each step but
    /// always reconstructible from the authoritative cached rows.
    /// Implementors must drop memo rows beyond `len()` here so a stale
    /// memo can never outlive the state it was decoded from.
    fn memo_ensure(&mut self, width: usize) -> bool {
        let _ = width;
        false
    }

    /// Positions currently present in the decoded-row memo.
    fn memo_len(&self) -> usize {
        0
    }

    /// Decoded-row memo width in floats (0 = memo unconfigured or not
    /// kept by this store).
    fn memo_width(&self) -> usize {
        0
    }

    /// Appends one decoded row to the memo.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] on width mismatch, when the memo
    /// would run ahead of the cache, or when the store keeps no memo.
    fn memo_push(&mut self, row: &[f32]) -> Result<(), ModelError> {
        let _ = row;
        Err(ModelError::exec("this KV store keeps no decoded-row memo"))
    }

    /// Decoded row at `pos` (must be `< memo_len()`).
    fn memo_row(&self, pos: usize) -> &[f32] {
        let _ = pos;
        &[]
    }
}

/// The cache of one attention layer.
///
/// Rows are positions; `k_width`/`v_width` depend on the attention kind
/// (GQA: `kv_heads * head_dim` each; MLA: latent rank and 0).
#[derive(Debug, Clone)]
pub struct LayerCache {
    k: Vec<f32>,
    v: Vec<f32>,
    k_width: usize,
    v_width: usize,
    len: usize,
    capacity: usize,
    /// Decoded-row memo (see [`KvStore::memo_ensure`]): rows decoded
    /// from the authoritative `k`/`v` state, kept so decode steps do
    /// not re-materialize the whole context. Scratch, not cache — it
    /// is excluded from [`LayerCache::bytes`] because it is dropped
    /// rather than transferred on any placement change and can always
    /// be rebuilt from the cached rows.
    memo: Vec<f32>,
    memo_width: usize,
}

impl LayerCache {
    /// Creates an empty cache with row widths and position capacity.
    pub fn new(k_width: usize, v_width: usize, capacity: usize) -> Self {
        LayerCache {
            k: Vec::with_capacity(k_width * capacity.min(64)),
            v: Vec::with_capacity(v_width * capacity.min(64)),
            k_width,
            v_width,
            len: 0,
            capacity,
            memo: Vec::new(),
            memo_width: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum positions this cache will accept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Key (or latent) row width.
    pub fn k_width(&self) -> usize {
        self.k_width
    }

    /// Value row width.
    pub fn v_width(&self) -> usize {
        self.v_width
    }

    /// Appends one position.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when full or on width mismatch.
    pub fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        if self.len >= self.capacity {
            return Err(ModelError::exec(format!(
                "KV cache full at {} positions",
                self.capacity
            )));
        }
        if k_row.len() != self.k_width || v_row.len() != self.v_width {
            return Err(ModelError::exec(format!(
                "cache row widths {}/{} do not match {}/{}",
                k_row.len(),
                v_row.len(),
                self.k_width,
                self.v_width
            )));
        }
        self.k.extend_from_slice(k_row);
        self.v.extend_from_slice(v_row);
        self.len += 1;
        Ok(())
    }

    /// Key/latent row at position `pos`.
    pub fn k_row(&self, pos: usize) -> &[f32] {
        &self.k[pos * self.k_width..(pos + 1) * self.k_width]
    }

    /// Value row at position `pos`.
    pub fn v_row(&self, pos: usize) -> &[f32] {
        &self.v[pos * self.v_width..(pos + 1) * self.v_width]
    }

    /// Clears all cached positions (new conversation).
    pub fn reset(&mut self) {
        self.k.clear();
        self.v.clear();
        self.memo.clear();
        self.len = 0;
    }

    /// Bytes currently held (the quantity MLA compresses).
    ///
    /// Counts only the authoritative cached rows — the state that must
    /// persist or transfer on placement changes. The decoded-row memo
    /// is reconstructible scratch, reported by
    /// [`LayerCache::memo_bytes`].
    pub fn bytes(&self) -> usize {
        (self.k.len() + self.v.len()) * std::mem::size_of::<f32>()
    }

    /// Bytes held by the decoded-row memo.
    pub fn memo_bytes(&self) -> usize {
        self.memo.len() * std::mem::size_of::<f32>()
    }

    /// Configures the decoded-row memo width, dropping any rows that
    /// outlived the cached state they were decoded from.
    pub fn memo_ensure(&mut self, width: usize) -> bool {
        if width == 0 {
            return false;
        }
        if self.memo_width != width {
            self.memo.clear();
            self.memo_width = width;
        }
        if self.memo.len() > self.len * width {
            self.memo.truncate(self.len * width);
        }
        true
    }

    /// Positions currently present in the decoded-row memo.
    pub fn memo_len(&self) -> usize {
        self.memo
            .len()
            .checked_div(self.memo_width)
            .unwrap_or_default()
    }

    /// Decoded-row memo width in floats (0 = memo unconfigured).
    pub fn memo_width(&self) -> usize {
        self.memo_width
    }

    /// Heap bytes retained by this cache's buffers, counting unused
    /// `Vec` capacity and the memo. Unlike [`LayerCache::bytes`] this
    /// survives a [`LayerCache::reset`] (which clears lengths but keeps
    /// allocations), so pools can report what parked caches actually
    /// cost in memory.
    pub fn allocated_bytes(&self) -> usize {
        (self.k.capacity() + self.v.capacity() + self.memo.capacity())
            * std::mem::size_of::<f32>()
    }

    /// Appends one decoded row to the memo.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] on width mismatch or when the memo
    /// would run ahead of the cached positions it mirrors.
    pub fn memo_push(&mut self, row: &[f32]) -> Result<(), ModelError> {
        if self.memo_width == 0 || row.len() != self.memo_width {
            return Err(ModelError::exec(format!(
                "memo row width {} does not match {}",
                row.len(),
                self.memo_width
            )));
        }
        if self.memo_len() >= self.len {
            return Err(ModelError::exec(
                "decoded-row memo cannot run ahead of the cache",
            ));
        }
        self.memo.extend_from_slice(row);
        Ok(())
    }

    /// Decoded row at position `pos`.
    pub fn memo_row(&self, pos: usize) -> &[f32] {
        &self.memo[pos * self.memo_width..(pos + 1) * self.memo_width]
    }
}

impl KvStore for LayerCache {
    fn len(&self) -> usize {
        LayerCache::len(self)
    }

    fn k_width(&self) -> usize {
        LayerCache::k_width(self)
    }

    fn v_width(&self) -> usize {
        LayerCache::v_width(self)
    }

    fn capacity(&self) -> usize {
        LayerCache::capacity(self)
    }

    fn bytes(&self) -> usize {
        LayerCache::bytes(self)
    }

    fn memo_width(&self) -> usize {
        LayerCache::memo_width(self)
    }

    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        LayerCache::push(self, k_row, v_row)
    }

    fn k_row(&self, pos: usize) -> &[f32] {
        LayerCache::k_row(self, pos)
    }

    fn v_row(&self, pos: usize) -> &[f32] {
        LayerCache::v_row(self, pos)
    }

    fn memo_ensure(&mut self, width: usize) -> bool {
        LayerCache::memo_ensure(self, width)
    }

    fn memo_len(&self) -> usize {
        LayerCache::memo_len(self)
    }

    fn memo_push(&mut self, row: &[f32]) -> Result<(), ModelError> {
        LayerCache::memo_push(self, row)
    }

    fn memo_row(&self, pos: usize) -> &[f32] {
        LayerCache::memo_row(self, pos)
    }
}

/// A two-tier KV cache: the most recent `window` positions stay in the
/// fast (GPU) tier, older positions are evicted to the large (CPU/DRAM)
/// tier. Reads from the slow tier are counted so deployments can size
/// the window against their PCIe budget.
///
/// Eviction is strictly FIFO (attention reads every position each step
/// anyway, so recency is the only useful policy without sparsity).
///
/// Keeps no decoded-row memo (the [`KvStore`] default): rows migrate
/// between tiers, so attention re-materializes decoded rows from the
/// logical view instead.
#[derive(Debug, Clone)]
pub struct OffloadedLayerCache {
    /// Fast-tier rows, indexed by `pos - offloaded`.
    gpu: LayerCache,
    /// Slow-tier rows, indexed by `pos`.
    cpu: LayerCache,
    /// Fast-tier capacity in positions.
    window: usize,
    /// Positions evicted to the slow tier so far.
    offloaded: usize,
    /// Bytes moved fast -> slow (eviction traffic).
    evicted_bytes: usize,
}

impl OffloadedLayerCache {
    /// Creates a two-tier cache: `window` fast positions, `capacity`
    /// total.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] when `window` is zero or exceeds
    /// `capacity`.
    pub fn new(
        k_width: usize,
        v_width: usize,
        window: usize,
        capacity: usize,
    ) -> Result<Self, ModelError> {
        if window == 0 || window > capacity {
            return Err(ModelError::config(format!(
                "window {window} must be in 1..={capacity}"
            )));
        }
        Ok(OffloadedLayerCache {
            gpu: LayerCache::new(k_width, v_width, capacity),
            cpu: LayerCache::new(k_width, v_width, capacity),
            window,
            offloaded: 0,
            evicted_bytes: 0,
        })
    }

    /// Positions currently in the fast tier.
    pub fn fast_len(&self) -> usize {
        self.gpu.len()
    }

    /// Positions evicted to the slow tier.
    pub fn slow_len(&self) -> usize {
        self.cpu.len()
    }

    /// Bytes moved to the slow tier so far.
    pub fn evicted_bytes(&self) -> usize {
        self.evicted_bytes
    }

    /// Bytes resident in the fast tier (the VRAM the window costs).
    pub fn fast_bytes(&self) -> usize {
        self.gpu.bytes()
    }

    fn maybe_evict(&mut self) -> Result<(), ModelError> {
        // Evict the oldest fast row once the window is exceeded. The
        // fast tier is a LayerCache without removal, so rebuild it —
        // O(window) per eviction, acceptable for a reference
        // implementation whose costs are modeled, not measured.
        if self.gpu.len() <= self.window {
            return Ok(());
        }
        let k0 = self.gpu.k_row(0).to_vec();
        let v0 = self.gpu.v_row(0).to_vec();
        self.cpu.push(&k0, &v0)?;
        self.evicted_bytes += (k0.len() + v0.len()) * std::mem::size_of::<f32>();
        let mut rebuilt = LayerCache::new(
            self.gpu.k_width(),
            self.gpu.v_width(),
            self.gpu.capacity(),
        );
        for pos in 1..self.gpu.len() {
            rebuilt.push(self.gpu.k_row(pos), self.gpu.v_row(pos))?;
        }
        self.gpu = rebuilt;
        self.offloaded += 1;
        Ok(())
    }
}

impl KvStore for OffloadedLayerCache {
    fn len(&self) -> usize {
        self.offloaded + self.gpu.len()
    }

    fn k_width(&self) -> usize {
        self.gpu.k_width()
    }

    fn v_width(&self) -> usize {
        self.gpu.v_width()
    }

    fn capacity(&self) -> usize {
        self.gpu.capacity()
    }

    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        self.gpu.push(k_row, v_row)?;
        self.maybe_evict()
    }

    fn k_row(&self, pos: usize) -> &[f32] {
        if pos < self.offloaded {
            self.cpu.k_row(pos)
        } else {
            self.gpu.k_row(pos - self.offloaded)
        }
    }

    fn v_row(&self, pos: usize) -> &[f32] {
        if pos < self.offloaded {
            self.cpu.v_row(pos)
        } else {
            self.gpu.v_row(pos - self.offloaded)
        }
    }
}

/// One layer's backing store inside a [`KvCache`]: flat (one
/// `max_seq`-sized buffer per layer) or paged (a page table over a
/// shared [`BlockAllocator`]).
#[derive(Debug, Clone)]
enum LayerStore {
    Flat(LayerCache),
    Paged(PagedKvStore),
}

impl LayerStore {
    fn store(&self) -> &dyn KvStore {
        match self {
            LayerStore::Flat(l) => l,
            LayerStore::Paged(p) => p,
        }
    }

    fn store_mut(&mut self) -> &mut dyn KvStore {
        match self {
            LayerStore::Flat(l) => l,
            LayerStore::Paged(p) => p,
        }
    }
}

/// All layers' caches for one sequence.
///
/// Layers are either all flat ([`KvCache::new`]) or all paged
/// ([`KvCache::new_paged`]); both expose the same [`KvStore`] view, so
/// attention, the engine, and the prefix cache never branch on the
/// backing representation.
#[derive(Debug, Clone)]
pub struct KvCache {
    layers: Vec<LayerStore>,
}

impl KvCache {
    /// Builds flat caches from per-layer `(k_width, v_width)` specs.
    pub fn new(specs: &[(usize, usize)], capacity: usize) -> Self {
        KvCache {
            layers: specs
                .iter()
                .map(|&(kw, vw)| LayerStore::Flat(LayerCache::new(kw, vw, capacity)))
                .collect(),
        }
    }

    /// Builds paged caches drawing pages of `page_rows` positions from
    /// `alloc`. `capacity` stays the logical per-sequence limit (the
    /// engine validates it against `max_seq`); actual memory is
    /// allocated page-by-page as positions arrive.
    pub fn new_paged(
        specs: &[(usize, usize)],
        capacity: usize,
        alloc: &BlockAllocator,
        page_rows: usize,
    ) -> Self {
        KvCache {
            layers: specs
                .iter()
                .map(|&(kw, vw)| {
                    LayerStore::Paged(PagedKvStore::new(kw, vw, capacity, page_rows, alloc))
                })
                .collect(),
        }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Sequence length (positions cached in layer 0).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, |l| l.store().len())
    }

    /// Whether layers are page-table backed.
    pub fn is_paged(&self) -> bool {
        matches!(self.layers.first(), Some(LayerStore::Paged(_)))
    }

    /// Positions per page when paged.
    pub fn page_rows(&self) -> Option<usize> {
        match self.layers.first() {
            Some(LayerStore::Paged(p)) => Some(p.page_rows()),
            _ => None,
        }
    }

    /// Mutable access to one layer's cache.
    pub fn layer_mut(&mut self, i: usize) -> &mut dyn KvStore {
        self.layers[i].store_mut()
    }

    /// Shared access to one layer's cache.
    pub fn layer(&self, i: usize) -> &dyn KvStore {
        self.layers[i].store()
    }

    /// One layer's page table, when paged.
    pub fn layer_paged(&self, i: usize) -> Option<&PagedKvStore> {
        match &self.layers[i] {
            LayerStore::Paged(p) => Some(p),
            LayerStore::Flat(_) => None,
        }
    }

    /// Mutable page table for one layer, when paged.
    pub fn layer_paged_mut(&mut self, i: usize) -> Option<&mut PagedKvStore> {
        match &mut self.layers[i] {
            LayerStore::Paged(p) => Some(p),
            LayerStore::Flat(_) => None,
        }
    }

    /// Clears all layers (paged layers return their uniquely-held
    /// pages to the allocator).
    pub fn reset(&mut self) {
        for l in &mut self.layers {
            match l {
                LayerStore::Flat(c) => c.reset(),
                LayerStore::Paged(p) => p.reset(),
            }
        }
    }

    /// Pages this cache's page tables currently reference (0 for flat
    /// caches). Shared pages count once per referencing cache.
    pub fn pages_held(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerStore::Flat(_) => 0,
                LayerStore::Paged(p) => p.pages().len(),
            })
            .sum()
    }

    /// Pages only this cache references — what a release actually
    /// returns to the allocator (shared pages just lose a reference).
    pub fn pages_owned(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerStore::Flat(_) => 0,
                LayerStore::Paged(p) => p.owned_pages(),
            })
            .sum()
    }

    /// Total cached bytes across layers (authoritative rows only).
    pub fn bytes(&self) -> usize {
        self.layers.iter().map(|l| l.store().bytes()).sum()
    }

    /// Total decoded-row memo bytes across layers (reconstructible
    /// scratch, kept separate from [`KvCache::bytes`]).
    pub fn memo_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerStore::Flat(c) => c.memo_bytes(),
                LayerStore::Paged(p) => p.memo_bytes(),
            })
            .sum()
    }

    /// Heap bytes retained across layers, including unused capacity
    /// and memos (see [`LayerCache::allocated_bytes`]).
    pub fn allocated_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerStore::Flat(c) => c.allocated_bytes(),
                LayerStore::Paged(p) => p.allocated_bytes(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut c = LayerCache::new(4, 2, 8);
        c.push(&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0]).unwrap();
        c.push(&[7.0, 8.0, 9.0, 10.0], &[11.0, 12.0]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.k_row(0), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.v_row(1), &[11.0, 12.0]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = LayerCache::new(2, 2, 1);
        c.push(&[0.0; 2], &[0.0; 2]).unwrap();
        assert!(c.push(&[0.0; 2], &[0.0; 2]).is_err());
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut c = LayerCache::new(4, 2, 8);
        assert!(c.push(&[0.0; 3], &[0.0; 2]).is_err());
        assert!(c.push(&[0.0; 4], &[0.0; 1]).is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn zero_width_values_for_mla() {
        let mut c = LayerCache::new(8, 0, 4);
        c.push(&[0.5; 8], &[]).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.v_row(0), &[] as &[f32]);
        assert_eq!(c.bytes(), 32);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = LayerCache::new(2, 2, 4);
        c.push(&[1.0; 2], &[2.0; 2]).unwrap();
        c.reset();
        assert!(c.is_empty());
        c.push(&[3.0; 2], &[4.0; 2]).unwrap();
        assert_eq!(c.k_row(0), &[3.0, 3.0]);
    }

    #[test]
    fn offloaded_cache_preserves_logical_view() {
        let mut plain = LayerCache::new(3, 2, 32);
        let mut tiered = OffloadedLayerCache::new(3, 2, 4, 32).unwrap();
        for pos in 0..10 {
            let k = [pos as f32; 3];
            let v = [pos as f32 * 10.0; 2];
            KvStore::push(&mut plain, &k, &v).unwrap();
            tiered.push(&k, &v).unwrap();
        }
        assert_eq!(KvStore::len(&tiered), 10);
        assert_eq!(tiered.fast_len(), 4);
        assert_eq!(tiered.slow_len(), 6);
        for pos in 0..10 {
            assert_eq!(KvStore::k_row(&plain, pos), KvStore::k_row(&tiered, pos));
            assert_eq!(KvStore::v_row(&plain, pos), KvStore::v_row(&tiered, pos));
        }
    }

    #[test]
    fn offloaded_cache_counts_eviction_traffic() {
        let mut tiered = OffloadedLayerCache::new(4, 4, 2, 16).unwrap();
        for _ in 0..5 {
            tiered.push(&[0.0; 4], &[0.0; 4]).unwrap();
        }
        // 3 evictions x 8 f32 = 96 bytes.
        assert_eq!(tiered.evicted_bytes(), 3 * 8 * 4);
        // Fast tier holds exactly the window.
        assert_eq!(tiered.fast_bytes(), 2 * 8 * 4);
    }

    #[test]
    fn offloaded_cache_validates_window() {
        assert!(OffloadedLayerCache::new(4, 4, 0, 8).is_err());
        assert!(OffloadedLayerCache::new(4, 4, 9, 8).is_err());
        assert!(OffloadedLayerCache::new(4, 4, 8, 8).is_ok());
    }

    #[test]
    fn memo_tracks_cache_and_heals_on_shrink() {
        let mut c = LayerCache::new(4, 0, 8);
        assert!(c.memo_ensure(6));
        // Memo cannot run ahead of the cached positions.
        assert!(c.memo_push(&[0.0; 6]).is_err());
        c.push(&[1.0; 4], &[]).unwrap();
        c.push(&[2.0; 4], &[]).unwrap();
        c.memo_push(&[0.5; 6]).unwrap();
        c.memo_push(&[1.5; 6]).unwrap();
        assert_eq!(c.memo_len(), 2);
        assert_eq!(c.memo_row(1), &[1.5; 6]);
        assert_eq!(c.memo_bytes(), 2 * 6 * 4);
        // The memo never counts toward the authoritative cache bytes.
        assert_eq!(c.bytes(), 2 * 4 * 4);
        // Width mismatch is rejected...
        assert!(c.memo_push(&[0.0; 5]).is_err());
        // ...and reconfiguring the width drops the stale rows.
        assert!(c.memo_ensure(10));
        assert_eq!(c.memo_len(), 0);
        // After a reset the memo is gone too: it may never describe
        // positions the cache no longer holds.
        c.memo_ensure(6);
        c.memo_push(&[0.25; 6]).unwrap();
        c.reset();
        assert_eq!(c.memo_len(), 0);
        c.push(&[3.0; 4], &[]).unwrap();
        assert!(c.memo_ensure(6));
        assert_eq!(c.memo_len(), 0);
    }

    #[test]
    fn offloaded_cache_keeps_no_memo() {
        let mut tiered = OffloadedLayerCache::new(4, 4, 2, 16).unwrap();
        assert!(!tiered.memo_ensure(8));
        assert_eq!(KvStore::memo_len(&tiered), 0);
        assert!(tiered.memo_push(&[0.0; 8]).is_err());
    }

    #[test]
    fn multi_layer_cache_tracks_seq_len() {
        let mut kv = KvCache::new(&[(4, 4), (8, 0)], 16);
        assert_eq!(kv.n_layers(), 2);
        assert_eq!(kv.seq_len(), 0);
        kv.layer_mut(0).push(&[0.0; 4], &[0.0; 4]).unwrap();
        kv.layer_mut(1).push(&[0.0; 8], &[]).unwrap();
        assert_eq!(kv.seq_len(), 1);
        assert!(kv.bytes() > 0);
        kv.reset();
        assert_eq!(kv.seq_len(), 0);
    }
}
