//! Error type for model construction and execution.

use std::fmt;

/// Errors produced by model-layer code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Invalid model configuration.
    Config {
        /// Human-readable description.
        what: String,
    },
    /// Shape or sequencing error during execution.
    Exec {
        /// Human-readable description.
        what: String,
    },
}

impl ModelError {
    /// Convenience constructor for [`ModelError::Config`].
    pub fn config(what: impl Into<String>) -> Self {
        ModelError::Config { what: what.into() }
    }

    /// Convenience constructor for [`ModelError::Exec`].
    pub fn exec(what: impl Into<String>) -> Self {
        ModelError::Exec { what: what.into() }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Config { what } => write!(f, "invalid model config: {what}"),
            ModelError::Exec { what } => write!(f, "model execution error: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<kt_kernels::KernelError> for ModelError {
    fn from(e: kt_kernels::KernelError) -> Self {
        ModelError::exec(e.to_string())
    }
}

impl From<kt_tensor::TensorError> for ModelError {
    fn from(e: kt_tensor::TensorError) -> Self {
        ModelError::exec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let ke = kt_kernels::KernelError::shape("bad");
        let me: ModelError = ke.into();
        assert!(me.to_string().contains("bad"));
        let te = kt_tensor::TensorError::shape("worse");
        let me: ModelError = te.into();
        assert!(me.to_string().contains("worse"));
    }
}
