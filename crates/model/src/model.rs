//! The end-to-end MoE causal language model.
//!
//! Assembles embeddings, attention blocks, dense/MoE feed-forward
//! layers, the final norm and LM head, and implements the three
//! execution modes studied in the paper:
//!
//! * [`ExecMode::Standard`] — the reference Transformer data flow.
//! * [`ExecMode::Deferred`] — **Expert Deferral** (§4.1): per MoE layer
//!   `k`, only the `n_immediate` highest-score routed experts
//!   contribute to `O_k`; the remaining experts' outputs are computed
//!   from the *same* input `I_k` but injected into `O_{k+1}`, one MoE
//!   layer later. The final MoE layer never defers, and additionally
//!   absorbs the previous layer's deferred contribution — exactly the
//!   piecewise definition in §4.1.
//! * [`ExecMode::Skipped`] — **Expert Skipping** (Figure 13's
//!   baseline): the lowest-score experts are simply dropped.
//!
//! The numerical identity `Deferred ≡ Standard modulo one-layer delay of
//! low-rank contributions` is what makes deferral accuracy-preserving;
//! the scheduling benefit (CPU/GPU overlap) is realized in `kt-core`
//! and modeled in `kt-hwsim`.

use kt_kernels::dispatch::Backend;
use kt_kernels::gemm::gemm_rowwise;
use kt_kernels::moe::{ExpertWeights, FusedMoE, MoeRouting};
use kt_kernels::schedule::{SchedulePolicy, ThreadPool};
use kt_tensor::{Matrix, PackedWeights, PrecisionPolicy, WeightDtype};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::attention::Attention;
use crate::config::ModelConfig;
use crate::error::ModelError;
use crate::gating::{GateConfig, Router};
use crate::kvcache::KvCache;
use crate::norm::RmsNorm;
use crate::rope::Rope;

/// Execution mode for MoE layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Standard Transformer execution.
    Standard,
    /// Expert Deferral with `n_immediate` immediate experts per token.
    Deferred {
        /// Experts whose output is consumed immediately (>= 2 per the
        /// paper's stability heuristic, though not enforced here so the
        /// ablation sweeps can explore the full range).
        n_immediate: usize,
    },
    /// Expert Skipping keeping only the `n_kept` best experts.
    Skipped {
        /// Experts retained per token.
        n_kept: usize,
    },
}

/// Feed-forward flavor of one block.
enum Ffn {
    /// Dense MLP (leading layers of DeepSeek models).
    Dense(FusedMoE),
    /// Mixture of experts with optional always-on shared experts.
    Moe {
        router: Router,
        shared: Option<FusedMoE>,
        routed: FusedMoE,
    },
}

/// One transformer block.
struct Block {
    attn_norm: RmsNorm,
    attn: Attention,
    ffn_norm: RmsNorm,
    ffn: Ffn,
}

/// A runnable MoE causal LM with randomly initialized weights.
pub struct MoeModel {
    cfg: ModelConfig,
    /// Token embeddings, `vocab x hidden` (dense lookup table).
    embed: Matrix,
    blocks: Vec<Block>,
    final_norm: RmsNorm,
    /// LM head, `vocab x hidden`.
    lm_head: PackedWeights,
    rope: Rope,
}

impl MoeModel {
    /// Builds a model with seeded random weights. Routed and shared
    /// expert weights use `expert_dtype` (the paper quantizes experts,
    /// keeping attention in higher precision); everything else is F32.
    ///
    /// Convenience wrapper over [`MoeModel::random_with`] with
    /// [`PrecisionPolicy::experts`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] for invalid configs and propagates
    /// packing errors.
    pub fn random(
        cfg: &ModelConfig,
        expert_dtype: WeightDtype,
        seed: u64,
    ) -> Result<Self, ModelError> {
        Self::random_with(cfg, &PrecisionPolicy::experts(expert_dtype), seed)
    }

    /// Builds a model with seeded random weights, packing each weight
    /// role at the precision the policy assigns it.
    ///
    /// The random stream draws full-precision matrices first and packs
    /// them afterwards, so two models built from the same seed under
    /// different policies share the exact same underlying weights — the
    /// foundation for apples-to-apples quantization divergence studies.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] for invalid configs or a policy
    /// whose group sizes do not divide the model dimensions, and
    /// propagates packing errors.
    pub fn random_with(
        cfg: &ModelConfig,
        precision: &PrecisionPolicy,
        seed: u64,
    ) -> Result<Self, ModelError> {
        cfg.validate().map_err(ModelError::config)?;
        precision
            .validate(cfg.hidden, cfg.dense_inter, cfg.moe_inter)
            .map_err(|e| ModelError::config(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut embed = Matrix::zeros(cfg.vocab, cfg.hidden)?;
        kt_tensor::rng::fill_normal(&mut rng, embed.as_mut_slice(), 0.1);

        let mut blocks = Vec::with_capacity(cfg.n_layers);
        for layer in 0..cfg.n_layers {
            let attn = Attention::random(
                cfg.hidden,
                cfg.n_heads,
                cfg.head_dim,
                cfg.attention,
                precision.attention,
                &mut rng,
            )?;
            let ffn = if layer < cfg.n_dense_layers {
                let dense =
                    ExpertWeights::random(cfg.hidden, cfg.dense_inter, precision.dense, &mut rng)?;
                Ffn::Dense(FusedMoE::new(vec![dense], Backend::HybridAmxAvx512)?)
            } else {
                let gate_cfg = GateConfig {
                    n_experts: cfg.n_routed_experts,
                    top_k: cfg.top_k,
                    n_groups: cfg.n_groups,
                    topk_groups: cfg.topk_groups,
                    score: cfg.score,
                    routed_scaling: cfg.routed_scaling,
                    norm_topk_prob: cfg.norm_topk_prob,
                };
                let router = Router::random(gate_cfg, cfg.hidden, &mut rng)?;
                let shared = if cfg.n_shared_experts > 0 {
                    let experts = (0..cfg.n_shared_experts)
                        .map(|_| {
                            ExpertWeights::random(
                                cfg.hidden,
                                cfg.moe_inter,
                                precision.shared,
                                &mut rng,
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Some(FusedMoE::new(experts, Backend::HybridAmxAvx512)?)
                } else {
                    None
                };
                let experts = (0..cfg.n_routed_experts)
                    .map(|_| {
                        ExpertWeights::random(cfg.hidden, cfg.moe_inter, precision.routed, &mut rng)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ffn::Moe {
                    router,
                    shared,
                    routed: FusedMoE::new(experts, Backend::HybridAmxAvx512)?,
                }
            };
            blocks.push(Block {
                attn_norm: RmsNorm::random(cfg.hidden, &mut rng),
                attn,
                ffn_norm: RmsNorm::random(cfg.hidden, &mut rng),
                ffn,
            });
        }

        let mut head = Matrix::zeros(cfg.vocab, cfg.hidden)?;
        kt_tensor::rng::fill_normal(&mut rng, head.as_mut_slice(), 0.05);
        let lm_head = PackedWeights::pack(&head, precision.lm_head)?;
        let rope = Rope::new(cfg.head_dim, cfg.max_seq, cfg.rope_theta);
        Ok(MoeModel {
            cfg: cfg.clone(),
            embed,
            blocks,
            final_norm: RmsNorm::ones(cfg.hidden),
            lm_head,
            rope,
        })
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Creates a KV cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        let specs: Vec<(usize, usize)> = self
            .blocks
            .iter()
            .map(|b| b.attn.cache_spec())
            .collect();
        KvCache::new(&specs, self.cfg.max_seq)
    }

    /// Routes `x` through one MoE layer's router (exposed for
    /// engine-level scheduling, which needs routing decisions before
    /// dispatching expert work).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] if `layer` is not a MoE layer.
    pub fn route_layer(&self, layer: usize, x: &Matrix) -> Result<MoeRouting, ModelError> {
        match &self.blocks[layer].ffn {
            Ffn::Moe { router, .. } => Ok(router.route(x)),
            Ffn::Dense(_) => Err(ModelError::exec(format!("layer {layer} is dense"))),
        }
    }

    /// Runs the model over `tokens` (appended to `cache`), returning
    /// logits for every new position (`tokens.len() x vocab`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] on invalid tokens, cache overflow or
    /// kernel failures.
    pub fn forward(
        &self,
        tokens: &[u32],
        cache: &mut KvCache,
        mode: ExecMode,
        pool: Option<&ThreadPool>,
    ) -> Result<Matrix, ModelError> {
        if tokens.is_empty() {
            return Err(ModelError::exec("forward requires at least one token"));
        }
        for &t in tokens {
            if t as usize >= self.cfg.vocab {
                return Err(ModelError::exec(format!(
                    "token {t} outside vocab {}",
                    self.cfg.vocab
                )));
            }
        }
        let t_new = tokens.len();
        let mut x = Matrix::zeros(t_new, self.cfg.hidden)?;
        for (i, &t) in tokens.iter().enumerate() {
            x.row_mut(i).copy_from_slice(self.embed.row(t as usize));
        }

        let n_moe = self.blocks.iter().filter(|b| matches!(b.ffn, Ffn::Moe { .. })).count();
        let mut moe_idx = 0usize;
        // Deferred contribution from the previous MoE layer, to be added
        // into this layer's output (R^def_{k-1}(I_{k-1}) in §4.1).
        let mut pending: Option<Matrix> = None;

        for (layer, block) in self.blocks.iter().enumerate() {
            // Attention sublayer (pre-norm residual).
            let normed = block.attn_norm.forward(&x);
            let attn_out = block
                .attn
                .forward(&normed, cache.layer_mut(layer), &self.rope, pool)?;
            for (o, a) in x.as_mut_slice().iter_mut().zip(attn_out.as_slice()) {
                *o += a;
            }

            // Feed-forward sublayer.
            let ffn_in = block.ffn_norm.forward(&x);
            match &block.ffn {
                Ffn::Dense(mlp) => {
                    let all = MoeRouting::new(vec![vec![(0, 1.0)]; t_new]);
                    mlp.forward_accumulate(&ffn_in, &all, &mut x, pool, SchedulePolicy::Dynamic)?;
                }
                Ffn::Moe {
                    router,
                    shared,
                    routed,
                } => {
                    // Shared experts: always active, weight 1 each.
                    if let Some(sh) = shared {
                        let all: Vec<(usize, f32)> =
                            (0..sh.n_experts()).map(|e| (e, 1.0)).collect();
                        let all = MoeRouting::new(vec![all; t_new]);
                        sh.forward_accumulate(&ffn_in, &all, &mut x, pool, SchedulePolicy::Dynamic)?;
                    }

                    let routing = router.route(&ffn_in);
                    let is_last_moe = moe_idx + 1 == n_moe;
                    match mode {
                        ExecMode::Standard => {
                            routed.forward_accumulate(
                                &ffn_in,
                                &routing,
                                &mut x,
                                pool,
                                SchedulePolicy::Dynamic,
                            )?;
                        }
                        ExecMode::Skipped { n_kept } => {
                            let (kept, _) = routing.split_deferred(n_kept);
                            routed.forward_accumulate(
                                &ffn_in,
                                &kept,
                                &mut x,
                                pool,
                                SchedulePolicy::Dynamic,
                            )?;
                        }
                        ExecMode::Deferred { n_immediate } => {
                            if is_last_moe {
                                // Final MoE layer: no deferral (§4.1).
                                routed.forward_accumulate(
                                    &ffn_in,
                                    &routing,
                                    &mut x,
                                    pool,
                                    SchedulePolicy::Dynamic,
                                )?;
                            } else {
                                let (imm, def) = routing.split_deferred(n_immediate);
                                routed.forward_accumulate(
                                    &ffn_in,
                                    &imm,
                                    &mut x,
                                    pool,
                                    SchedulePolicy::Dynamic,
                                )?;
                                // Compute the deferred experts on the
                                // SAME input; their output lands at the
                                // next MoE layer's output.
                                let next_pending = if def.n_activations() > 0 {
                                    Some(routed.forward(
                                        &ffn_in,
                                        &def,
                                        pool,
                                        SchedulePolicy::Dynamic,
                                    )?)
                                } else {
                                    None
                                };
                                if let Some(p) = pending.take() {
                                    for (o, d) in
                                        x.as_mut_slice().iter_mut().zip(p.as_slice())
                                    {
                                        *o += d;
                                    }
                                }
                                pending = next_pending;
                                moe_idx += 1;
                                continue;
                            }
                        }
                    }
                    // Standard / Skipped / final-deferred path: absorb
                    // any pending deferred contribution.
                    if let Some(p) = pending.take() {
                        for (o, d) in x.as_mut_slice().iter_mut().zip(p.as_slice()) {
                            *o += d;
                        }
                    }
                    moe_idx += 1;
                }
            }
        }

        // Final norm + LM head.
        let normed = self.final_norm.forward(&x);
        let mut logits = Matrix::zeros(t_new, self.cfg.vocab)?;
        gemm_rowwise(&normed, &self.lm_head, &mut logits, pool)?;
        Ok(logits)
    }

    /// Serializes the full model (config + all weights) to a writer.
    /// Packed weights are stored in packed form, so loading skips the
    /// pack/quantize preprocessing.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, w: &mut impl std::io::Write) -> Result<(), ModelError> {
        kt_tensor::serial::write_magic(w, b"KTMDL")?;
        self.cfg.write_to(w)?;
        self.embed.write_to(w)?;
        for block in &self.blocks {
            block.attn_norm.write_to(w)?;
            block.attn.write_to(w)?;
            block.ffn_norm.write_to(w)?;
            match &block.ffn {
                Ffn::Dense(mlp) => {
                    kt_tensor::serial::write_u64(w, 0)?;
                    mlp.write_to(w)?;
                }
                Ffn::Moe {
                    router,
                    shared,
                    routed,
                } => {
                    kt_tensor::serial::write_u64(w, 1)?;
                    router.write_to(w)?;
                    kt_tensor::serial::write_u64(w, shared.is_some() as u64)?;
                    if let Some(sh) = shared {
                        sh.write_to(w)?;
                    }
                    routed.write_to(w)?;
                }
            }
        }
        self.final_norm.write_to(w)?;
        self.lm_head.write_to(w).map_err(ModelError::from)
    }

    /// Loads a model written by [`MoeModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] on corrupt checkpoints.
    pub fn load(r: &mut impl std::io::Read) -> Result<Self, ModelError> {
        kt_tensor::serial::expect_magic(r, b"KTMDL")?;
        let cfg = ModelConfig::read_from(r)?;
        let embed = Matrix::read_from(r)?;
        if embed.rows() != cfg.vocab || embed.cols() != cfg.hidden {
            return Err(ModelError::exec("embedding shape mismatch"));
        }
        let mut blocks = Vec::with_capacity(cfg.n_layers);
        for _ in 0..cfg.n_layers {
            let attn_norm = RmsNorm::read_from(r)?;
            let attn = Attention::read_from(r)?;
            let ffn_norm = RmsNorm::read_from(r)?;
            let ffn = match kt_tensor::serial::read_u64(r)? {
                0 => Ffn::Dense(FusedMoE::read_from(r)?),
                1 => {
                    let router = Router::read_from(r)?;
                    let shared = if kt_tensor::serial::read_u64(r)? != 0 {
                        Some(FusedMoE::read_from(r)?)
                    } else {
                        None
                    };
                    Ffn::Moe {
                        router,
                        shared,
                        routed: FusedMoE::read_from(r)?,
                    }
                }
                other => return Err(ModelError::exec(format!("unknown ffn tag {other}"))),
            };
            blocks.push(Block {
                attn_norm,
                attn,
                ffn_norm,
                ffn,
            });
        }
        let final_norm = RmsNorm::read_from(r)?;
        let lm_head = kt_tensor::PackedWeights::read_from(r)?;
        let rope = Rope::new(cfg.head_dim, cfg.max_seq, cfg.rope_theta);
        Ok(MoeModel {
            cfg,
            embed,
            blocks,
            final_norm,
            lm_head,
            rope,
        })
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), ModelError> {
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| ModelError::exec(format!("create checkpoint: {e}")))?,
        );
        self.save(&mut f)
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self, ModelError> {
        let mut f = std::io::BufReader::new(
            std::fs::File::open(path)
                .map_err(|e| ModelError::exec(format!("open checkpoint: {e}")))?,
        );
        Self::load(&mut f)
    }

    /// Teacher-forced perplexity of a token sequence: logits at
    /// position `t` score token `t + 1`. The standard language-model
    /// quality metric, usable to compare execution modes (e.g. how much
    /// Expert Skipping degrades next-token prediction vs Deferral).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] for sequences shorter than 2 tokens
    /// or on forward failures.
    pub fn perplexity(
        &self,
        tokens: &[u32],
        mode: ExecMode,
        pool: Option<&ThreadPool>,
    ) -> Result<f64, ModelError> {
        if tokens.len() < 2 {
            return Err(ModelError::exec("perplexity needs at least 2 tokens"));
        }
        let mut cache = self.new_cache();
        let logits = self.forward(tokens, &mut cache, mode, pool)?;
        let mut nll = 0.0f64;
        for t in 0..tokens.len() - 1 {
            let row = logits.row(t);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) as f64;
            let logsumexp = max
                + row
                    .iter()
                    .map(|&v| ((v as f64) - max).exp())
                    .sum::<f64>()
                    .ln();
            let target = tokens[t + 1] as usize;
            nll += logsumexp - row[target] as f64;
        }
        Ok((nll / (tokens.len() - 1) as f64).exp())
    }

    /// Convenience: runs a prompt then greedily decodes `n_new` tokens.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn generate_greedy(
        &self,
        prompt: &[u32],
        n_new: usize,
        mode: ExecMode,
        pool: Option<&ThreadPool>,
    ) -> Result<Vec<u32>, ModelError> {
        let mut cache = self.new_cache();
        let logits = self.forward(prompt, &mut cache, ExecMode::Standard, pool)?;
        let mut out = Vec::with_capacity(n_new);
        let mut next = argmax(logits.row(logits.rows() - 1));
        out.push(next);
        for _ in 1..n_new {
            let logits = self.forward(&[next], &mut cache, mode, pool)?;
            next = argmax(logits.row(0));
            out.push(next);
        }
        Ok(out)
    }
}

/// Index of the maximum logit.
pub fn argmax(v: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best as u32
}

impl std::fmt::Debug for MoeModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MoeModel")
            .field("name", &self.cfg.name)
            .field("layers", &self.cfg.n_layers)
            .field("experts", &self.cfg.n_routed_experts)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelPreset;

    fn tiny_model(preset: ModelPreset, seed: u64) -> MoeModel {
        MoeModel::random(&preset.tiny_config(), WeightDtype::F32, seed).unwrap()
    }

    #[test]
    fn forward_produces_finite_logits() {
        for preset in ModelPreset::all() {
            let model = tiny_model(preset, 1);
            let mut cache = model.new_cache();
            let logits = model
                .forward(&[1, 2, 3, 4], &mut cache, ExecMode::Standard, None)
                .unwrap();
            assert_eq!(logits.rows(), 4);
            assert_eq!(logits.cols(), 256);
            assert!(logits.as_slice().iter().all(|v| v.is_finite()), "{preset:?}");
        }
    }

    #[test]
    fn incremental_decode_matches_prefill() {
        let model = tiny_model(ModelPreset::DeepSeekV3, 2);
        let tokens = [5u32, 9, 13, 7];
        let mut full_cache = model.new_cache();
        let full = model
            .forward(&tokens, &mut full_cache, ExecMode::Standard, None)
            .unwrap();
        let mut inc_cache = model.new_cache();
        let _ = model
            .forward(&tokens[..2], &mut inc_cache, ExecMode::Standard, None)
            .unwrap();
        let _ = model
            .forward(&tokens[2..3], &mut inc_cache, ExecMode::Standard, None)
            .unwrap();
        let last = model
            .forward(&tokens[3..], &mut inc_cache, ExecMode::Standard, None)
            .unwrap();
        for (a, b) in full.row(3).iter().zip(last.row(0)) {
            assert!((a - b).abs() < 2e-3, "full={a} inc={b}");
        }
    }

    #[test]
    fn invalid_tokens_are_rejected() {
        let model = tiny_model(ModelPreset::Qwen2Moe, 3);
        let mut cache = model.new_cache();
        assert!(model
            .forward(&[], &mut cache, ExecMode::Standard, None)
            .is_err());
        assert!(model
            .forward(&[9999], &mut cache, ExecMode::Standard, None)
            .is_err());
    }

    #[test]
    fn deferral_with_full_immediate_matches_standard() {
        // Deferring zero experts (n_immediate >= top_k) must be exactly
        // the standard computation.
        let model = tiny_model(ModelPreset::DeepSeekV3, 4);
        let tokens = [3u32, 17, 40];
        let mut c1 = model.new_cache();
        let mut c2 = model.new_cache();
        let std_logits = model
            .forward(&tokens, &mut c1, ExecMode::Standard, None)
            .unwrap();
        let k = model.config().top_k;
        let def_logits = model
            .forward(&tokens, &mut c2, ExecMode::Deferred { n_immediate: k }, None)
            .unwrap();
        let err = std_logits.relative_error(&def_logits);
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn deferral_perturbs_less_than_skipping() {
        // The core claim behind Figure 13: with the same number of
        // affected experts, deferral stays much closer to the standard
        // output than skipping.
        let model = tiny_model(ModelPreset::DeepSeekV3, 5);
        let prompt = [3u32, 17, 40, 99];
        let k = model.config().top_k;
        let n_imm = 2; // defer/skip k-2 experts
        let run = |mode: ExecMode| {
            let mut cache = model.new_cache();
            let _ = model
                .forward(&prompt, &mut cache, ExecMode::Standard, None)
                .unwrap();
            // Decode a few steps under the studied mode.
            let mut last = Vec::new();
            let mut tok = 7u32;
            for _ in 0..3 {
                let logits = model.forward(&[tok], &mut cache, mode, None).unwrap();
                last = logits.row(0).to_vec();
                tok = argmax(&last);
            }
            last
        };
        let std_out = run(ExecMode::Standard);
        let def_out = run(ExecMode::Deferred { n_immediate: n_imm });
        let skip_out = run(ExecMode::Skipped { n_kept: n_imm });
        let dist = |a: &[f32], b: &[f32]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let d_def = dist(&std_out, &def_out);
        let d_skip = dist(&std_out, &skip_out);
        assert!(
            d_def < d_skip,
            "deferral divergence {d_def} should be below skipping {d_skip}"
        );
        let _ = k;
    }

    #[test]
    fn skipping_all_experts_changes_output() {
        let model = tiny_model(ModelPreset::Qwen2Moe, 6);
        let mut c1 = model.new_cache();
        let mut c2 = model.new_cache();
        let a = model
            .forward(&[1, 2], &mut c1, ExecMode::Standard, None)
            .unwrap();
        let b = model
            .forward(&[1, 2], &mut c2, ExecMode::Skipped { n_kept: 0 }, None)
            .unwrap();
        assert!(a.relative_error(&b) > 1e-4);
    }

    #[test]
    fn generation_is_deterministic() {
        let model = tiny_model(ModelPreset::DeepSeekV2, 7);
        let a = model
            .generate_greedy(&[1, 2, 3], 5, ExecMode::Standard, None)
            .unwrap();
        let b = model
            .generate_greedy(&[1, 2, 3], 5, ExecMode::Standard, None)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn perplexity_is_finite_and_mode_sensitive() {
        let model = tiny_model(ModelPreset::DeepSeekV3, 21);
        let tokens: Vec<u32> = (0..24).map(|i| (i * 37 + 5) % 256).collect();
        let std_ppl = model
            .perplexity(&tokens, ExecMode::Standard, None)
            .unwrap();
        assert!(std_ppl.is_finite() && std_ppl > 1.0);
        // An untrained model should be near the uniform-perplexity
        // ceiling (vocab = 256) but not above it by much.
        assert!(std_ppl < 4000.0, "ppl={std_ppl}");
        // Skipping every expert must not *improve* prediction on
        // average... but with random weights we only check validity.
        let skip_ppl = model
            .perplexity(&tokens, ExecMode::Skipped { n_kept: 0 }, None)
            .unwrap();
        assert!(skip_ppl.is_finite() && skip_ppl > 1.0);
        assert!(model.perplexity(&[1], ExecMode::Standard, None).is_err());
    }

    #[test]
    fn route_layer_exposes_moe_routing() {
        let model = tiny_model(ModelPreset::DeepSeekV3, 8);
        let cfg = model.config().clone();
        let x = Matrix::zeros(2, cfg.hidden).unwrap();
        // Layer 0 is dense for DS-3 tiny (1 dense layer).
        assert!(model.route_layer(0, &x).is_err());
        let routing = model.route_layer(1, &x).unwrap();
        assert_eq!(routing.n_tokens(), 2);
        assert_eq!(routing.assignments[0].len(), cfg.top_k);
    }

    #[test]
    fn checkpoint_round_trips_bit_exact() {
        // Quantized experts included: the packed payloads serialize
        // verbatim, so outputs are identical after reload.
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let model =
            MoeModel::random(&cfg, WeightDtype::Int8 { group: 16 }, 77).unwrap();
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = MoeModel::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), model.config());
        let tokens = [3u32, 14, 159, 26];
        let mut c1 = model.new_cache();
        let mut c2 = loaded.new_cache();
        let a = model
            .forward(&tokens, &mut c1, ExecMode::Standard, None)
            .unwrap();
        let b = loaded
            .forward(&tokens, &mut c2, ExecMode::Standard, None)
            .unwrap();
        assert_eq!(a.as_slice(), b.as_slice());

        // Corrupt magic is rejected.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(MoeModel::load(&mut bad.as_slice()).is_err());
        // Truncation is rejected.
        buf.truncate(buf.len() / 2);
        assert!(MoeModel::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn parallel_pool_matches_serial() {
        let model = tiny_model(ModelPreset::Qwen2Moe, 9);
        let pool = ThreadPool::new(3).unwrap();
        let mut c1 = model.new_cache();
        let mut c2 = model.new_cache();
        let a = model
            .forward(&[4, 5, 6], &mut c1, ExecMode::Standard, None)
            .unwrap();
        let b = model
            .forward(&[4, 5, 6], &mut c2, ExecMode::Standard, Some(&pool))
            .unwrap();
        let err = a.relative_error(&b);
        assert!(err < 1e-4, "err={err}");
    }
}
