//! Token sampling strategies.
//!
//! The paper's accuracy runs use greedy decoding for most benchmarks and
//! temperature `t = 0.3` with multiple samples for HumanEval/LiveBench;
//! both are provided, seeded for reproducibility.

use kt_kernels::act::softmax_inplace;
use rand::rngs::StdRng;
use rand::Rng;

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sampler {
    /// Always pick the argmax token.
    Greedy,
    /// Softmax sampling at the given temperature (> 0).
    Temperature(f32),
}

impl Sampler {
    /// Samples a token id from `logits`.
    ///
    /// # Panics
    ///
    /// Panics on empty logits or non-positive temperature (programming
    /// errors in the harness).
    pub fn sample(&self, logits: &[f32], rng: &mut StdRng) -> u32 {
        assert!(!logits.is_empty(), "cannot sample from empty logits");
        match *self {
            Sampler::Greedy => crate::model::argmax(logits),
            Sampler::Temperature(t) => {
                assert!(t > 0.0, "temperature must be positive");
                let mut probs: Vec<f32> = logits.iter().map(|&l| l / t).collect();
                softmax_inplace(&mut probs);
                let r: f32 = rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                for (i, &p) in probs.iter().enumerate() {
                    acc += p;
                    if r < acc {
                        return i as u32;
                    }
                }
                (probs.len() - 1) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    #[test]
    fn greedy_picks_argmax() {
        let mut rng = seeded(1);
        let logits = [0.1f32, 2.0, -1.0, 1.9];
        assert_eq!(Sampler::Greedy.sample(&logits, &mut rng), 1);
    }

    #[test]
    fn low_temperature_approaches_greedy() {
        let mut rng = seeded(2);
        let logits = [0.0f32, 5.0, 1.0];
        for _ in 0..20 {
            assert_eq!(Sampler::Temperature(0.05).sample(&logits, &mut rng), 1);
        }
    }

    #[test]
    fn high_temperature_spreads_mass() {
        let mut rng = seeded(3);
        let logits = [0.0f32, 1.0, 0.5];
        let mut seen = [0usize; 3];
        for _ in 0..300 {
            seen[Sampler::Temperature(10.0).sample(&logits, &mut rng) as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 30), "seen={seen:?}");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let logits = [0.3f32, 0.1, 0.9, 0.2];
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..10 {
            assert_eq!(
                Sampler::Temperature(0.8).sample(&logits, &mut a),
                Sampler::Temperature(0.8).sample(&logits, &mut b)
            );
        }
    }
}
