//! RMSNorm, the normalization used by DeepSeek and Qwen models.

use kt_tensor::Matrix;
use rand::rngs::StdRng;

/// Root-mean-square layer normalization with a learned gain.
#[derive(Debug, Clone)]
pub struct RmsNorm {
    weight: Vec<f32>,
    eps: f32,
}

impl RmsNorm {
    /// Creates an RMSNorm with unit gains.
    pub fn ones(dim: usize) -> Self {
        RmsNorm {
            weight: vec![1.0; dim],
            eps: 1e-6,
        }
    }

    /// Creates an RMSNorm with gains perturbed around 1 (so tests
    /// exercise the gain path).
    pub fn random(dim: usize, rng: &mut StdRng) -> Self {
        let mut w = vec![0.0f32; dim];
        kt_tensor::rng::fill_uniform(rng, &mut w, 0.1);
        for v in &mut w {
            *v += 1.0;
        }
        RmsNorm {
            weight: w,
            eps: 1e-6,
        }
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.weight.len()
    }

    /// Normalizes a single vector into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the norm dimension.
    pub fn forward_row(&self, x: &[f32], dst: &mut [f32]) {
        assert_eq!(x.len(), self.weight.len());
        assert_eq!(dst.len(), self.weight.len());
        let ms: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
        let inv = 1.0 / (ms + self.eps).sqrt();
        for ((d, &v), &w) in dst.iter_mut().zip(x).zip(&self.weight) {
            *d = v * inv * w;
        }
    }

    /// Serializes the norm (gains + epsilon).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), crate::error::ModelError> {
        kt_tensor::serial::write_f32s(w, &self.weight)?;
        kt_tensor::serial::write_f32s(w, &[self.eps])?;
        Ok(())
    }

    /// Deserializes a norm written by [`RmsNorm::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error for corrupt payloads.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, crate::error::ModelError> {
        let weight = kt_tensor::serial::read_f32s(r, kt_tensor::serial::MAX_ELEMS)?;
        let eps_v = kt_tensor::serial::read_f32s(r, 1)?;
        if weight.is_empty() || eps_v.len() != 1 {
            return Err(crate::error::ModelError::exec("corrupt RmsNorm payload"));
        }
        Ok(RmsNorm {
            weight,
            eps: eps_v[0],
        })
    }

    /// Normalizes every row of `x`, returning a fresh matrix.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), x.cols()).expect("nonzero dims");
        self.forward_into(x, &mut out);
        out
    }

    /// Normalizes every row of `x` into `out` (caller-owned buffer, e.g.
    /// a scratch-arena checkout on the decode hot path).
    ///
    /// # Panics
    ///
    /// Panics when `out` and `x` shapes disagree or the column count is
    /// not the norm dimension.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!((out.rows(), out.cols()), (x.rows(), x.cols()));
        for r in 0..x.rows() {
            self.forward_row(x.row(r), out.row_mut(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    #[test]
    fn unit_gain_normalizes_rms_to_one() {
        let norm = RmsNorm::ones(4);
        let x = [2.0f32, -2.0, 2.0, -2.0];
        let mut y = [0.0f32; 4];
        norm.forward_row(&x, &mut y);
        let ms: f32 = y.iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((ms - 1.0).abs() < 1e-4);
        assert_eq!(y[0].signum(), 1.0);
        assert_eq!(y[1].signum(), -1.0);
    }

    #[test]
    fn scale_invariance() {
        let norm = RmsNorm::ones(8);
        let mut rng = seeded(1);
        let mut x = vec![0.0f32; 8];
        kt_tensor::rng::fill_uniform(&mut rng, &mut x, 1.0);
        let mut y1 = vec![0.0f32; 8];
        let mut y2 = vec![0.0f32; 8];
        norm.forward_row(&x, &mut y1);
        let scaled: Vec<f32> = x.iter().map(|v| v * 100.0).collect();
        norm.forward_row(&scaled, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn gains_are_applied() {
        let norm = RmsNorm {
            weight: vec![2.0, 0.5],
            eps: 1e-6,
        };
        let x = [1.0f32, 1.0];
        let mut y = [0.0f32; 2];
        norm.forward_row(&x, &mut y);
        assert!((y[0] / y[1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn matrix_forward_matches_rows() {
        let mut rng = seeded(2);
        let norm = RmsNorm::random(6, &mut rng);
        let x = Matrix::random_uniform(3, 6, 1.0, &mut rng).unwrap();
        let y = norm.forward(&x);
        for r in 0..3 {
            let mut row = vec![0.0f32; 6];
            norm.forward_row(x.row(r), &mut row);
            assert_eq!(y.row(r), row.as_slice());
        }
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = seeded(3);
        let norm = RmsNorm::random(6, &mut rng);
        let mut buf = Vec::new();
        norm.write_to(&mut buf).unwrap();
        let loaded = RmsNorm::read_from(&mut buf.as_slice()).unwrap();
        let x = [0.3f32, -1.0, 0.5, 2.0, -0.2, 0.9];
        let mut a = [0.0f32; 6];
        let mut b = [0.0f32; 6];
        norm.forward_row(&x, &mut a);
        loaded.forward_row(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_vector_is_safe() {
        let norm = RmsNorm::ones(4);
        let x = [0.0f32; 4];
        let mut y = [1.0f32; 4];
        norm.forward_row(&x, &mut y);
        assert!(y.iter().all(|v| v.is_finite() && *v == 0.0));
    }
}
