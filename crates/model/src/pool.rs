//! A pool of per-sequence KV caches for multi-request serving.
//!
//! A continuous-batching server admits a request only when a cache is
//! available, so the pool doubles as the admission-control valve: it
//! bounds resident KV memory at `max_leases` caches and recycles
//! released allocations instead of reallocating per request.
//!
//! Leases are move-only tokens: [`KvCachePool::lease`] hands out a
//! [`CacheLease`] owning its cache, and only [`KvCachePool::release`]
//! takes it back. The pool tracks outstanding lease ids, so a cache can
//! never be handed to two requests at once and forgotten leases are
//! observable via [`KvCachePool::in_use`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::ModelError;
use crate::kvcache::KvCache;
use crate::paged::{pages_for_rows, BlockAllocator, PageStats};
use crate::prefix::{PrefixCache, PrefixCacheConfig, PrefixStats};

/// Source of process-unique pool tags, so a lease can never be released
/// into a pool it did not come from — even when two pools happen to
/// hand out the same lease id.
static NEXT_POOL_TAG: AtomicU64 = AtomicU64::new(1);

/// A leased per-sequence KV cache. Obtained from
/// [`KvCachePool::lease`]; give it back with [`KvCachePool::release`].
#[derive(Debug)]
pub struct CacheLease {
    /// The leased cache. Exclusively owned until released.
    pub cache: KvCache,
    id: u64,
    /// Tag of the pool that issued this lease.
    pool_tag: u64,
}

impl CacheLease {
    /// Unique id of this lease (never reused within a pool).
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct PoolState {
    /// Reset caches ready for reuse.
    free: Vec<KvCache>,
    /// Ids of leases currently out.
    leased: HashSet<u64>,
    next_id: u64,
    peak: usize,
    /// Caches ever constructed by this pool (leased + free, minus any
    /// dropped for shape mismatch on release).
    constructed: usize,
}

/// A point-in-time view of pool occupancy, read under one lock so the
/// `in_use + free == constructed` invariant holds in every snapshot
/// even while other threads lease and release concurrently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolOccupancy {
    /// Leases currently out.
    pub in_use: usize,
    /// Reset caches parked in the free list.
    pub free: usize,
    /// High-water mark of concurrent leases.
    pub peak: usize,
    /// Caches ever constructed (and still owned) by this pool.
    pub constructed: usize,
    /// Heap bytes retained by parked caches (buffers survive reset).
    pub pooled_bytes: usize,
}

/// A bounded pool of identically-shaped [`KvCache`]s, optionally backed
/// by a [`PrefixCache`] so leases start pre-seeded with shared-prefix
/// KV state instead of blank.
pub struct KvCachePool {
    specs: Vec<(usize, usize)>,
    capacity: usize,
    max_leases: usize,
    tag: u64,
    state: Mutex<PoolState>,
    prefix: Option<PrefixCache>,
    /// Page mode: the shared block allocator and rows per page. When
    /// set, leases are page-table backed and
    /// [`KvCachePool::lease_for_prompt`] admits by pages actually
    /// needed instead of reserving `capacity` rows up front.
    paged: Option<(BlockAllocator, usize)>,
}

impl KvCachePool {
    /// Builds a pool of caches with per-layer `(k_width, v_width)`
    /// `specs` and `capacity` token slots each, allowing at most
    /// `max_leases` concurrent leases.
    pub fn new(specs: &[(usize, usize)], capacity: usize, max_leases: usize) -> Self {
        KvCachePool {
            specs: specs.to_vec(),
            capacity,
            max_leases,
            tag: NEXT_POOL_TAG.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(PoolState {
                free: Vec::new(),
                leased: HashSet::new(),
                next_id: 0,
                peak: 0,
                constructed: 0,
            }),
            prefix: None,
            paged: None,
        }
    }

    /// Switches the pool to paged mode: leases draw pages of
    /// `page_rows` positions from one shared allocator of
    /// `total_pages` pages (across all layers and leases), and
    /// admission counts pages actually needed. `max_leases` still
    /// bounds concurrency, but page supply is the real valve.
    pub fn with_paged(mut self, total_pages: usize, page_rows: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be nonzero");
        self.paged = Some((BlockAllocator::new(total_pages), page_rows));
        self
    }

    /// Attaches a shared-prefix cache: [`KvCachePool::lease_for_prompt`]
    /// will seed leases from it and
    /// [`KvCachePool::release_with_prefix`] will freeze completed
    /// prefixes into it.
    pub fn with_prefix_cache(mut self, cfg: PrefixCacheConfig) -> Self {
        self.prefix = Some(PrefixCache::new(cfg));
        self
    }

    /// The attached prefix cache, if any.
    pub fn prefix_cache(&self) -> Option<&PrefixCache> {
        self.prefix.as_ref()
    }

    /// Prefix-cache counters, when a prefix cache is attached.
    pub fn prefix_stats(&self) -> Option<PrefixStats> {
        self.prefix.as_ref().map(PrefixCache::stats)
    }

    /// Builds a pool whose caches are shaped like `prototype` (e.g. an
    /// engine's `fresh_cache()`).
    pub fn for_prototype(prototype: &KvCache, max_leases: usize) -> Self {
        let specs: Vec<(usize, usize)> = (0..prototype.n_layers())
            .map(|i| {
                let l = prototype.layer(i);
                (l.k_width(), l.v_width())
            })
            .collect();
        let capacity = if prototype.n_layers() > 0 {
            prototype.layer(0).capacity()
        } else {
            0
        };
        KvCachePool::new(&specs, capacity, max_leases)
    }

    /// Leases a cache, or `None` when `max_leases` are already out
    /// (the admission-control signal: the caller should queue).
    pub fn lease(&self) -> Option<CacheLease> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.leased.len() >= self.max_leases {
            return None;
        }
        let cache = st.free.pop().unwrap_or_else(|| {
            st.constructed += 1;
            match &self.paged {
                Some((alloc, page_rows)) => {
                    KvCache::new_paged(&self.specs, self.capacity, alloc, *page_rows)
                }
                None => KvCache::new(&self.specs, self.capacity),
            }
        });
        let id = st.next_id;
        st.next_id += 1;
        st.leased.insert(id);
        st.peak = st.peak.max(st.leased.len());
        Some(CacheLease {
            cache,
            id,
            pool_tag: self.tag,
        })
    }

    /// Leases a cache pre-seeded with the longest cached prefix of
    /// `prompt`, returning the lease and the number of seeded tokens
    /// (0 on a miss or when no prefix cache is attached — the lease is
    /// then blank, exactly as from [`KvCachePool::lease`]).
    ///
    /// The match is capped at `prompt.len() - 1`: the final prompt
    /// position is always left to prefill so the step that feeds it
    /// produces the logits the first sampled token needs.
    ///
    /// In paged mode admission additionally requires enough free pages
    /// for the rows the prompt will actually allocate — the whole
    /// prompt minus the page-aligned shared region (shared pages are
    /// references, not allocations), plus one row of headroom for the
    /// first sampled token. `None` then means "queue", exactly like
    /// lease exhaustion.
    pub fn lease_for_prompt(&self, prompt: &[u32]) -> Option<(CacheLease, usize)> {
        let mut lease = self.lease()?;
        let m = if prompt.len() >= 2 {
            self.prefix
                .as_ref()
                .and_then(|px| px.lookup(&prompt[..prompt.len() - 1]))
        } else {
            None
        };
        if let Some((alloc, page_rows)) = &self.paged {
            let shared = m.as_ref().map_or(0, |m| m.page_aligned_len(*page_rows));
            let new_rows = prompt.len().saturating_sub(shared) + 1;
            if self.pages_needed(new_rows) > alloc.free_pages() {
                let _ = self.release(lease);
                return None;
            }
        }
        let Some(m) = m else {
            return Some((lease, 0));
        };
        match m.seed_into(&mut lease.cache) {
            Ok(()) => Some((lease, m.len())),
            Err(_) => {
                // A layout mismatch (or page exhaustion mid-seed) means
                // the snapshot cannot serve this lease; fall back cold.
                lease.cache.reset();
                Some((lease, 0))
            }
        }
    }

    /// Returns a lease to the pool. The cache is reset before reuse,
    /// so partially-advanced state from a failed step cannot leak into
    /// the next request.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the lease does not belong to
    /// this pool (wrong pool — detected by pool tag even when lease ids
    /// collide across pools — or forged after a release).
    pub fn release(&self, lease: CacheLease) -> Result<(), ModelError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if lease.pool_tag != self.tag {
            return Err(ModelError::exec(format!(
                "lease {} belongs to another pool",
                lease.id
            )));
        }
        if !st.leased.remove(&lease.id) {
            return Err(ModelError::exec(format!(
                "lease {} is not outstanding in this pool",
                lease.id
            )));
        }
        let mut cache = lease.cache;
        cache.reset();
        // Only recycle caches that still match the pool's shape and
        // backing mode; a cache swapped out for a foreign one is simply
        // dropped.
        if cache.n_layers() == self.specs.len() && cache.is_paged() == self.paged.is_some() {
            st.free.push(cache);
        } else {
            st.constructed = st.constructed.saturating_sub(1);
        }
        Ok(())
    }

    /// Freezes the lease's first `fed_tokens.len()` positions into the
    /// attached prefix cache (insert or promote), then releases the
    /// lease. `fed_tokens` must be exactly the tokens whose KV state
    /// the cache holds — prompt plus generated-and-fed tokens; the
    /// insert is skipped when the lengths disagree (a partially
    /// advanced cache after a failed step) or when no prefix cache is
    /// attached.
    ///
    /// # Errors
    ///
    /// Same as [`KvCachePool::release`]. A foreign lease inserts
    /// nothing.
    pub fn release_with_prefix(
        &self,
        lease: CacheLease,
        fed_tokens: &[u32],
    ) -> Result<(), ModelError> {
        if lease.pool_tag == self.tag {
            if let Some(px) = &self.prefix {
                if fed_tokens.len() == lease.cache.seq_len() {
                    px.insert(fed_tokens, &lease.cache);
                }
            }
        }
        self.release(lease)
    }

    /// Number of leases currently out.
    pub fn in_use(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .leased
            .len()
    }

    /// Leases still available before the pool saturates.
    pub fn available(&self) -> usize {
        self.max_leases - self.in_use()
    }

    /// Reset caches currently parked in the free list.
    pub fn pooled(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .free
            .len()
    }

    /// High-water mark of concurrent leases.
    pub fn peak_in_use(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).peak
    }

    /// Caches ever constructed (and still owned) by this pool.
    pub fn constructed(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .constructed
    }

    /// Atomic occupancy snapshot: every field read under one lock, so
    /// `in_use + free == constructed` holds in the returned view even
    /// under concurrent lease/release traffic.
    pub fn occupancy(&self) -> PoolOccupancy {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        PoolOccupancy {
            in_use: st.leased.len(),
            free: st.free.len(),
            peak: st.peak,
            constructed: st.constructed,
            pooled_bytes: st.free.iter().map(KvCache::allocated_bytes).sum(),
        }
    }

    /// Maximum concurrent leases.
    pub fn max_leases(&self) -> usize {
        self.max_leases
    }

    /// Token capacity of each cache.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows per page when the pool is in paged mode.
    pub fn page_rows(&self) -> Option<usize> {
        self.paged.as_ref().map(|(_, r)| *r)
    }

    /// The shared block allocator when the pool is in paged mode.
    pub fn block_allocator(&self) -> Option<&BlockAllocator> {
        self.paged.as_ref().map(|(a, _)| a)
    }

    /// Pages required to store `rows` new positions across every layer
    /// (0 in flat mode, where admission reserves whole caches instead).
    pub fn pages_needed(&self, rows: usize) -> usize {
        match &self.paged {
            Some((_, page_rows)) => self.specs.len() * pages_for_rows(rows, *page_rows),
            None => 0,
        }
    }

    /// Pages a paged lease must newly allocate to grow from `rows` to
    /// `rows + growth` positions, across every layer (0 in flat mode).
    /// Exact for append-only growth: pushes only allocate when they
    /// cross a page boundary, and seeding never leaves a partially
    /// filled *shared* page (the sub-page tail is always row-copied
    /// into an owned page), so appends never copy-on-write.
    pub fn pages_needed_growth(&self, rows: usize, growth: usize) -> usize {
        match &self.paged {
            Some((_, r)) => {
                self.specs.len() * (pages_for_rows(rows + growth, *r) - pages_for_rows(rows, *r))
            }
            None => 0,
        }
    }

    /// Pages still available in the allocator (0 in flat mode).
    pub fn free_pages(&self) -> usize {
        self.paged.as_ref().map_or(0, |(a, _)| a.free_pages())
    }

    /// Allocator occupancy in paged mode, with the shared gauge filled
    /// from the prefix index (the allocator itself cannot enumerate
    /// references — see [`PageStats::shared`]).
    pub fn page_stats(&self) -> Option<PageStats> {
        let (alloc, _) = self.paged.as_ref()?;
        let mut stats = alloc.stats();
        if let Some(px) = &self.prefix {
            stats.shared = px.shared_pages();
        }
        Some(stats)
    }

    /// Drops every frozen prefix segment, releasing the index's page
    /// references (pressure relief: the allocator reclaims each page
    /// as soon as no lease still shares it). Returns the bytes
    /// released, 0 when no prefix cache is attached.
    pub fn clear_prefix(&self) -> u64 {
        self.prefix.as_ref().map_or(0, PrefixCache::clear)
    }
}

impl std::fmt::Debug for KvCachePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvCachePool")
            .field("n_layers", &self.specs.len())
            .field("capacity", &self.capacity)
            .field("max_leases", &self.max_leases)
            .field("in_use", &self.in_use())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max: usize) -> KvCachePool {
        KvCachePool::new(&[(4, 4), (4, 4)], 8, max)
    }

    #[test]
    fn lease_up_to_max_then_starve() {
        let p = pool(2);
        let a = p.lease().unwrap();
        let b = p.lease().unwrap();
        assert!(p.lease().is_none(), "pool saturated");
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.available(), 0);
        p.release(a).unwrap();
        assert_eq!(p.available(), 1);
        let c = p.lease().unwrap();
        assert_ne!(b.id(), c.id(), "lease ids are never reused");
    }

    #[test]
    fn released_caches_are_recycled_reset() {
        let p = pool(1);
        let mut lease = p.lease().unwrap();
        lease
            .cache
            .layer_mut(0)
            .push(&[1.0; 4], &[2.0; 4])
            .unwrap();
        p.release(lease).unwrap();
        assert_eq!(p.pooled(), 1);
        let again = p.lease().unwrap();
        assert_eq!(p.pooled(), 0, "recycled, not reallocated");
        assert_eq!(again.cache.seq_len(), 0, "recycled cache is reset");
        p.release(again).unwrap();
    }

    #[test]
    fn foreign_lease_is_rejected() {
        let p1 = pool(1);
        let p2 = pool(1);
        let lease = p1.lease().unwrap();
        assert!(p2.release(lease).is_err());
        // p1 still considers the lease out: it was consumed by the
        // failed release, which counts as a leak p1 can observe.
        assert_eq!(p1.in_use(), 1);
    }

    #[test]
    fn foreign_lease_with_colliding_id_is_rejected() {
        // Both pools hand out id 0 first: only the pool tag can tell
        // the leases apart. Before tags, p1 would have accepted p2's
        // lease, corrupted its accounting, and parked a foreign cache
        // in its free list.
        let p1 = pool(2);
        let p2 = pool(2);
        let own = p1.lease().unwrap();
        let foreign = p2.lease().unwrap();
        assert_eq!(own.id(), foreign.id(), "ids collide across pools");
        assert!(p1.release(foreign).is_err());
        let occ = p1.occupancy();
        assert_eq!((occ.in_use, occ.free, occ.constructed), (1, 0, 1));
        p1.release(own).unwrap();
        let occ = p1.occupancy();
        assert_eq!((occ.in_use, occ.free, occ.constructed), (0, 1, 1));
        assert!(occ.pooled_bytes > 0, "parked cache keeps its buffers");
    }

    #[test]
    fn prefixed_lease_seeds_and_release_inserts() {
        use crate::prefix::PrefixCacheConfig;
        let p = KvCachePool::new(&[(4, 4)], 16, 2).with_prefix_cache(PrefixCacheConfig {
            capacity_bytes: 1 << 20,
            min_prefix_len: 2,
        });
        let prompt = [3u32, 1, 4, 1, 5];

        // Cold: nothing cached yet.
        let (mut lease, seeded) = p.lease_for_prompt(&prompt).unwrap();
        assert_eq!(seeded, 0);
        for (pos, &t) in prompt.iter().enumerate() {
            lease
                .cache
                .layer_mut(0)
                .push(&[pos as f32, t as f32, 0.0, 0.0], &[t as f32; 4])
                .unwrap();
        }
        p.release_with_prefix(lease, &prompt).unwrap();
        assert_eq!(p.prefix_stats().unwrap().entries, 1);

        // Warm: the same prompt seeds all but the final position.
        let (lease, seeded) = p.lease_for_prompt(&prompt).unwrap();
        assert_eq!(seeded, prompt.len() - 1);
        assert_eq!(lease.cache.seq_len(), prompt.len() - 1);
        assert_eq!(lease.cache.layer(0).k_row(2), &[2.0, 4.0, 0.0, 0.0]);
        p.release(lease).unwrap();

        // Pools without a prefix cache degrade to blank leases.
        let bare = KvCachePool::new(&[(4, 4)], 16, 1);
        let (lease, seeded) = bare.lease_for_prompt(&prompt).unwrap();
        assert_eq!(seeded, 0);
        bare.release_with_prefix(lease, &prompt).unwrap();
    }

    #[test]
    fn paged_pool_admits_by_pages_needed() {
        use crate::prefix::PrefixCacheConfig;
        // 2 layers, page_rows 4, 8 pages total. A 6-token prompt needs
        // ceil(7/4)=2 pages per layer = 4 pages.
        let p = KvCachePool::new(&[(4, 4), (4, 4)], 32, 8)
            .with_prefix_cache(PrefixCacheConfig {
                capacity_bytes: 1 << 20,
                min_prefix_len: 2,
            })
            .with_paged(8, 4);
        assert_eq!(p.page_rows(), Some(4));
        assert_eq!(p.pages_needed(7), 4);
        let prompt = [1u32, 2, 3, 4, 5, 6];

        let (mut a, seeded) = p.lease_for_prompt(&prompt).unwrap();
        assert_eq!(seeded, 0);
        assert!(a.cache.is_paged());
        for (pos, &t) in prompt.iter().enumerate() {
            let row = [pos as f32, t as f32, 0.0, 0.0];
            a.cache.layer_mut(0).push(&row, &row).unwrap();
            a.cache.layer_mut(1).push(&row, &row).unwrap();
        }
        // 6 rows -> 2 pages x 2 layers allocated.
        assert_eq!(p.free_pages(), 4);
        // A second identical prompt cannot fit: needs 4 pages free but
        // sharing is impossible (nothing frozen yet)... 4 are free, so
        // it would fit; a *longer* prompt cannot.
        assert!(p.lease_for_prompt(&[9u32; 12]).is_none(), "queue signal");

        // Freeze the first sequence; its pages move to the index.
        p.release_with_prefix(a, &prompt).unwrap();
        assert_eq!(p.free_pages(), 4, "frozen pages stay resident");

        // Warm re-admission: the aligned 4 rows are shared (free), so
        // only rows 4..6+1 allocate -> 1 page per layer.
        let (b, seeded) = p.lease_for_prompt(&prompt).unwrap();
        assert_eq!(seeded, prompt.len() - 1);
        assert_eq!(p.free_pages(), 2);
        let stats = p.page_stats().unwrap();
        assert_eq!(stats.total, 8);
        assert_eq!(stats.shared, 2, "one aligned page per layer shared");
        p.release(b).unwrap();

        // Pressure relief: clearing the prefix index frees its pages.
        assert!(p.clear_prefix() > 0);
        assert_eq!(p.free_pages(), 8);
    }

    #[test]
    fn prototype_shapes_match() {
        let proto = KvCache::new(&[(6, 2), (4, 4)], 16);
        let p = KvCachePool::for_prototype(&proto, 3);
        let lease = p.lease().unwrap();
        assert_eq!(lease.cache.n_layers(), 2);
        assert_eq!(lease.cache.layer(0).k_width(), 6);
        assert_eq!(lease.cache.layer(1).v_width(), 4);
        assert_eq!(p.capacity(), 16);
        p.release(lease).unwrap();
        assert_eq!(p.peak_in_use(), 1);
    }
}
