//! A pool of per-sequence KV caches for multi-request serving.
//!
//! A continuous-batching server admits a request only when a cache is
//! available, so the pool doubles as the admission-control valve: it
//! bounds resident KV memory at `max_leases` caches and recycles
//! released allocations instead of reallocating per request.
//!
//! Leases are move-only tokens: [`KvCachePool::lease`] hands out a
//! [`CacheLease`] owning its cache, and only [`KvCachePool::release`]
//! takes it back. The pool tracks outstanding lease ids, so a cache can
//! never be handed to two requests at once and forgotten leases are
//! observable via [`KvCachePool::in_use`].

use std::collections::HashSet;
use std::sync::Mutex;

use crate::error::ModelError;
use crate::kvcache::KvCache;

/// A leased per-sequence KV cache. Obtained from
/// [`KvCachePool::lease`]; give it back with [`KvCachePool::release`].
#[derive(Debug)]
pub struct CacheLease {
    /// The leased cache. Exclusively owned until released.
    pub cache: KvCache,
    id: u64,
}

impl CacheLease {
    /// Unique id of this lease (never reused within a pool).
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct PoolState {
    /// Reset caches ready for reuse.
    free: Vec<KvCache>,
    /// Ids of leases currently out.
    leased: HashSet<u64>,
    next_id: u64,
    peak: usize,
}

/// A bounded pool of identically-shaped [`KvCache`]s.
pub struct KvCachePool {
    specs: Vec<(usize, usize)>,
    capacity: usize,
    max_leases: usize,
    state: Mutex<PoolState>,
}

impl KvCachePool {
    /// Builds a pool of caches with per-layer `(k_width, v_width)`
    /// `specs` and `capacity` token slots each, allowing at most
    /// `max_leases` concurrent leases.
    pub fn new(specs: &[(usize, usize)], capacity: usize, max_leases: usize) -> Self {
        KvCachePool {
            specs: specs.to_vec(),
            capacity,
            max_leases,
            state: Mutex::new(PoolState {
                free: Vec::new(),
                leased: HashSet::new(),
                next_id: 0,
                peak: 0,
            }),
        }
    }

    /// Builds a pool whose caches are shaped like `prototype` (e.g. an
    /// engine's `fresh_cache()`).
    pub fn for_prototype(prototype: &KvCache, max_leases: usize) -> Self {
        let specs: Vec<(usize, usize)> = (0..prototype.n_layers())
            .map(|i| {
                let l = prototype.layer(i);
                (l.k_width(), l.v_width())
            })
            .collect();
        let capacity = if prototype.n_layers() > 0 {
            prototype.layer(0).capacity()
        } else {
            0
        };
        KvCachePool::new(&specs, capacity, max_leases)
    }

    /// Leases a cache, or `None` when `max_leases` are already out
    /// (the admission-control signal: the caller should queue).
    pub fn lease(&self) -> Option<CacheLease> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.leased.len() >= self.max_leases {
            return None;
        }
        let cache = st
            .free
            .pop()
            .unwrap_or_else(|| KvCache::new(&self.specs, self.capacity));
        let id = st.next_id;
        st.next_id += 1;
        st.leased.insert(id);
        st.peak = st.peak.max(st.leased.len());
        Some(CacheLease { cache, id })
    }

    /// Returns a lease to the pool. The cache is reset before reuse,
    /// so partially-advanced state from a failed step cannot leak into
    /// the next request.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the lease does not belong to
    /// this pool (wrong pool, or forged after a release).
    pub fn release(&self, lease: CacheLease) -> Result<(), ModelError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !st.leased.remove(&lease.id) {
            return Err(ModelError::exec(format!(
                "lease {} is not outstanding in this pool",
                lease.id
            )));
        }
        let mut cache = lease.cache;
        cache.reset();
        // Only recycle caches that still match the pool's shape; a
        // cache swapped out for a foreign one is simply dropped.
        if cache.n_layers() == self.specs.len() {
            st.free.push(cache);
        }
        Ok(())
    }

    /// Number of leases currently out.
    pub fn in_use(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .leased
            .len()
    }

    /// Leases still available before the pool saturates.
    pub fn available(&self) -> usize {
        self.max_leases - self.in_use()
    }

    /// Reset caches currently parked in the free list.
    pub fn pooled(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .free
            .len()
    }

    /// High-water mark of concurrent leases.
    pub fn peak_in_use(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).peak
    }

    /// Maximum concurrent leases.
    pub fn max_leases(&self) -> usize {
        self.max_leases
    }

    /// Token capacity of each cache.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for KvCachePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvCachePool")
            .field("n_layers", &self.specs.len())
            .field("capacity", &self.capacity)
            .field("max_leases", &self.max_leases)
            .field("in_use", &self.in_use())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(max: usize) -> KvCachePool {
        KvCachePool::new(&[(4, 4), (4, 4)], 8, max)
    }

    #[test]
    fn lease_up_to_max_then_starve() {
        let p = pool(2);
        let a = p.lease().unwrap();
        let b = p.lease().unwrap();
        assert!(p.lease().is_none(), "pool saturated");
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.available(), 0);
        p.release(a).unwrap();
        assert_eq!(p.available(), 1);
        let c = p.lease().unwrap();
        assert_ne!(b.id(), c.id(), "lease ids are never reused");
    }

    #[test]
    fn released_caches_are_recycled_reset() {
        let p = pool(1);
        let mut lease = p.lease().unwrap();
        lease
            .cache
            .layer_mut(0)
            .push(&[1.0; 4], &[2.0; 4])
            .unwrap();
        p.release(lease).unwrap();
        assert_eq!(p.pooled(), 1);
        let again = p.lease().unwrap();
        assert_eq!(p.pooled(), 0, "recycled, not reallocated");
        assert_eq!(again.cache.seq_len(), 0, "recycled cache is reset");
        p.release(again).unwrap();
    }

    #[test]
    fn foreign_lease_is_rejected() {
        let p1 = pool(1);
        let p2 = pool(1);
        let lease = p1.lease().unwrap();
        assert!(p2.release(lease).is_err());
        // p1 still considers the lease out: it was consumed by the
        // failed release, which counts as a leak p1 can observe.
        assert_eq!(p1.in_use(), 1);
    }

    #[test]
    fn prototype_shapes_match() {
        let proto = KvCache::new(&[(6, 2), (4, 4)], 16);
        let p = KvCachePool::for_prototype(&proto, 3);
        let lease = p.lease().unwrap();
        assert_eq!(lease.cache.n_layers(), 2);
        assert_eq!(lease.cache.layer(0).k_width(), 6);
        assert_eq!(lease.cache.layer(1).v_width(), 4);
        assert_eq!(p.capacity(), 16);
        p.release(lease).unwrap();
        assert_eq!(p.peak_in_use(), 1);
    }
}
