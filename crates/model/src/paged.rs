//! Paged KV storage: fixed-size pages behind a pool-wide block
//! allocator.
//!
//! The monolithic [`crate::kvcache::LayerCache`] sizes every sequence
//! for `max_seq` positions, so a pool of them admits by worst case:
//! concurrency is capped at `pool_bytes / max_seq_bytes` no matter how
//! short the actual sequences are. This module stores KV state in
//! fixed-size **pages** of [`PagedKvStore::page_rows`] positions
//! instead, allocated on demand from a shared [`BlockAllocator`], so a
//! sequence holds exactly `ceil(len / page_rows)` pages per layer and
//! admission can count *pages actually needed*.
//!
//! Pages are ref-counted (`Arc<PageData>`) and immutable-once-shared:
//!
//! * a store that uniquely owns a page writes into it in place;
//! * a page whose `Arc` is held elsewhere (a prefix-cache segment,
//!   another lease seeded from the same prefix) is **copy-on-write**:
//!   the first divergent write clones the page into a fresh private
//!   one from the allocator and replaces the shared reference.
//!
//! Accounting is by construction rather than by convention: every
//! `PageData` holds a weak handle to its allocator and returns itself
//! on [`Drop`], so a page can never be double-freed (drop runs once)
//! and a leak is exactly an `Arc` that somebody still holds —
//! observable as `allocated > 0` in [`BlockAllocator::stats`] after
//! every holder is gone.
//!
//! The decoded-row memo (MLA) stays a flat per-store scratch buffer,
//! exactly as in `LayerCache`: it is reconstructible from the
//! authoritative rows bit-for-bit (the engine proves this), is dropped
//! on every placement change anyway, and therefore never needs to be
//! paged, shared, or swapped.
//!
//! [`SwappedKv`] is the preemption tier: a flat, offloaded copy of a
//! whole cache's authoritative rows. Swap-out reads through the
//! [`KvStore`] trait and swap-in pushes the rows back, so the round
//! trip is bitwise exact for flat and paged caches alike.

use std::sync::{Arc, Mutex, Weak};

use crate::error::ModelError;
use crate::kvcache::{KvCache, KvStore};

/// Default page size in positions (rows per page).
pub const DEFAULT_PAGE_ROWS: usize = 16;

/// Point-in-time allocator occupancy and traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Pages the allocator may hand out in total.
    pub total: usize,
    /// Pages currently live (some `Arc<PageData>` exists).
    pub allocated: usize,
    /// Pages still available (`total - allocated`).
    pub free: usize,
    /// High-water mark of live pages.
    pub peak: usize,
    /// Live pages referenced from more than one place (prefix-shared
    /// or mid-copy-on-write). The raw allocator cannot enumerate page
    /// references (a `Weak` registry would defeat `Arc::get_mut`'s
    /// uniqueness test and force copy-on-write on every in-place
    /// append), so this is 0 in [`BlockAllocator::stats`] and filled
    /// by holders that can — [`crate::pool::KvCachePool::page_stats`]
    /// counts the prefix index's multiply-referenced pages.
    pub shared: usize,
    /// Pages ever allocated (monotonic).
    pub alloc_total: u64,
    /// Pages ever returned (monotonic; `alloc_total - freed_total ==
    /// allocated` at any quiescent point).
    pub freed_total: u64,
    /// Allocation requests refused because the pool was exhausted.
    pub exhausted_total: u64,
}

struct AllocState {
    allocated: usize,
    peak: usize,
    alloc_total: u64,
    freed_total: u64,
    exhausted_total: u64,
}

struct AllocInner {
    total: usize,
    state: Mutex<AllocState>,
}

/// One fixed-size KV page: `rows` positions of one layer's K and V
/// rows. Shared by `Arc`; returns itself to its allocator on drop.
pub struct PageData {
    k: Vec<f32>,
    v: Vec<f32>,
    k_width: usize,
    v_width: usize,
    rows: usize,
    alloc: Weak<AllocInner>,
}

impl PageData {
    /// Key row `r` (page-local, `r < rows`).
    pub fn k_row(&self, r: usize) -> &[f32] {
        &self.k[r * self.k_width..(r + 1) * self.k_width]
    }

    /// Value row `r` (page-local).
    pub fn v_row(&self, r: usize) -> &[f32] {
        &self.v[r * self.v_width..(r + 1) * self.v_width]
    }

    /// Positions this page holds.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Key-row width in floats.
    pub fn k_width(&self) -> usize {
        self.k_width
    }

    /// Value-row width in floats.
    pub fn v_width(&self) -> usize {
        self.v_width
    }

    /// Bytes of KV state this page stores.
    pub fn bytes(&self) -> usize {
        (self.k.len() + self.v.len()) * std::mem::size_of::<f32>()
    }

    fn write_row(&mut self, r: usize, k_row: &[f32], v_row: &[f32]) {
        self.k[r * self.k_width..(r + 1) * self.k_width].copy_from_slice(k_row);
        self.v[r * self.v_width..(r + 1) * self.v_width].copy_from_slice(v_row);
    }
}

impl std::fmt::Debug for PageData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageData")
            .field("rows", &self.rows)
            .field("k_width", &self.k_width)
            .field("v_width", &self.v_width)
            .finish()
    }
}

impl Drop for PageData {
    fn drop(&mut self) {
        if let Some(alloc) = self.alloc.upgrade() {
            let mut st = alloc.state.lock().unwrap_or_else(|e| e.into_inner());
            st.allocated = st.allocated.saturating_sub(1);
            st.freed_total += 1;
        }
    }
}

/// A bounded, thread-safe pool of KV pages. Cheap to clone (handles
/// share one pool). Pages are freed by dropping their last `Arc`, so
/// accounting is exact however many stores, prefix segments, or
/// in-flight seedings share a page.
#[derive(Clone)]
pub struct BlockAllocator {
    inner: Arc<AllocInner>,
}

impl BlockAllocator {
    /// Creates a pool of `total_pages` pages.
    pub fn new(total_pages: usize) -> Self {
        BlockAllocator {
            inner: Arc::new(AllocInner {
                total: total_pages,
                state: Mutex::new(AllocState {
                    allocated: 0,
                    peak: 0,
                    alloc_total: 0,
                    freed_total: 0,
                    exhausted_total: 0,
                }),
            }),
        }
    }

    /// Allocates one zeroed page, or `None` when the pool is
    /// exhausted (the admission/preemption signal).
    pub fn try_page(
        &self,
        k_width: usize,
        v_width: usize,
        page_rows: usize,
    ) -> Option<Arc<PageData>> {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.allocated >= self.inner.total {
            st.exhausted_total += 1;
            return None;
        }
        st.allocated += 1;
        st.peak = st.peak.max(st.allocated);
        st.alloc_total += 1;
        let page = Arc::new(PageData {
            k: vec![0.0; k_width * page_rows],
            v: vec![0.0; v_width * page_rows],
            k_width,
            v_width,
            rows: page_rows,
            alloc: Arc::downgrade(&self.inner),
        });
        Some(page)
    }

    /// Pages the pool may hand out in total.
    pub fn total_pages(&self) -> usize {
        self.inner.total
    }

    /// Pages currently live.
    pub fn allocated_pages(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .allocated
    }

    /// Pages still available.
    pub fn free_pages(&self) -> usize {
        self.inner.total - self.allocated_pages()
    }

    /// Occupancy snapshot. `shared` is 0 here — see [`PageStats::shared`]
    /// for who fills it.
    pub fn stats(&self) -> PageStats {
        let st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        PageStats {
            total: self.inner.total,
            allocated: st.allocated,
            free: self.inner.total - st.allocated,
            peak: st.peak,
            shared: 0,
            alloc_total: st.alloc_total,
            freed_total: st.freed_total,
            exhausted_total: st.exhausted_total,
        }
    }
}

impl std::fmt::Debug for BlockAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BlockAllocator")
            .field("total", &s.total)
            .field("allocated", &s.allocated)
            .field("shared", &s.shared)
            .finish()
    }
}

/// One layer's KV state as a page table over allocator pages.
///
/// Implements [`KvStore`], so attention reads it exactly like a flat
/// [`crate::kvcache::LayerCache`]; rows stay contiguous within a page,
/// which is all the attention kernels need.
#[derive(Debug, Clone)]
pub struct PagedKvStore {
    pages: Vec<Arc<PageData>>,
    len: usize,
    k_width: usize,
    v_width: usize,
    page_rows: usize,
    capacity: usize,
    alloc: BlockAllocator,
    /// Decoded-row memo: flat scratch, never paged or shared (see the
    /// module docs).
    memo: Vec<f32>,
    memo_width: usize,
}

impl PagedKvStore {
    /// Creates an empty paged store drawing pages from `alloc`.
    pub fn new(
        k_width: usize,
        v_width: usize,
        capacity: usize,
        page_rows: usize,
        alloc: &BlockAllocator,
    ) -> Self {
        assert!(page_rows > 0, "page_rows must be nonzero");
        PagedKvStore {
            pages: Vec::new(),
            len: 0,
            k_width,
            v_width,
            page_rows,
            capacity,
            alloc: alloc.clone(),
            memo: Vec::new(),
            memo_width: 0,
        }
    }

    /// Positions per page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// The page table (for freezing into prefix segments).
    pub fn pages(&self) -> &[Arc<PageData>] {
        &self.pages
    }

    /// Pages whose only reference is this store (the pages a release
    /// actually returns to the allocator; shared pages just lose one
    /// reference).
    pub fn owned_pages(&self) -> usize {
        self.pages
            .iter()
            .filter(|p| Arc::strong_count(p) == 1)
            .count()
    }

    /// Pages currently shared with another holder.
    pub fn shared_pages(&self) -> usize {
        self.pages.len() - self.owned_pages()
    }

    /// Appends one *full* shared page by reference (the zero-copy half
    /// of prefix seeding). Sharing is page-aligned by construction: a
    /// page joins whole at a page boundary or not at all, so a shared
    /// page is never split mid-page and appends after it always start
    /// a fresh private page.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the store's length is not
    /// page-aligned, the page's shape does not match, or the page
    /// would exceed capacity.
    pub fn share_page(&mut self, page: &Arc<PageData>) -> Result<(), ModelError> {
        if !self.len.is_multiple_of(self.page_rows) {
            return Err(ModelError::exec(format!(
                "shared pages must land on a page boundary (len {} % {} != 0)",
                self.len, self.page_rows
            )));
        }
        if page.k_width != self.k_width
            || page.v_width != self.v_width
            || page.rows != self.page_rows
        {
            return Err(ModelError::exec(format!(
                "shared page shape {}x{}/{} does not match store {}x{}/{}",
                page.k_width, page.v_width, page.rows, self.k_width, self.v_width, self.page_rows
            )));
        }
        if self.len + self.page_rows > self.capacity {
            return Err(ModelError::exec(format!(
                "shared page would exceed capacity {}",
                self.capacity
            )));
        }
        self.pages.push(Arc::clone(page));
        self.len += self.page_rows;
        Ok(())
    }

    /// Mutable access to page `idx`, cloning it first when shared
    /// (copy-on-write): the write then lands in a private page and the
    /// shared original keeps its bits.
    fn page_mut(&mut self, idx: usize) -> Result<&mut PageData, ModelError> {
        if Arc::get_mut(&mut self.pages[idx]).is_none() {
            let mut fresh = self
                .alloc
                .try_page(self.k_width, self.v_width, self.page_rows)
                .ok_or_else(|| ModelError::exec("KV page pool exhausted during copy-on-write"))?;
            {
                let dst = Arc::get_mut(&mut fresh).expect("fresh page is unshared");
                dst.k.copy_from_slice(&self.pages[idx].k);
                dst.v.copy_from_slice(&self.pages[idx].v);
            }
            self.pages[idx] = fresh;
        }
        Ok(Arc::get_mut(&mut self.pages[idx]).expect("page made unique above"))
    }

    /// Clears the store, returning every uniquely-held page to the
    /// allocator (shared pages just lose this store's reference).
    pub fn reset(&mut self) {
        self.pages.clear();
        self.len = 0;
        self.memo.clear();
    }

    /// Bytes of authoritative rows currently cached (by position, as
    /// in `LayerCache::bytes` — unused page tails excluded).
    pub fn bytes(&self) -> usize {
        self.len * (self.k_width + self.v_width) * std::mem::size_of::<f32>()
    }

    /// Bytes held by this store's page references and memo, counting
    /// whole pages (what the store keeps alive in the pool).
    pub fn allocated_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.bytes()).sum::<usize>()
            + self.memo.capacity() * std::mem::size_of::<f32>()
    }

    /// Bytes held by the decoded-row memo.
    pub fn memo_bytes(&self) -> usize {
        self.memo.len() * std::mem::size_of::<f32>()
    }
}

impl KvStore for PagedKvStore {
    fn len(&self) -> usize {
        self.len
    }

    fn k_width(&self) -> usize {
        self.k_width
    }

    fn v_width(&self) -> usize {
        self.v_width
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn push(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<(), ModelError> {
        if self.len >= self.capacity {
            return Err(ModelError::exec(format!(
                "KV cache full at {} positions",
                self.capacity
            )));
        }
        if k_row.len() != self.k_width || v_row.len() != self.v_width {
            return Err(ModelError::exec(format!(
                "cache row widths {}/{} do not match {}/{}",
                k_row.len(),
                v_row.len(),
                self.k_width,
                self.v_width
            )));
        }
        let r = self.len % self.page_rows;
        if r == 0 {
            let page = self
                .alloc
                .try_page(self.k_width, self.v_width, self.page_rows)
                .ok_or_else(|| ModelError::exec("KV page pool exhausted"))?;
            self.pages.push(page);
        }
        let idx = self.len / self.page_rows;
        self.page_mut(idx)?.write_row(r, k_row, v_row);
        self.len += 1;
        Ok(())
    }

    fn k_row(&self, pos: usize) -> &[f32] {
        self.pages[pos / self.page_rows].k_row(pos % self.page_rows)
    }

    fn v_row(&self, pos: usize) -> &[f32] {
        self.pages[pos / self.page_rows].v_row(pos % self.page_rows)
    }

    fn memo_ensure(&mut self, width: usize) -> bool {
        if width == 0 {
            return false;
        }
        if self.memo_width != width {
            self.memo.clear();
            self.memo_width = width;
        }
        if self.memo.len() > self.len * width {
            self.memo.truncate(self.len * width);
        }
        true
    }

    fn memo_len(&self) -> usize {
        self.memo
            .len()
            .checked_div(self.memo_width)
            .unwrap_or_default()
    }

    fn memo_width(&self) -> usize {
        self.memo_width
    }

    fn memo_push(&mut self, row: &[f32]) -> Result<(), ModelError> {
        if self.memo_width == 0 || row.len() != self.memo_width {
            return Err(ModelError::exec(format!(
                "memo row width {} does not match {}",
                row.len(),
                self.memo_width
            )));
        }
        if KvStore::memo_len(self) >= self.len {
            return Err(ModelError::exec(
                "decoded-row memo cannot run ahead of the cache",
            ));
        }
        self.memo.extend_from_slice(row);
        Ok(())
    }

    fn memo_row(&self, pos: usize) -> &[f32] {
        &self.memo[pos * self.memo_width..(pos + 1) * self.memo_width]
    }
}

/// Pages needed to hold `rows` positions at `page_rows` per page.
pub fn pages_for_rows(rows: usize, page_rows: usize) -> usize {
    rows.div_ceil(page_rows.max(1))
}

/// A flat, offloaded copy of one cache's authoritative KV rows — the
/// swap tier a preempted sequence's pages move to. Captured through
/// the [`KvStore`] trait and restored by pushing rows back, so the
/// round trip is bitwise exact for flat and paged caches alike. The
/// decoded-row memo is deliberately not captured: it rebuilds
/// bit-identically from the restored rows.
#[derive(Debug, Clone)]
pub struct SwappedKv {
    layers: Vec<SwappedLayer>,
    rows: usize,
}

#[derive(Debug, Clone)]
struct SwappedLayer {
    k: Vec<f32>,
    v: Vec<f32>,
    k_width: usize,
    v_width: usize,
}

impl SwappedKv {
    /// Copies every layer's cached rows out of `cache`.
    pub fn capture(cache: &KvCache) -> SwappedKv {
        let rows = cache.seq_len();
        let layers = (0..cache.n_layers())
            .map(|i| {
                let l = cache.layer(i);
                let (kw, vw) = (l.k_width(), l.v_width());
                let mut k = Vec::with_capacity(rows * kw);
                let mut v = Vec::with_capacity(rows * vw);
                for pos in 0..rows {
                    k.extend_from_slice(l.k_row(pos));
                    v.extend_from_slice(l.v_row(pos));
                }
                SwappedLayer {
                    k,
                    v,
                    k_width: kw,
                    v_width: vw,
                }
            })
            .collect();
        SwappedKv { layers, rows }
    }

    /// Positions captured.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes this swapped copy holds (the swap traffic, one way).
    pub fn bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| (l.k.len() + l.v.len()) * std::mem::size_of::<f32>())
            .sum()
    }

    /// Pushes the captured rows back into an empty `cache`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] when the cache is not empty, its
    /// layout does not match, or (paged) the allocator runs out of
    /// pages mid-restore.
    pub fn restore(&self, cache: &mut KvCache) -> Result<(), ModelError> {
        if cache.seq_len() != 0 {
            return Err(ModelError::exec("swap-in requires an empty KV cache"));
        }
        if cache.n_layers() != self.layers.len() {
            return Err(ModelError::exec(format!(
                "swapped copy has {} layers, cache has {}",
                self.layers.len(),
                cache.n_layers()
            )));
        }
        for (i, sl) in self.layers.iter().enumerate() {
            let store = cache.layer_mut(i);
            for pos in 0..self.rows {
                store.push(
                    &sl.k[pos * sl.k_width..(pos + 1) * sl.k_width],
                    &sl.v[pos * sl.v_width..(pos + 1) * sl.v_width],
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_bounds_and_counts() {
        let alloc = BlockAllocator::new(2);
        assert_eq!(alloc.total_pages(), 2);
        let a = alloc.try_page(4, 2, 8).unwrap();
        let b = alloc.try_page(4, 2, 8).unwrap();
        assert!(alloc.try_page(4, 2, 8).is_none(), "pool exhausted");
        assert_eq!(alloc.free_pages(), 0);
        drop(a);
        assert_eq!(alloc.free_pages(), 1);
        let s = alloc.stats();
        assert_eq!((s.alloc_total, s.freed_total), (3 - 1, 1)); // 2 grants, 1 back
        assert_eq!(s.exhausted_total, 1);
        assert_eq!(s.peak, 2);
        drop(b);
        assert_eq!(alloc.allocated_pages(), 0, "all pages returned");
    }

    #[test]
    fn shared_pages_track_multiply_referenced_pages() {
        let alloc = BlockAllocator::new(4);
        let mut s = PagedKvStore::new(2, 2, 32, 4, &alloc);
        for _ in 0..6 {
            s.push(&[0.0; 2], &[0.0; 2]).unwrap();
        }
        assert_eq!(s.shared_pages(), 0);
        let held = Arc::clone(&s.pages()[0]);
        assert_eq!(s.shared_pages(), 1);
        assert_eq!(s.owned_pages(), 1);
        drop(held);
        assert_eq!(s.shared_pages(), 0);
    }

    #[test]
    fn paged_store_matches_flat_reads() {
        use crate::kvcache::LayerCache;
        let alloc = BlockAllocator::new(64);
        let mut flat = LayerCache::new(3, 2, 40);
        let mut paged = PagedKvStore::new(3, 2, 40, 4, &alloc);
        for pos in 0..23 {
            let k = [pos as f32, pos as f32 * 2.0, 0.5];
            let v = [pos as f32 * 10.0, 1.0];
            KvStore::push(&mut flat, &k, &v).unwrap();
            paged.push(&k, &v).unwrap();
        }
        assert_eq!(KvStore::len(&paged), 23);
        assert_eq!(paged.pages().len(), 6, "ceil(23/4) pages");
        for pos in 0..23 {
            assert_eq!(KvStore::k_row(&flat, pos), KvStore::k_row(&paged, pos));
            assert_eq!(KvStore::v_row(&flat, pos), KvStore::v_row(&paged, pos));
        }
        paged.reset();
        assert_eq!(alloc.allocated_pages(), 0, "reset frees every page");
    }

    #[test]
    fn push_fails_cleanly_when_pool_exhausted() {
        let alloc = BlockAllocator::new(1);
        let mut s = PagedKvStore::new(2, 2, 64, 4, &alloc);
        for _ in 0..4 {
            s.push(&[0.0; 2], &[0.0; 2]).unwrap();
        }
        let err = s.push(&[0.0; 2], &[0.0; 2]);
        assert!(err.is_err(), "second page cannot be allocated");
        assert_eq!(KvStore::len(&s), 4, "failed push changes nothing");
    }

    #[test]
    fn capacity_and_width_checks() {
        let alloc = BlockAllocator::new(8);
        let mut s = PagedKvStore::new(2, 2, 3, 4, &alloc);
        for _ in 0..3 {
            s.push(&[0.0; 2], &[0.0; 2]).unwrap();
        }
        assert!(s.push(&[0.0; 2], &[0.0; 2]).is_err(), "capacity enforced");
        assert!(s.push(&[0.0; 1], &[0.0; 2]).is_err());
    }

    #[test]
    fn copy_on_write_never_aliases_after_a_write() {
        let alloc = BlockAllocator::new(8);
        let mut a = PagedKvStore::new(2, 1, 32, 4, &alloc);
        for pos in 0..4 {
            a.push(&[pos as f32; 2], &[pos as f32]).unwrap();
        }
        // Share a's full page into b, then overwrite a row in a.
        let mut b = PagedKvStore::new(2, 1, 32, 4, &alloc);
        b.share_page(&a.pages()[0]).unwrap();
        assert_eq!(b.shared_pages(), 1);
        assert_eq!(alloc.allocated_pages(), 1, "sharing allocates nothing");

        // Writing through a (its page is now shared) must CoW.
        let before_b: Vec<f32> = KvStore::k_row(&b, 1).to_vec();
        a.page_mut(0).unwrap().write_row(1, &[99.0, 99.0], &[99.0]);
        assert_eq!(KvStore::k_row(&a, 1), &[99.0, 99.0]);
        assert_eq!(KvStore::k_row(&b, 1), before_b.as_slice(), "b unchanged");
        assert_eq!(alloc.allocated_pages(), 2, "CoW allocated a private copy");
        assert_eq!(b.shared_pages(), 0, "pages no longer alias");
    }

    #[test]
    fn share_page_requires_alignment_and_shape() {
        let alloc = BlockAllocator::new(8);
        let mut donor = PagedKvStore::new(2, 1, 32, 4, &alloc);
        for pos in 0..4 {
            donor.push(&[pos as f32; 2], &[pos as f32]).unwrap();
        }
        let page = Arc::clone(&donor.pages()[0]);
        let mut s = PagedKvStore::new(2, 1, 32, 4, &alloc);
        s.push(&[0.0; 2], &[0.0]).unwrap();
        assert!(s.share_page(&page).is_err(), "mid-page share rejected");
        let mut wrong = PagedKvStore::new(3, 1, 32, 4, &alloc);
        assert!(wrong.share_page(&page).is_err(), "shape mismatch rejected");
        let mut tiny = PagedKvStore::new(2, 1, 2, 4, &alloc);
        assert!(tiny.share_page(&page).is_err(), "capacity enforced");
    }

    #[test]
    fn memo_behaves_like_layer_cache() {
        let alloc = BlockAllocator::new(8);
        let mut s = PagedKvStore::new(4, 0, 32, 4, &alloc);
        assert!(s.memo_ensure(6));
        assert!(s.memo_push(&[0.0; 6]).is_err(), "memo cannot run ahead");
        s.push(&[1.0; 4], &[]).unwrap();
        s.memo_push(&[0.5; 6]).unwrap();
        assert_eq!(KvStore::memo_len(&s), 1);
        assert_eq!(KvStore::memo_row(&s, 0), &[0.5; 6]);
        assert!(s.memo_ensure(8));
        assert_eq!(KvStore::memo_len(&s), 0, "width change drops stale rows");
    }

    #[test]
    fn swap_round_trip_is_bit_exact() {
        let alloc = BlockAllocator::new(64);
        let mut cache = KvCache::new_paged(&[(3, 2), (4, 0)], 64, &alloc, 4);
        for pos in 0..11 {
            cache
                .layer_mut(0)
                .push(&[pos as f32, 0.25, -1.0], &[pos as f32; 2])
                .unwrap();
            cache.layer_mut(1).push(&[pos as f32 * 3.0; 4], &[]).unwrap();
        }
        let swapped = SwappedKv::capture(&cache);
        assert_eq!(swapped.rows(), 11);
        assert_eq!(swapped.bytes(), 11 * (3 + 2 + 4) * 4);
        let reference = cache.clone();
        cache.reset();
        assert_eq!(alloc.allocated_pages() % 3, 0, "reference clone keeps pages");
        let mut restored = KvCache::new_paged(&[(3, 2), (4, 0)], 64, &alloc, 4);
        swapped.restore(&mut restored).unwrap();
        for i in 0..2 {
            for pos in 0..11 {
                assert_eq!(restored.layer(i).k_row(pos), reference.layer(i).k_row(pos));
                assert_eq!(restored.layer(i).v_row(pos), reference.layer(i).v_row(pos));
            }
        }
        assert!(swapped.restore(&mut restored).is_err(), "non-empty rejected");
    }

    #[test]
    fn pages_for_rows_rounds_up() {
        assert_eq!(pages_for_rows(0, 16), 0);
        assert_eq!(pages_for_rows(1, 16), 1);
        assert_eq!(pages_for_rows(16, 16), 1);
        assert_eq!(pages_for_rows(17, 16), 2);
    }
}
