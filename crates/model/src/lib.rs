//! MoE transformer models for the KTransformers reproduction.
//!
//! Implements the model architectures the paper evaluates (Table 1):
//! DeepSeek-V3-0324, DeepSeek-V2.5 and Qwen2-57B-A14B — as *configs*
//! carrying the full-scale dimensions for the hardware simulator, and as
//! runnable scaled-down instances with real weights for functional and
//! accuracy experiments:
//!
//! * [`config`] — architecture descriptions, parameter accounting
//!   (reproduces Table 1's total/GPU/CPU splits) and scaled-down presets.
//! * [`norm`], [`rope`] — RMSNorm and rotary position embeddings.
//! * [`attention`] — grouped-query attention and an MLA-style variant
//!   with a compressed latent KV cache.
//! * [`gating`] — top-k and grouped top-k routers with shared experts,
//!   softmax/sigmoid scoring and routed scaling, as used by
//!   DeepSeek-V2/V3 and Qwen2.
//! * [`kvcache`] — per-layer KV caches.
//! * [`paged`] — fixed-size KV pages behind a pool-wide ref-counted
//!   block allocator (admission by pages actually needed, copy-on-write
//!   sharing, swap tier for preemption).
//! * [`pool`] — a bounded lease/release pool of per-sequence caches
//!   (the admission-control valve of the serving layer).
//! * [`prefix`] — a token-keyed radix index of frozen KV snapshots for
//!   shared-prefix reuse (copy-on-write leases, LRU-by-bytes budget).
//! * [`model`] — the end-to-end causal LM with three execution modes:
//!   standard, **Expert Deferral** (§4: deferred experts' outputs are
//!   injected one MoE layer later) and **Expert Skipping** (the Figure
//!   13 baseline that drops low-score experts).
//! * [`sampler`] — greedy and temperature sampling.

pub mod attention;
pub mod config;
pub mod error;
pub mod gating;
pub mod kvcache;
pub mod model;
pub mod norm;
pub mod paged;
pub mod pool;
pub mod prefix;
pub mod rope;
pub mod sampler;
pub mod tokenizer;

pub use config::{AttentionKind, ModelConfig, ModelPreset};
pub use error::ModelError;
pub use gating::{GateConfig, Router, ScoreFunc};
pub use kvcache::{KvCache, KvStore, LayerCache, OffloadedLayerCache};
pub use model::{ExecMode, MoeModel};
pub use paged::{BlockAllocator, PageStats, PagedKvStore, SwappedKv, DEFAULT_PAGE_ROWS};
pub use pool::{CacheLease, KvCachePool, PoolOccupancy};
pub use prefix::{PrefixCache, PrefixCacheConfig, PrefixMatch, PrefixStats};
