//! Model architecture configurations and parameter accounting.
//!
//! Carries both the **full-scale** configurations of the paper's three
//! evaluation models (Table 1) — used by the hardware simulator's cost
//! model and by the Table 1 regenerator — and **scaled-down** presets
//! that actually run on test hardware with real weights.

use crate::gating::ScoreFunc;

/// Attention mechanism variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Grouped-query attention with `kv_heads` key/value heads
    /// (Qwen2-style; `kv_heads == n_heads` degenerates to MHA).
    Gqa {
        /// Number of key/value heads (must divide `n_heads`).
        kv_heads: usize,
    },
    /// Multi-head Latent Attention (DeepSeek-style): keys and values are
    /// reconstructed from a compressed per-token latent of rank
    /// `kv_lora_rank`, which is what the KV cache stores.
    Mla {
        /// Rank of the compressed KV latent.
        kv_lora_rank: usize,
    },
}

/// Complete architecture description of a MoE causal LM.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Vocabulary size.
    pub vocab: usize,
    /// Model (hidden) dimension.
    pub hidden: usize,
    /// Total transformer blocks.
    pub n_layers: usize,
    /// Leading blocks that use a dense MLP instead of MoE.
    pub n_dense_layers: usize,
    /// Dense-MLP intermediate dimension.
    pub dense_inter: usize,
    /// Per-expert MLP intermediate dimension.
    pub moe_inter: usize,
    /// Routed experts per MoE layer.
    pub n_routed_experts: usize,
    /// Shared experts per MoE layer (always active).
    pub n_shared_experts: usize,
    /// Experts activated per token (top-k).
    pub top_k: usize,
    /// Expert groups for grouped top-k routing (1 = plain top-k).
    pub n_groups: usize,
    /// Groups retained by grouped top-k.
    pub topk_groups: usize,
    /// Router scoring function.
    pub score: ScoreFunc,
    /// Scaling factor applied to routed-expert weights.
    pub routed_scaling: f32,
    /// Whether routing weights are renormalized over the selected top-k.
    pub norm_topk_prob: bool,
    /// Attention heads.
    pub n_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// Attention variant.
    pub attention: AttentionKind,
    /// Maximum sequence length (KV cache capacity).
    pub max_seq: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
}

impl ModelConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.n_layers == 0 || self.vocab == 0 {
            return Err("hidden, n_layers and vocab must be nonzero".into());
        }
        if self.n_dense_layers > self.n_layers {
            return Err(format!(
                "n_dense_layers {} exceeds n_layers {}",
                self.n_dense_layers, self.n_layers
            ));
        }
        if self.top_k > self.n_routed_experts {
            return Err(format!(
                "top_k {} exceeds n_routed_experts {}",
                self.top_k, self.n_routed_experts
            ));
        }
        if self.n_groups == 0 || !self.n_routed_experts.is_multiple_of(self.n_groups) {
            return Err(format!(
                "n_groups {} must divide n_routed_experts {}",
                self.n_groups, self.n_routed_experts
            ));
        }
        if self.topk_groups == 0 || self.topk_groups > self.n_groups {
            return Err(format!(
                "topk_groups {} must be in 1..={}",
                self.topk_groups, self.n_groups
            ));
        }
        if let AttentionKind::Gqa { kv_heads } = self.attention {
            if kv_heads == 0 || !self.n_heads.is_multiple_of(kv_heads) {
                return Err(format!(
                    "kv_heads {} must divide n_heads {}",
                    kv_heads, self.n_heads
                ));
            }
        }
        if !self.head_dim.is_multiple_of(2) {
            return Err("head_dim must be even for RoPE".into());
        }
        Ok(())
    }

    /// Number of MoE layers (Table 1 row "MoE Layers").
    pub fn n_moe_layers(&self) -> usize {
        self.n_layers - self.n_dense_layers
    }

    /// Parameters of the routed experts — the weights offloaded to CPU
    /// DRAM under the paper's placement (Table 1 row "CPU Parameters").
    pub fn cpu_params(&self) -> u64 {
        self.n_moe_layers() as u64
            * self.n_routed_experts as u64
            * 3
            * self.hidden as u64
            * self.moe_inter as u64
    }

    /// Parameters resident on the GPU: embeddings, LM head, attention,
    /// dense MLPs, shared experts and routers (Table 1 row "GPU
    /// Parameters").
    pub fn gpu_params(&self) -> u64 {
        let hidden = self.hidden as u64;
        let embed = 2 * self.vocab as u64 * hidden; // embedding + head
        let attn_per_layer: u64 = match self.attention {
            AttentionKind::Gqa { kv_heads } => {
                let qo = 2 * hidden * (self.n_heads * self.head_dim) as u64;
                let kv = 2 * hidden * (kv_heads * self.head_dim) as u64;
                qo + kv
            }
            AttentionKind::Mla { kv_lora_rank } => {
                let r = kv_lora_rank as u64;
                let hd = (self.n_heads * self.head_dim) as u64;
                // q down+up, kv down, kv up (k and v), output proj.
                let q = hidden * r + r * hd;
                let kv = hidden * r + r * 2 * hd;
                let o = hd * hidden;
                q + kv + o
            }
        };
        let dense = self.n_dense_layers as u64 * 3 * hidden * self.dense_inter as u64;
        let shared = self.n_moe_layers() as u64
            * self.n_shared_experts as u64
            * 3
            * hidden
            * self.moe_inter as u64;
        let router = self.n_moe_layers() as u64 * self.n_routed_experts as u64 * hidden;
        embed + self.n_layers as u64 * attn_per_layer + dense + shared + router
    }

    /// Total parameters (Table 1 row "Total Parameters").
    pub fn total_params(&self) -> u64 {
        self.cpu_params() + self.gpu_params()
    }

    /// Serializes the configuration.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), kt_tensor::TensorError> {
        use kt_tensor::serial::{write_bytes, write_f32s, write_u64};
        write_bytes(w, self.name.as_bytes())?;
        for v in [
            self.vocab,
            self.hidden,
            self.n_layers,
            self.n_dense_layers,
            self.dense_inter,
            self.moe_inter,
            self.n_routed_experts,
            self.n_shared_experts,
            self.top_k,
            self.n_groups,
            self.topk_groups,
            self.n_heads,
            self.head_dim,
            self.max_seq,
        ] {
            write_u64(w, v as u64)?;
        }
        write_u64(w, matches!(self.score, ScoreFunc::Sigmoid) as u64)?;
        write_u64(w, self.norm_topk_prob as u64)?;
        match self.attention {
            AttentionKind::Gqa { kv_heads } => {
                write_u64(w, 0)?;
                write_u64(w, kv_heads as u64)?;
            }
            AttentionKind::Mla { kv_lora_rank } => {
                write_u64(w, 1)?;
                write_u64(w, kv_lora_rank as u64)?;
            }
        }
        write_f32s(w, &[self.routed_scaling, self.rope_theta])
    }

    /// Deserializes a configuration written by [`ModelConfig::write_to`].
    ///
    /// # Errors
    ///
    /// Returns an error for corrupt or invalid configurations.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, kt_tensor::TensorError> {
        use kt_tensor::serial::{read_bytes, read_f32s, read_len, read_u64, MAX_ELEMS};
        let name_bytes = read_bytes(r, 4096)?;
        let name = String::from_utf8(name_bytes).map_err(|_| kt_tensor::TensorError::Io {
            what: "config name is not UTF-8".into(),
        })?;
        let mut vals = [0usize; 14];
        for v in &mut vals {
            *v = read_len(r, MAX_ELEMS)?;
        }
        let score = if read_u64(r)? != 0 {
            ScoreFunc::Sigmoid
        } else {
            ScoreFunc::Softmax
        };
        let norm_topk_prob = read_u64(r)? != 0;
        let attention = match read_u64(r)? {
            0 => AttentionKind::Gqa {
                kv_heads: read_len(r, MAX_ELEMS)?,
            },
            1 => AttentionKind::Mla {
                kv_lora_rank: read_len(r, MAX_ELEMS)?,
            },
            other => {
                return Err(kt_tensor::TensorError::Io {
                    what: format!("unknown attention tag {other}"),
                })
            }
        };
        let floats = read_f32s(r, 2)?;
        if floats.len() != 2 {
            return Err(kt_tensor::TensorError::Io {
                what: "missing config floats".into(),
            });
        }
        let cfg = ModelConfig {
            name,
            vocab: vals[0],
            hidden: vals[1],
            n_layers: vals[2],
            n_dense_layers: vals[3],
            dense_inter: vals[4],
            moe_inter: vals[5],
            n_routed_experts: vals[6],
            n_shared_experts: vals[7],
            top_k: vals[8],
            n_groups: vals[9],
            topk_groups: vals[10],
            n_heads: vals[11],
            head_dim: vals[12],
            max_seq: vals[13],
            score,
            routed_scaling: floats[0],
            norm_topk_prob,
            attention,
            rope_theta: floats[1],
        };
        cfg.validate()
            .map_err(|e| kt_tensor::TensorError::Io { what: e })?;
        Ok(cfg)
    }

    /// Parameters activated per decoded token on the CPU side:
    /// `top_k` routed experts per MoE layer.
    pub fn active_cpu_params_per_token(&self) -> u64 {
        self.n_moe_layers() as u64 * self.top_k as u64 * 3 * self.hidden as u64
            * self.moe_inter as u64
    }
}

/// The three models of the paper's evaluation plus a synthetic preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// DeepSeek-V3-0324 (671B), "DS-3".
    DeepSeekV3,
    /// DeepSeek-V2.5-1210 (236B), "DS-2".
    DeepSeekV2,
    /// Qwen2-57B-A14B, "QW-2".
    Qwen2Moe,
}

impl ModelPreset {
    /// All presets, in Table 1 order.
    pub fn all() -> [ModelPreset; 3] {
        [
            ModelPreset::DeepSeekV3,
            ModelPreset::DeepSeekV2,
            ModelPreset::Qwen2Moe,
        ]
    }

    /// Short name used in the paper's tables ("DS-3" etc.).
    pub fn short_name(self) -> &'static str {
        match self {
            ModelPreset::DeepSeekV3 => "DS-3",
            ModelPreset::DeepSeekV2 => "DS-2",
            ModelPreset::Qwen2Moe => "QW-2",
        }
    }

    /// Full-scale configuration with the published architecture
    /// dimensions; reproduces Table 1's parameter accounting.
    pub fn full_config(self) -> ModelConfig {
        match self {
            ModelPreset::DeepSeekV3 => ModelConfig {
                name: "DeepSeek-V3-0324".into(),
                vocab: 129_280,
                hidden: 7168,
                n_layers: 61,
                n_dense_layers: 3,
                dense_inter: 18_432,
                moe_inter: 2048,
                n_routed_experts: 256,
                n_shared_experts: 1,
                top_k: 8,
                n_groups: 8,
                topk_groups: 4,
                score: ScoreFunc::Sigmoid,
                routed_scaling: 2.5,
                norm_topk_prob: true,
                n_heads: 128,
                head_dim: 192,
                attention: AttentionKind::Mla { kv_lora_rank: 512 },
                max_seq: 16_384,
                rope_theta: 10_000.0,
            },
            ModelPreset::DeepSeekV2 => ModelConfig {
                name: "DeepSeek-V2.5-1210".into(),
                vocab: 102_400,
                hidden: 5120,
                n_layers: 60,
                n_dense_layers: 1,
                dense_inter: 12_288,
                moe_inter: 1536,
                n_routed_experts: 160,
                n_shared_experts: 2,
                top_k: 6,
                n_groups: 8,
                topk_groups: 3,
                score: ScoreFunc::Softmax,
                routed_scaling: 16.0,
                norm_topk_prob: false,
                n_heads: 128,
                head_dim: 192,
                attention: AttentionKind::Mla { kv_lora_rank: 512 },
                max_seq: 16_384,
                rope_theta: 10_000.0,
            },
            ModelPreset::Qwen2Moe => ModelConfig {
                name: "Qwen2-57B-A14B".into(),
                vocab: 151_936,
                hidden: 3584,
                n_layers: 28,
                n_dense_layers: 0,
                dense_inter: 18_944,
                moe_inter: 2560,
                n_routed_experts: 64,
                n_shared_experts: 8, // shared-expert inter 20480 = 8 x 2560
                top_k: 8,
                n_groups: 1,
                topk_groups: 1,
                score: ScoreFunc::Softmax,
                routed_scaling: 1.0,
                norm_topk_prob: false,
                n_heads: 28,
                head_dim: 128,
                attention: AttentionKind::Gqa { kv_heads: 4 },
                max_seq: 16_384,
                rope_theta: 1_000_000.0,
            },
        }
    }

    /// A scaled-down but architecturally faithful configuration that
    /// runs with real weights on test hardware: same routing strategy,
    /// shared-expert structure and attention kind, tiny dimensions.
    pub fn tiny_config(self) -> ModelConfig {
        let full = self.full_config();
        ModelConfig {
            name: format!("{}-tiny", full.name),
            vocab: 256,
            hidden: 64,
            n_layers: 5,
            n_dense_layers: full.n_dense_layers.min(1),
            dense_inter: 128,
            moe_inter: 48,
            n_routed_experts: 16,
            n_shared_experts: full.n_shared_experts.min(2),
            top_k: full.top_k.min(8),
            n_groups: if full.n_groups > 1 { 4 } else { 1 },
            topk_groups: if full.n_groups > 1 { 2 } else { 1 },
            score: full.score,
            routed_scaling: 1.0,
            norm_topk_prob: full.norm_topk_prob,
            n_heads: 4,
            head_dim: 16,
            attention: match full.attention {
                AttentionKind::Gqa { .. } => AttentionKind::Gqa { kv_heads: 2 },
                AttentionKind::Mla { .. } => AttentionKind::Mla { kv_lora_rank: 32 },
            },
            max_seq: 512,
            rope_theta: 10_000.0,
        }
    }
}

/// Formats a parameter count the way the paper does ("671B", "57B").
pub fn format_params(p: u64) -> String {
    if p >= 1_000_000_000 {
        format!("{:.0}B", p as f64 / 1e9)
    } else if p >= 1_000_000 {
        format!("{:.0}M", p as f64 / 1e6)
    } else {
        format!("{p}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn billions(p: u64) -> f64 {
        p as f64 / 1e9
    }

    #[test]
    fn all_configs_validate() {
        for preset in ModelPreset::all() {
            preset.full_config().validate().unwrap();
            preset.tiny_config().validate().unwrap();
        }
    }

    #[test]
    fn ds3_matches_table1() {
        let c = ModelPreset::DeepSeekV3.full_config();
        assert_eq!(c.n_moe_layers(), 58);
        assert_eq!(c.n_routed_experts, 256);
        assert_eq!(c.top_k, 8);
        // Table 1: total 671B, GPU 17B, CPU 654B.
        assert!((billions(c.cpu_params()) - 654.0).abs() < 10.0, "{}", billions(c.cpu_params()));
        assert!((billions(c.gpu_params()) - 17.0).abs() < 3.0, "{}", billions(c.gpu_params()));
        assert!((billions(c.total_params()) - 671.0).abs() < 12.0);
    }

    #[test]
    fn ds2_matches_table1() {
        let c = ModelPreset::DeepSeekV2.full_config();
        assert_eq!(c.n_moe_layers(), 59);
        assert_eq!(c.n_routed_experts, 160);
        assert_eq!(c.top_k, 6);
        assert!((billions(c.cpu_params()) - 223.0).abs() < 6.0, "{}", billions(c.cpu_params()));
        assert!((billions(c.gpu_params()) - 13.0).abs() < 3.0, "{}", billions(c.gpu_params()));
        assert!((billions(c.total_params()) - 236.0).abs() < 8.0);
    }

    #[test]
    fn qw2_matches_table1() {
        let c = ModelPreset::Qwen2Moe.full_config();
        assert_eq!(c.n_moe_layers(), 28);
        assert_eq!(c.n_routed_experts, 64);
        assert_eq!(c.top_k, 8);
        assert!((billions(c.cpu_params()) - 49.0).abs() < 3.0, "{}", billions(c.cpu_params()));
        assert!((billions(c.gpu_params()) - 8.0).abs() < 3.0, "{}", billions(c.gpu_params()));
        assert!((billions(c.total_params()) - 57.0).abs() < 5.0);
    }

    #[test]
    fn active_params_follow_top_k() {
        let c = ModelPreset::DeepSeekV3.full_config();
        // 58 layers x 8 experts x 3 x 7168 x 2048 ~ 20.4B active.
        let active = billions(c.active_cpu_params_per_token());
        assert!((active - 20.4).abs() < 1.0, "{active}");
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = ModelPreset::Qwen2Moe.tiny_config();
        c.top_k = 100;
        assert!(c.validate().is_err());
        let mut c = ModelPreset::Qwen2Moe.tiny_config();
        c.n_groups = 3; // does not divide 16
        assert!(c.validate().is_err());
        let mut c = ModelPreset::Qwen2Moe.tiny_config();
        c.attention = AttentionKind::Gqa { kv_heads: 3 };
        assert!(c.validate().is_err());
        let mut c = ModelPreset::Qwen2Moe.tiny_config();
        c.head_dim = 15;
        assert!(c.validate().is_err());
        let mut c = ModelPreset::Qwen2Moe.tiny_config();
        c.n_dense_layers = c.n_layers + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serialization_round_trips() {
        for preset in ModelPreset::all() {
            for cfg in [preset.full_config(), preset.tiny_config()] {
                let mut buf = Vec::new();
                cfg.write_to(&mut buf).unwrap();
                let loaded = ModelConfig::read_from(&mut buf.as_slice()).unwrap();
                assert_eq!(cfg, loaded);
            }
        }
    }

    #[test]
    fn format_params_is_humane() {
        assert_eq!(format_params(671_000_000_000), "671B");
        assert_eq!(format_params(57_000_000_000), "57B");
        assert_eq!(format_params(14_000_000), "14M");
        assert_eq!(format_params(512), "512");
    }

    #[test]
    fn tiny_configs_are_small_enough_to_run() {
        for preset in ModelPreset::all() {
            let c = preset.tiny_config();
            assert!(c.total_params() < 20_000_000, "{}", c.name);
        }
    }
}
