//! Attention blocks: grouped-query attention and MLA-style latent
//! attention.
//!
//! In the paper's placement, attention always executes on the GPU (it
//! has the highest arithmetic intensity); `kt-core` schedules these
//! forward calls on its virtual GPU device. The math here is the real
//! computation used by the runnable scaled-down models:
//!
//! * **GQA** — `kv_heads` key/value heads shared by `n_heads` query
//!   heads; roped keys and values are cached per position.
//! * **MLA (latent)** — queries are full-rank, but keys and values are
//!   reconstructed from a per-token compressed latent `c = W_a x` of
//!   rank `kv_lora_rank`; only the latent is cached, shrinking the KV
//!   cache by `2 * n_heads * head_dim / rank`.

use kt_kernels::act::softmax_inplace;
use kt_kernels::gemm::gemm_rowwise;
use kt_kernels::schedule::ThreadPool;
use kt_tensor::{Matrix, PackedWeights, WeightDtype};
use rand::rngs::StdRng;

use crate::config::AttentionKind;
use crate::error::ModelError;
use crate::kvcache::KvStore;
#[cfg(test)]
use crate::kvcache::LayerCache;
use crate::rope::Rope;

/// Variant-specific projection weights.
#[derive(Debug, Clone)]
enum KvProj {
    Gqa {
        /// Key projection, `kv_heads * head_dim x hidden`.
        wk: PackedWeights,
        /// Value projection, `kv_heads * head_dim x hidden`.
        wv: PackedWeights,
        kv_heads: usize,
    },
    Mla {
        /// Latent down-projection, `rank x hidden`.
        wa: PackedWeights,
        /// Key up-projection, `n_heads * head_dim x rank`.
        wkb: PackedWeights,
        /// Value up-projection, `n_heads * head_dim x rank`.
        wvb: PackedWeights,
        rank: usize,
    },
}

/// Where the score loop reads K/V rows from.
///
/// Decode used to re-materialize full-head K/V matrices for the whole
/// visible context every step — O(seq) gemm work and three fresh
/// allocations per layer per token. Now GQA reads rows straight from
/// the store, and MLA decodes each position once into the store's
/// decoded-row memo; only stores without a memo (the offloaded
/// two-tier cache) still re-materialize.
enum KvRows<'a> {
    /// Rows straight from the store (GQA: cached rows are final).
    Store(&'a dyn KvStore),
    /// Decoded `key ‖ value` rows from the store's memo (MLA steady
    /// state); the `usize` is the key width `n_heads * head_dim`.
    Memo(&'a dyn KvStore, usize),
    /// Freshly materialized matrices (MLA over a memo-less store).
    Owned(Matrix, Matrix),
}

impl KvRows<'_> {
    #[inline]
    fn key(&self, pos: usize) -> &[f32] {
        match self {
            KvRows::Store(c) => c.k_row(pos),
            KvRows::Memo(c, qdim) => &c.memo_row(pos)[..*qdim],
            KvRows::Owned(keys, _) => keys.row(pos),
        }
    }

    #[inline]
    fn val(&self, pos: usize) -> &[f32] {
        match self {
            KvRows::Store(c) => c.v_row(pos),
            KvRows::Memo(c, qdim) => &c.memo_row(pos)[*qdim..],
            KvRows::Owned(_, values) => values.row(pos),
        }
    }
}

/// One attention block.
#[derive(Debug, Clone)]
pub struct Attention {
    hidden: usize,
    n_heads: usize,
    head_dim: usize,
    /// Query projection, `n_heads * head_dim x hidden`.
    wq: PackedWeights,
    /// Output projection, `hidden x n_heads * head_dim`.
    wo: PackedWeights,
    kv: KvProj,
}

impl Attention {
    /// Creates an attention block with random weights.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Config`] on invalid head/hidden settings and
    /// propagates packing errors.
    pub fn random(
        hidden: usize,
        n_heads: usize,
        head_dim: usize,
        kind: AttentionKind,
        dtype: WeightDtype,
        rng: &mut StdRng,
    ) -> Result<Self, ModelError> {
        if n_heads == 0 || head_dim == 0 || hidden == 0 {
            return Err(ModelError::config("attention dims must be nonzero"));
        }
        let qdim = n_heads * head_dim;
        let pack = |rows: usize, cols: usize, rng: &mut StdRng| -> Result<PackedWeights, ModelError> {
            let m = Matrix::random_kaiming(rows, cols, rng)?;
            Ok(PackedWeights::pack(&m, dtype)?)
        };
        let wq = pack(qdim, hidden, rng)?;
        let wo = pack(hidden, qdim, rng)?;
        let kv = match kind {
            AttentionKind::Gqa { kv_heads } => {
                if kv_heads == 0 || !n_heads.is_multiple_of(kv_heads) {
                    return Err(ModelError::config(format!(
                        "kv_heads {kv_heads} must divide n_heads {n_heads}"
                    )));
                }
                KvProj::Gqa {
                    wk: pack(kv_heads * head_dim, hidden, rng)?,
                    wv: pack(kv_heads * head_dim, hidden, rng)?,
                    kv_heads,
                }
            }
            AttentionKind::Mla { kv_lora_rank } => {
                if kv_lora_rank == 0 {
                    return Err(ModelError::config("kv_lora_rank must be nonzero"));
                }
                KvProj::Mla {
                    wa: pack(kv_lora_rank, hidden, rng)?,
                    wkb: pack(qdim, kv_lora_rank, rng)?,
                    wvb: pack(qdim, kv_lora_rank, rng)?,
                    rank: kv_lora_rank,
                }
            }
        };
        Ok(Attention {
            hidden,
            n_heads,
            head_dim,
            wq,
            wo,
            kv,
        })
    }

    /// Serializes the attention block (dims, variant, projections).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), ModelError> {
        use kt_tensor::serial::write_u64;
        write_u64(w, self.hidden as u64)?;
        write_u64(w, self.n_heads as u64)?;
        write_u64(w, self.head_dim as u64)?;
        self.wq.write_to(w)?;
        self.wo.write_to(w)?;
        match &self.kv {
            KvProj::Gqa { wk, wv, kv_heads } => {
                write_u64(w, 0)?;
                write_u64(w, *kv_heads as u64)?;
                wk.write_to(w)?;
                wv.write_to(w)?;
            }
            KvProj::Mla { wa, wkb, wvb, rank } => {
                write_u64(w, 1)?;
                write_u64(w, *rank as u64)?;
                wa.write_to(w)?;
                wkb.write_to(w)?;
                wvb.write_to(w)?;
            }
        }
        Ok(())
    }

    /// Deserializes a block written by [`Attention::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] on corrupt input.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, ModelError> {
        use kt_tensor::serial::{read_len, read_u64, MAX_ELEMS};
        let hidden = read_len(r, MAX_ELEMS)?;
        let n_heads = read_len(r, MAX_ELEMS)?;
        let head_dim = read_len(r, MAX_ELEMS)?;
        let wq = PackedWeights::read_from(r)?;
        let wo = PackedWeights::read_from(r)?;
        let kv = match read_u64(r)? {
            0 => {
                let kv_heads = read_len(r, MAX_ELEMS)?;
                if kv_heads == 0 || n_heads % kv_heads != 0 {
                    return Err(ModelError::exec("corrupt GQA kv_heads"));
                }
                KvProj::Gqa {
                    wk: PackedWeights::read_from(r)?,
                    wv: PackedWeights::read_from(r)?,
                    kv_heads,
                }
            }
            1 => {
                let rank = read_len(r, MAX_ELEMS)?;
                KvProj::Mla {
                    wa: PackedWeights::read_from(r)?,
                    wkb: PackedWeights::read_from(r)?,
                    wvb: PackedWeights::read_from(r)?,
                    rank,
                }
            }
            other => return Err(ModelError::exec(format!("unknown attention tag {other}"))),
        };
        let qdim = n_heads * head_dim;
        if wq.n() != qdim || wq.k() != hidden || wo.n() != hidden || wo.k() != qdim {
            return Err(ModelError::exec("corrupt attention projection shapes"));
        }
        match &kv {
            KvProj::Gqa { wk, wv, kv_heads } => {
                let kvdim = kv_heads * head_dim;
                if wk.n() != kvdim || wk.k() != hidden || wv.n() != kvdim || wv.k() != hidden {
                    return Err(ModelError::exec("corrupt GQA projection shapes"));
                }
            }
            KvProj::Mla { wa, wkb, wvb, rank } => {
                if wa.n() != *rank
                    || wa.k() != hidden
                    || wkb.n() != qdim
                    || wkb.k() != *rank
                    || wvb.n() != qdim
                    || wvb.k() != *rank
                {
                    return Err(ModelError::exec("corrupt MLA projection shapes"));
                }
            }
        }
        Ok(Attention {
            hidden,
            n_heads,
            head_dim,
            wq,
            wo,
            kv,
        })
    }

    /// `(k_width, v_width)` the layer cache must be built with.
    pub fn cache_spec(&self) -> (usize, usize) {
        match &self.kv {
            KvProj::Gqa { kv_heads, .. } => {
                (kv_heads * self.head_dim, kv_heads * self.head_dim)
            }
            KvProj::Mla { rank, .. } => (*rank, 0),
        }
    }

    /// Causal attention over `x` (new tokens) given the layer cache.
    ///
    /// Token `t` of `x` has absolute position `cache.len() + t` at entry;
    /// all new tokens are appended to the cache.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Exec`] on shape mismatches or cache
    /// overflow.
    pub fn forward(
        &self,
        x: &Matrix,
        cache: &mut dyn KvStore,
        rope: &Rope,
        pool: Option<&ThreadPool>,
    ) -> Result<Matrix, ModelError> {
        if x.cols() != self.hidden {
            return Err(ModelError::exec(format!(
                "attention input has {} cols, expected {}",
                x.cols(),
                self.hidden
            )));
        }
        if rope.head_dim() != self.head_dim {
            return Err(ModelError::exec("RoPE table head_dim mismatch"));
        }
        let t_new = x.rows();
        let start = cache.len();
        let qdim = self.n_heads * self.head_dim;

        // Project queries for all new tokens and rope them.
        let mut q = Matrix::zeros(t_new, qdim)?;
        gemm_rowwise(x, &self.wq, &mut q, pool)?;
        for t in 0..t_new {
            rope.apply_multihead(q.row_mut(t), start + t);
        }

        // Append new positions to the cache.
        match &self.kv {
            KvProj::Gqa { wk, wv, kv_heads } => {
                let kvdim = kv_heads * self.head_dim;
                let mut k = Matrix::zeros(t_new, kvdim)?;
                let mut v = Matrix::zeros(t_new, kvdim)?;
                gemm_rowwise(x, wk, &mut k, pool)?;
                gemm_rowwise(x, wv, &mut v, pool)?;
                for t in 0..t_new {
                    rope.apply_multihead(k.row_mut(t), start + t);
                    cache.push(k.row(t), v.row(t))?;
                }
            }
            KvProj::Mla { wa, rank, .. } => {
                let mut c = Matrix::zeros(t_new, *rank)?;
                gemm_rowwise(x, wa, &mut c, pool)?;
                for t in 0..t_new {
                    cache.push(c.row(t), &[])?;
                }
            }
        }

        // K/V rows for the whole visible context. GQA rows are cached
        // in final form; MLA reconstructs full-head K/V from cached
        // latents (the non-absorbed path) and ropes keys at their
        // original positions — but each position is decoded **once**,
        // into the store's decoded-row memo, instead of the whole
        // context being re-materialized every step. Per-position
        // results are bitwise identical either way: every projection
        // here goes through `gemm_rowwise`, so a row decoded alone
        // carries exactly the bits it would carry inside any batch —
        // the invariant that makes chunked prefill (any split of the
        // prompt into per-step chunks) bit-identical to a monolithic
        // prefill.
        let total = cache.len();
        let (rows, kv_heads_eff) = match &self.kv {
            KvProj::Gqa { kv_heads, .. } => (KvRows::Store(&*cache), *kv_heads),
            KvProj::Mla { wkb, wvb, rank, .. } => {
                if cache.memo_ensure(2 * qdim) {
                    let from = cache.memo_len();
                    if from < total {
                        let missing = total - from;
                        let mut lat = Matrix::zeros(missing, *rank)?;
                        for i in 0..missing {
                            lat.row_mut(i).copy_from_slice(cache.k_row(from + i));
                        }
                        let mut dk = Matrix::zeros(missing, qdim)?;
                        let mut dv = Matrix::zeros(missing, qdim)?;
                        gemm_rowwise(&lat, wkb, &mut dk, pool)?;
                        gemm_rowwise(&lat, wvb, &mut dv, pool)?;
                        let mut row = vec![0.0f32; 2 * qdim];
                        for i in 0..missing {
                            rope.apply_multihead(dk.row_mut(i), from + i);
                            row[..qdim].copy_from_slice(dk.row(i));
                            row[qdim..].copy_from_slice(dv.row(i));
                            cache.memo_push(&row)?;
                        }
                    }
                    (KvRows::Memo(&*cache, qdim), self.n_heads)
                } else {
                    let mut lat = Matrix::zeros(total, *rank)?;
                    for pos in 0..total {
                        lat.row_mut(pos).copy_from_slice(cache.k_row(pos));
                    }
                    let mut keys = Matrix::zeros(total, qdim)?;
                    let mut values = Matrix::zeros(total, qdim)?;
                    gemm_rowwise(&lat, wkb, &mut keys, pool)?;
                    gemm_rowwise(&lat, wvb, &mut values, pool)?;
                    for pos in 0..total {
                        rope.apply_multihead(keys.row_mut(pos), pos);
                    }
                    (KvRows::Owned(keys, values), self.n_heads)
                }
            }
        };

        // Scaled dot-product attention with causal masking. The score
        // buffer is sized once for the longest visible prefix and
        // sliced per token.
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let group = self.n_heads / kv_heads_eff;
        let mut ctx = Matrix::zeros(t_new, qdim)?;
        let mut scores_buf = vec![0.0f32; total];
        // Resolve every visible position's K/V slices once, up front:
        // the scores loop touches each position `n_heads` times per
        // query row, and a per-touch lookup pays virtual dispatch plus
        // (on the paged store) a page-table walk every time. The slice
        // tables make that a flat index regardless of the KV backend —
        // arithmetic order is untouched, so outputs stay bitwise
        // identical.
        let krows: Vec<&[f32]> = (0..total).map(|pos| rows.key(pos)).collect();
        let vrows: Vec<&[f32]> = (0..total).map(|pos| rows.val(pos)).collect();
        for t in 0..t_new {
            let visible = start + t + 1;
            let qrow = q.row(t);
            let scores = &mut scores_buf[..visible];
            for h in 0..self.n_heads {
                let kvh = h / group;
                let qh = &qrow[h * self.head_dim..(h + 1) * self.head_dim];
                for (pos, s) in scores.iter_mut().enumerate() {
                    let kh = &krows[pos][kvh * self.head_dim..(kvh + 1) * self.head_dim];
                    *s = qh.iter().zip(kh).map(|(a, b)| a * b).sum::<f32>() * scale;
                }
                softmax_inplace(scores);
                let out = &mut ctx.row_mut(t)[h * self.head_dim..(h + 1) * self.head_dim];
                for (pos, &w) in scores.iter().enumerate() {
                    let vh = &vrows[pos][kvh * self.head_dim..(kvh + 1) * self.head_dim];
                    for (o, &vv) in out.iter_mut().zip(vh) {
                        *o += w * vv;
                    }
                }
            }
        }

        // Output projection.
        let mut out = Matrix::zeros(t_new, self.hidden)?;
        gemm_rowwise(&ctx, &self.wo, &mut out, pool)?;
        Ok(out)
    }

    /// Number of query heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_tensor::rng::seeded;

    fn rope() -> Rope {
        Rope::new(16, 128, 10_000.0)
    }

    fn gqa_attn(seed: u64) -> Attention {
        let mut rng = seeded(seed);
        Attention::random(
            32,
            4,
            16,
            AttentionKind::Gqa { kv_heads: 2 },
            WeightDtype::F32,
            &mut rng,
        )
        .unwrap()
    }

    fn mla_attn(seed: u64) -> Attention {
        let mut rng = seeded(seed);
        Attention::random(
            32,
            4,
            16,
            AttentionKind::Mla { kv_lora_rank: 8 },
            WeightDtype::F32,
            &mut rng,
        )
        .unwrap()
    }

    fn cache_for(attn: &Attention) -> LayerCache {
        let (kw, vw) = attn.cache_spec();
        LayerCache::new(kw, vw, 128)
    }

    #[test]
    fn invalid_construction_is_rejected() {
        let mut rng = seeded(1);
        assert!(Attention::random(
            0,
            4,
            16,
            AttentionKind::Gqa { kv_heads: 2 },
            WeightDtype::F32,
            &mut rng
        )
        .is_err());
        assert!(Attention::random(
            32,
            4,
            16,
            AttentionKind::Gqa { kv_heads: 3 },
            WeightDtype::F32,
            &mut rng
        )
        .is_err());
        assert!(Attention::random(
            32,
            4,
            16,
            AttentionKind::Mla { kv_lora_rank: 0 },
            WeightDtype::F32,
            &mut rng
        )
        .is_err());
    }

    /// The core incremental-decoding invariant: prefilling all tokens at
    /// once must produce the same final-token output as prefilling a
    /// prefix and decoding the rest one token at a time.
    fn check_incremental(attn: &Attention) {
        let mut rng = seeded(42);
        let x = Matrix::random_uniform(6, 32, 1.0, &mut rng).unwrap();
        let rope = rope();

        let mut full_cache = cache_for(attn);
        let full = attn.forward(&x, &mut full_cache, &rope, None).unwrap();

        let mut inc_cache = cache_for(attn);
        let prefix = Matrix::from_rows(3, 32, &x.as_slice()[..3 * 32]).unwrap();
        let _ = attn.forward(&prefix, &mut inc_cache, &rope, None).unwrap();
        let mut last = None;
        for t in 3..6 {
            let one = Matrix::from_rows(1, 32, x.row(t)).unwrap();
            last = Some(attn.forward(&one, &mut inc_cache, &rope, None).unwrap());
        }
        let last = last.unwrap();
        for (a, b) in full.row(5).iter().zip(last.row(0)) {
            assert!((a - b).abs() < 1e-4, "full={a} inc={b}");
        }
    }

    #[test]
    fn gqa_incremental_matches_prefill() {
        check_incremental(&gqa_attn(7));
    }

    #[test]
    fn mla_incremental_matches_prefill() {
        check_incremental(&mla_attn(8));
    }

    #[test]
    fn causality_holds() {
        // Changing a later token must not affect an earlier token's
        // output.
        let attn = gqa_attn(9);
        let mut rng = seeded(10);
        let x1 = Matrix::random_uniform(4, 32, 1.0, &mut rng).unwrap();
        let mut x2 = x1.clone();
        for v in x2.row_mut(3) {
            *v += 1.0;
        }
        let rope = rope();
        let mut c1 = cache_for(&attn);
        let mut c2 = cache_for(&attn);
        let y1 = attn.forward(&x1, &mut c1, &rope, None).unwrap();
        let y2 = attn.forward(&x2, &mut c2, &rope, None).unwrap();
        for t in 0..3 {
            assert_eq!(y1.row(t), y2.row(t), "token {t} saw the future");
        }
        assert_ne!(y1.row(3), y2.row(3));
    }

    #[test]
    fn mla_cache_is_smaller_than_gqa() {
        let gqa = gqa_attn(11);
        let mla = mla_attn(12);
        let mut rng = seeded(13);
        let x = Matrix::random_uniform(8, 32, 1.0, &mut rng).unwrap();
        let rope = rope();
        let mut cg = cache_for(&gqa);
        let mut cm = cache_for(&mla);
        gqa.forward(&x, &mut cg, &rope, None).unwrap();
        mla.forward(&x, &mut cm, &rope, None).unwrap();
        // GQA: 2 sides x 2 kv_heads x 16 dims; MLA: rank 8 latent only.
        assert!(cm.bytes() < cg.bytes() / 4);
    }

    #[test]
    fn position_matters() {
        // The same token content at different positions attends
        // differently (RoPE), so outputs differ.
        let attn = gqa_attn(14);
        let mut rng = seeded(15);
        let row: Vec<f32> = {
            let m = Matrix::random_uniform(1, 32, 1.0, &mut rng).unwrap();
            m.row(0).to_vec()
        };
        let two = Matrix::from_rows(2, 32, &[row.clone(), row.clone()].concat()).unwrap();
        let rope = rope();
        let mut c = cache_for(&attn);
        let y = attn.forward(&two, &mut c, &rope, None).unwrap();
        assert_ne!(y.row(0), y.row(1));
    }

    #[test]
    fn parallel_pool_matches_serial() {
        let attn = mla_attn(16);
        let mut rng = seeded(17);
        let x = Matrix::random_uniform(5, 32, 1.0, &mut rng).unwrap();
        let rope = rope();
        let pool = kt_kernels::ThreadPool::new(3).unwrap();
        let mut c1 = cache_for(&attn);
        let mut c2 = cache_for(&attn);
        let y1 = attn.forward(&x, &mut c1, &rope, None).unwrap();
        let y2 = attn.forward(&x, &mut c2, &rope, Some(&pool)).unwrap();
        let err = y1.relative_error(&y2);
        assert!(err < 1e-5, "err={err}");
    }

    #[test]
    fn offloaded_cache_attends_identically() {
        // KV-cache offloading is pure placement: attention over a
        // two-tier cache must equal attention over the flat cache.
        use crate::kvcache::OffloadedLayerCache;
        let attn = gqa_attn(21);
        let (kw, vw) = attn.cache_spec();
        let mut flat = LayerCache::new(kw, vw, 128);
        let mut tiered = OffloadedLayerCache::new(kw, vw, 3, 128).unwrap();
        let mut rng = seeded(22);
        let rope = rope();
        let prompt = Matrix::random_uniform(6, 32, 1.0, &mut rng).unwrap();
        let a = attn.forward(&prompt, &mut flat, &rope, None).unwrap();
        let b = attn.forward(&prompt, &mut tiered, &rope, None).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        // Decode steps keep agreeing while evictions happen.
        for t in 0..4 {
            let one = Matrix::random_uniform(1, 32, 1.0, &mut rng).unwrap();
            let ya = attn.forward(&one, &mut flat, &rope, None).unwrap();
            let yb = attn.forward(&one, &mut tiered, &rope, None).unwrap();
            assert_eq!(ya.as_slice(), yb.as_slice(), "step {t}");
        }
        assert!(tiered.evicted_bytes() > 0, "evictions must have happened");
    }

    #[test]
    fn mla_memo_matches_full_rematerialization() {
        // The offloaded cache keeps no decoded-row memo, so it takes
        // the full re-materialization path; the flat cache decodes
        // each position once into its memo. The two must agree
        // **bitwise** — per-row decode carries exactly the bits of the
        // batched decode (independent row accumulators, single
        // k-block).
        use crate::kvcache::OffloadedLayerCache;
        let attn = mla_attn(41);
        let (kw, vw) = attn.cache_spec();
        let mut flat = LayerCache::new(kw, vw, 128);
        let mut tiered = OffloadedLayerCache::new(kw, vw, 64, 128).unwrap();
        let mut rng = seeded(42);
        let rope = rope();
        let prompt = Matrix::random_uniform(6, 32, 1.0, &mut rng).unwrap();
        let a = attn.forward(&prompt, &mut flat, &rope, None).unwrap();
        let b = attn.forward(&prompt, &mut tiered, &rope, None).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        for t in 0..5 {
            let one = Matrix::random_uniform(1, 32, 1.0, &mut rng).unwrap();
            let ya = attn.forward(&one, &mut flat, &rope, None).unwrap();
            let yb = attn.forward(&one, &mut tiered, &rope, None).unwrap();
            assert_eq!(ya.as_slice(), yb.as_slice(), "step {t}");
        }
        assert!(flat.memo_bytes() > 0, "flat cache must have used its memo");
    }

    #[test]
    fn mla_memo_rebuild_after_drop_is_bit_identical() {
        // A cache whose memo was dropped (placement changes discard
        // scratch) is healed in one batched decode that must produce
        // exactly the bits the incremental per-step decode produced.
        let attn = mla_attn(43);
        let mut rng = seeded(44);
        let rope = rope();
        let x = Matrix::random_uniform(5, 32, 1.0, &mut rng).unwrap();
        let mut c1 = cache_for(&attn);
        attn.forward(&x, &mut c1, &rope, None).unwrap();
        let mut c2 = c1.clone();
        // Reconfiguring the width clears the decoded rows; the next
        // forward rebuilds all positions in one batch.
        c2.memo_ensure(1);
        let step = Matrix::random_uniform(1, 32, 1.0, &mut rng).unwrap();
        let y1 = attn.forward(&step, &mut c1, &rope, None).unwrap();
        let y2 = attn.forward(&step, &mut c2, &rope, None).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn serialization_round_trips_both_variants() {
        for attn in [gqa_attn(31), mla_attn(32)] {
            let mut buf = Vec::new();
            attn.write_to(&mut buf).unwrap();
            let loaded = Attention::read_from(&mut buf.as_slice()).unwrap();
            let mut rng = seeded(33);
            let x = Matrix::random_uniform(3, 32, 1.0, &mut rng).unwrap();
            let rope = rope();
            let mut c1 = cache_for(&attn);
            let mut c2 = cache_for(&loaded);
            let a = attn.forward(&x, &mut c1, &rope, None).unwrap();
            let b = loaded.forward(&x, &mut c2, &rope, None).unwrap();
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let attn = gqa_attn(18);
        let rope = rope();
        let mut c = cache_for(&attn);
        let bad = Matrix::zeros(2, 16).unwrap();
        assert!(attn.forward(&bad, &mut c, &rope, None).is_err());
        let bad_rope = Rope::new(8, 64, 10_000.0);
        let ok = Matrix::zeros(2, 32).unwrap();
        assert!(attn.forward(&ok, &mut c, &bad_rope, None).is_err());
    }
}
