//! Little-endian binary serialization primitives.
//!
//! Checkpointing support for the whole stack (packed weights, models,
//! engines) without external serialization crates. All integers are
//! little-endian `u64`; float arrays are raw `f32` bytes.

use std::io::{Read, Write};

use crate::error::TensorError;

/// Converts an I/O failure into a [`TensorError::Io`].
pub fn io_err(e: std::io::Error) -> TensorError {
    TensorError::Io {
        what: e.to_string(),
    }
}

/// Writes one `u64`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_u64(w: &mut impl Write, v: u64) -> Result<(), TensorError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

/// Reads one `u64`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn read_u64(r: &mut impl Read) -> Result<u64, TensorError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a `u64` and checks it fits a sane allocation bound.
///
/// # Errors
///
/// Returns [`TensorError::Length`] when the value exceeds `max`.
pub fn read_len(r: &mut impl Read, max: usize) -> Result<usize, TensorError> {
    let v = read_u64(r)?;
    if v as usize > max {
        return Err(TensorError::Length {
            expected: max,
            actual: v as usize,
        });
    }
    Ok(v as usize)
}

/// Writes a length-prefixed byte slice.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_bytes(w: &mut impl Write, data: &[u8]) -> Result<(), TensorError> {
    write_u64(w, data.len() as u64)?;
    w.write_all(data).map_err(io_err)
}

/// Reads a length-prefixed byte vector (length capped at `max`).
///
/// # Errors
///
/// Propagates I/O failures and length violations.
pub fn read_bytes(r: &mut impl Read, max: usize) -> Result<Vec<u8>, TensorError> {
    let n = read_len(r, max)?;
    let mut v = vec![0u8; n];
    r.read_exact(&mut v).map_err(io_err)?;
    Ok(v)
}

/// Writes a length-prefixed `f32` slice.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_f32s(w: &mut impl Write, data: &[f32]) -> Result<(), TensorError> {
    write_u64(w, data.len() as u64)?;
    for &v in data {
        w.write_all(&v.to_le_bytes()).map_err(io_err)?;
    }
    Ok(())
}

/// Reads a length-prefixed `f32` vector (length capped at `max`).
///
/// # Errors
///
/// Propagates I/O failures and length violations.
pub fn read_f32s(r: &mut impl Read, max: usize) -> Result<Vec<f32>, TensorError> {
    let n = read_len(r, max)?;
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes).map_err(io_err)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

/// Writes a magic tag.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_magic(w: &mut impl Write, magic: &[u8]) -> Result<(), TensorError> {
    w.write_all(magic).map_err(io_err)
}

/// Reads and verifies a magic tag.
///
/// # Errors
///
/// Returns [`TensorError::Io`] on mismatch.
pub fn expect_magic(r: &mut impl Read, magic: &[u8]) -> Result<(), TensorError> {
    let mut got = vec![0u8; magic.len()];
    r.read_exact(&mut got).map_err(io_err)?;
    if got != magic {
        return Err(TensorError::Io {
            what: format!("bad magic: expected {magic:?}"),
        });
    }
    Ok(())
}

/// Maximum element count accepted for any single serialized array
/// (1 Gi elements) — a corruption guard, far above any test model.
pub const MAX_ELEMS: usize = 1 << 30;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0xDEAD_BEEF_1234).unwrap();
        assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), 0xDEAD_BEEF_1234);
    }

    #[test]
    fn f32s_round_trip() {
        let data = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        let mut buf = Vec::new();
        write_f32s(&mut buf, &data).unwrap();
        assert_eq!(read_f32s(&mut buf.as_slice(), MAX_ELEMS).unwrap(), data);
    }

    #[test]
    fn bytes_round_trip_and_lengths_are_capped() {
        let data = vec![7u8; 100];
        let mut buf = Vec::new();
        write_bytes(&mut buf, &data).unwrap();
        assert_eq!(read_bytes(&mut buf.as_slice(), 1000).unwrap(), data);
        assert!(read_bytes(&mut buf.as_slice(), 10).is_err());
    }

    #[test]
    fn magic_is_verified() {
        let mut buf = Vec::new();
        write_magic(&mut buf, b"KTPW").unwrap();
        assert!(expect_magic(&mut buf.as_slice(), b"KTPW").is_ok());
        assert!(expect_magic(&mut buf.as_slice(), b"XXXX").is_err());
        assert!(expect_magic(&mut b"KTXX".as_slice(), b"KTPW").is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        write_f32s(&mut buf, &[1.0, 2.0, 3.0]).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_f32s(&mut buf.as_slice(), MAX_ELEMS).is_err());
    }
}
