//! Grow-only scratch arena for decode-step temporaries.
//!
//! The decode hot path needs the same family of scratch shapes on every
//! step (per-expert gather/output buffers, normed activations, logits).
//! `ScratchArena` keeps a pool of retired [`Matrix`] buffers and hands
//! them back out by shape: a checkout reuses the smallest free buffer
//! whose capacity fits (grow-only, so a buffer only ever gets bigger),
//! and allocates a fresh one only when nothing fits. After warmup the
//! working set stabilizes and steady-state decode performs zero heap
//! allocations in the paths that draw from the arena — observable via
//! [`ArenaStats`].
//!
//! Checkouts always zero the live prefix. That costs a memset but buys
//! two properties the engine relies on: checked-out buffers behave
//! exactly like `Matrix::zeros` (so workspace-reusing forwards are
//! bit-identical to fresh-allocation forwards), and stale data from a
//! previous step — including a step that failed partway through — can
//! never leak into the next one.

use crate::error::TensorError;
use crate::matrix::Matrix;
use std::sync::OnceLock;

/// Process-wide hook invoked whenever any arena performs a fresh
/// backing allocation (argument: bytes obtained from the allocator).
/// Lets an observability layer surface arena allocations as events
/// without kt-tensor depending on it.
static ALLOC_HOOK: OnceLock<fn(u64)> = OnceLock::new();

/// Installs the fresh-allocation hook. First caller wins; later calls
/// are ignored. The hook runs inline on the allocating thread and must
/// be cheap and non-reentrant into the arena.
pub fn set_arena_alloc_hook(hook: fn(u64)) {
    let _ = ALLOC_HOOK.set(hook);
}

/// Allocation/reuse counters for a [`ScratchArena`].
///
/// All byte counts refer to live payload (`rows * cols * 4`), except
/// `bytes_allocated` and `high_water_bytes` which track backing-buffer
/// capacity actually held from the system allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Number of `checkout` calls.
    pub checkouts: u64,
    /// Checkouts that had to allocate a fresh backing buffer.
    pub allocations: u64,
    /// Total live bytes requested across all checkouts.
    pub bytes_requested: u64,
    /// Requested bytes served from recycled buffers (no allocation).
    pub bytes_served: u64,
    /// Total backing bytes obtained from the system allocator.
    pub bytes_allocated: u64,
    /// Peak backing bytes held (free + outstanding) at any point.
    pub high_water_bytes: u64,
}

impl ArenaStats {
    /// Folds another arena's counters into this one. Sums everything,
    /// including `high_water_bytes`: distinct arenas are distinct pools,
    /// so the combined footprint is the sum of their peaks.
    pub fn merge(&mut self, other: &ArenaStats) {
        self.checkouts += other.checkouts;
        self.allocations += other.allocations;
        self.bytes_requested += other.bytes_requested;
        self.bytes_served += other.bytes_served;
        self.bytes_allocated += other.bytes_allocated;
        self.high_water_bytes += other.high_water_bytes;
    }
}

/// A grow-only pool of recycled [`Matrix`] scratch buffers.
///
/// Ownership protocol: `checkout` transfers a zeroed matrix to the
/// caller; `restore` takes any matrix back into the pool (it need not
/// have originated here — foreign buffers simply join the pool). There
/// is no RAII guard on purpose: checked-out matrices routinely cross
/// thread and closure boundaries in the engine, and a plain `Matrix`
/// stays `Send` without lifetime plumbing. A buffer that is never
/// restored is merely an allocation, never unsoundness.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Matrix>,
    free_bytes: u64,
    outstanding_bytes: u64,
    stats: ArenaStats,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zeroed `rows x cols` matrix, reusing the best-fit
    /// free buffer when one is large enough.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] when either dimension is zero.
    pub fn checkout(&mut self, rows: usize, cols: usize) -> Result<Matrix, TensorError> {
        let need = rows
            .checked_mul(cols)
            .ok_or_else(|| TensorError::shape("scratch checkout size overflow".to_string()))?;
        let need_bytes = (need * std::mem::size_of::<f32>()) as u64;
        self.stats.checkouts += 1;
        self.stats.bytes_requested += need_bytes;

        // Best fit: smallest free buffer with sufficient capacity.
        let mut best: Option<(usize, usize)> = None;
        for (i, m) in self.free.iter().enumerate() {
            let cap = m.capacity();
            if cap >= need && best.is_none_or(|(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        let m = match best {
            Some((i, _)) => {
                let mut m = self.free.swap_remove(i);
                self.free_bytes -= Self::backing_bytes(&m);
                m.reshape_zeroed(rows, cols)?;
                self.stats.bytes_served += need_bytes;
                m
            }
            None => {
                let m = Matrix::zeros(rows, cols)?;
                self.stats.allocations += 1;
                self.stats.bytes_allocated += need_bytes;
                if let Some(hook) = ALLOC_HOOK.get() {
                    hook(need_bytes);
                }
                m
            }
        };
        self.outstanding_bytes += Self::backing_bytes(&m);
        let held = self.free_bytes + self.outstanding_bytes;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(held);
        Ok(m)
    }

    /// Returns a matrix to the pool for reuse. Accepts foreign buffers;
    /// the payload is not zeroed until the next checkout.
    pub fn restore(&mut self, m: Matrix) {
        let bytes = Self::backing_bytes(&m);
        // Foreign buffers were never counted as outstanding.
        self.outstanding_bytes = self.outstanding_bytes.saturating_sub(bytes);
        self.free_bytes += bytes;
        let held = self.free_bytes + self.outstanding_bytes;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(held);
        self.free.push(m);
    }

    /// Snapshot of the allocation/reuse counters.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Number of free (restorable) buffers currently pooled.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Fills every pooled buffer with NaN. Test hook: combined with the
    /// zero-on-checkout guarantee, any leak of recycled contents into a
    /// computation becomes loudly visible.
    pub fn poison_for_test(&mut self) {
        for m in &mut self.free {
            m.as_mut_slice().fill(f32::NAN);
        }
    }

    fn backing_bytes(m: &Matrix) -> u64 {
        (m.capacity() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_allocates_then_reuses() {
        let mut a = ScratchArena::new();
        let m = a.checkout(4, 8).unwrap();
        assert_eq!(a.stats().allocations, 1);
        a.restore(m);
        // Same shape: served from the pool, no new allocation.
        let m = a.checkout(4, 8).unwrap();
        assert_eq!(a.stats().allocations, 1);
        assert_eq!(a.stats().bytes_served, 4 * 8 * 4);
        a.restore(m);
        // Smaller shape reuses the same backing buffer.
        let m = a.checkout(2, 3).unwrap();
        assert_eq!(a.stats().allocations, 1);
        assert_eq!(m.capacity(), 32);
        assert_eq!(m.as_slice(), &[0.0; 6]);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut a = ScratchArena::new();
        let big = a.checkout(16, 16).unwrap();
        let small = a.checkout(2, 2).unwrap();
        a.restore(big);
        a.restore(small);
        let m = a.checkout(2, 2).unwrap();
        assert_eq!(m.capacity(), 4, "should pick the small buffer");
        assert_eq!(a.free_buffers(), 1);
    }

    #[test]
    fn checkout_zeroes_poisoned_buffers() {
        let mut a = ScratchArena::new();
        let m = a.checkout(3, 3).unwrap();
        a.restore(m);
        a.poison_for_test();
        let m = a.checkout(3, 3).unwrap();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn high_water_tracks_peak_footprint() {
        let mut a = ScratchArena::new();
        let m1 = a.checkout(4, 4).unwrap();
        let m2 = a.checkout(4, 4).unwrap();
        assert_eq!(a.stats().high_water_bytes, 2 * 16 * 4);
        a.restore(m1);
        a.restore(m2);
        // Steady-state reuse does not move the high-water mark.
        let m = a.checkout(4, 4).unwrap();
        a.restore(m);
        assert_eq!(a.stats().high_water_bytes, 2 * 16 * 4);
    }

    #[test]
    fn foreign_restore_is_accepted() {
        let mut a = ScratchArena::new();
        a.restore(Matrix::zeros(2, 2).unwrap());
        let m = a.checkout(2, 2).unwrap();
        assert_eq!(a.stats().allocations, 0);
        assert_eq!(m.as_slice(), &[0.0; 4]);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ArenaStats {
            checkouts: 1,
            allocations: 1,
            bytes_requested: 10,
            bytes_served: 0,
            bytes_allocated: 10,
            high_water_bytes: 10,
        };
        let b = ArenaStats {
            checkouts: 2,
            allocations: 0,
            bytes_requested: 8,
            bytes_served: 8,
            bytes_allocated: 0,
            high_water_bytes: 16,
        };
        a.merge(&b);
        assert_eq!(a.checkouts, 3);
        assert_eq!(a.high_water_bytes, 26);
        assert_eq!(a.bytes_served, 8);
    }
}
