//! Per-role weight precision policy for quantized serving.
//!
//! The paper's deployments quantize the expert weights (which dominate
//! both the parameter count and the decode-time memory traffic) while
//! keeping attention and the LM head in full precision. A
//! [`PrecisionPolicy`] captures that per-role choice explicitly: one
//! [`WeightDtype`] per weight role (attention projections, dense FFN,
//! shared experts, routed experts, LM head), replacing a single global
//! "expert dtype" knob. The policy is validated up front against the
//! model dimensions so group-size/reduction-dim mismatches fail at
//! configuration time rather than deep inside weight packing.

use crate::error::TensorError;
use crate::tile::WeightDtype;

/// Weight dtype per model weight role.
///
/// The defaults are full precision everywhere; [`PrecisionPolicy::experts`]
/// reproduces the historical single-knob behavior (quantize shared +
/// routed experts, keep the rest F32) and
/// [`PrecisionPolicy::quantized_serving`] is the serving preset from the
/// paper's hybrid deployments: routed experts int4, shared experts and
/// dense FFN int8, attention and LM head full precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionPolicy {
    /// Attention projection weights (q/k/v/output, MLA latents).
    pub attention: WeightDtype,
    /// Dense (non-MoE) FFN layers.
    pub dense: WeightDtype,
    /// Always-on shared experts.
    pub shared: WeightDtype,
    /// Routed (top-k gated) experts — the decode bandwidth hot spot.
    pub routed: WeightDtype,
    /// LM head projection.
    pub lm_head: WeightDtype,
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        Self::all(WeightDtype::F32)
    }
}

impl PrecisionPolicy {
    /// Uses `dtype` for every weight role.
    pub fn all(dtype: WeightDtype) -> Self {
        PrecisionPolicy {
            attention: dtype,
            dense: dtype,
            shared: dtype,
            routed: dtype,
            lm_head: dtype,
        }
    }

    /// Quantizes shared + routed experts to `dtype`, keeping attention,
    /// dense FFN and the LM head in F32 — the semantics of the old
    /// global `expert_dtype` knob.
    pub fn experts(dtype: WeightDtype) -> Self {
        PrecisionPolicy {
            shared: dtype,
            routed: dtype,
            ..Self::default()
        }
    }

    /// The quantized-serving preset: routed experts int4, shared experts
    /// and dense FFN int8 (both with `group`-wise scales), attention and
    /// LM head full precision.
    pub fn quantized_serving(group: usize) -> Self {
        PrecisionPolicy {
            dense: WeightDtype::Int8 { group },
            shared: WeightDtype::Int8 { group },
            routed: WeightDtype::Int4 { group },
            ..Self::default()
        }
    }

    /// The widest-footprint role dtype used for expert weights (routed
    /// wins ties; shared only matters when routed is full precision).
    pub fn expert_dtypes(&self) -> [WeightDtype; 2] {
        [self.routed, self.shared]
    }

    /// True when any role is stored quantized (Int8/Int4).
    pub fn any_quantized(&self) -> bool {
        [self.attention, self.dense, self.shared, self.routed, self.lm_head]
            .iter()
            .any(|d| d.group().is_some())
    }

    /// Validates every role's dtype against the reduction dimensions its
    /// packed matrices will see: `hidden` feeds all roles, `dense_inter`
    /// the dense FFN down-projection, `moe_inter` the expert
    /// down-projections.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Quant`] when a group size is zero, odd for
    /// Int4, or does not divide a reduction dimension the role packs.
    pub fn validate(
        &self,
        hidden: usize,
        dense_inter: usize,
        moe_inter: usize,
    ) -> Result<(), TensorError> {
        let check = |role: &str, dtype: WeightDtype, ks: &[usize]| -> Result<(), TensorError> {
            let Some(group) = dtype.group() else {
                return Ok(());
            };
            if group == 0 {
                return Err(TensorError::quant(format!("{role}: group must be nonzero")));
            }
            if matches!(dtype, WeightDtype::Int4 { .. }) && group % 2 != 0 {
                return Err(TensorError::quant(format!(
                    "{role}: Int4 group must be even, got {group}"
                )));
            }
            for &k in ks {
                if k % group != 0 {
                    return Err(TensorError::quant(format!(
                        "{role}: group {group} does not divide reduction dim {k}"
                    )));
                }
            }
            Ok(())
        };
        check("attention", self.attention, &[hidden])?;
        check("dense", self.dense, &[hidden, dense_inter])?;
        check("shared", self.shared, &[hidden, moe_inter])?;
        check("routed", self.routed, &[hidden, moe_inter])?;
        check("lm_head", self.lm_head, &[hidden])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_precision() {
        let p = PrecisionPolicy::default();
        assert_eq!(p.attention, WeightDtype::F32);
        assert_eq!(p.routed, WeightDtype::F32);
        assert!(!p.any_quantized());
    }

    #[test]
    fn experts_preset_matches_old_expert_dtype_semantics() {
        let p = PrecisionPolicy::experts(WeightDtype::Int8 { group: 16 });
        assert_eq!(p.shared, WeightDtype::Int8 { group: 16 });
        assert_eq!(p.routed, WeightDtype::Int8 { group: 16 });
        assert_eq!(p.attention, WeightDtype::F32);
        assert_eq!(p.dense, WeightDtype::F32);
        assert_eq!(p.lm_head, WeightDtype::F32);
        assert!(p.any_quantized());
    }

    #[test]
    fn quantized_serving_preset() {
        let p = PrecisionPolicy::quantized_serving(32);
        assert_eq!(p.routed, WeightDtype::Int4 { group: 32 });
        assert_eq!(p.shared, WeightDtype::Int8 { group: 32 });
        assert_eq!(p.dense, WeightDtype::Int8 { group: 32 });
        assert_eq!(p.attention, WeightDtype::F32);
        assert_eq!(p.lm_head, WeightDtype::F32);
    }

    #[test]
    fn validate_accepts_divisible_groups() {
        let p = PrecisionPolicy::quantized_serving(16);
        assert!(p.validate(64, 128, 96).is_ok());
    }

    #[test]
    fn validate_rejects_group_not_dividing_hidden() {
        let p = PrecisionPolicy::experts(WeightDtype::Int4 { group: 16 });
        let err = p.validate(24, 48, 48).unwrap_err();
        assert!(err.to_string().contains("does not divide"), "{err}");
    }

    #[test]
    fn validate_rejects_odd_int4_group() {
        let p = PrecisionPolicy::experts(WeightDtype::Int4 { group: 3 });
        assert!(p.validate(24, 48, 48).is_err());
    }

    #[test]
    fn validate_checks_moe_inter_for_routed_only_roles() {
        let p = PrecisionPolicy {
            routed: WeightDtype::Int8 { group: 32 },
            ..Default::default()
        };
        // hidden divisible, moe_inter not.
        assert!(p.validate(64, 48, 40).is_err());
        assert!(p.validate(64, 48, 64).is_ok());
    }
}
