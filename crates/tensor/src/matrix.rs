//! Row-major `f32` matrices for activations and reference math.
//!
//! Activations in the paper's pipeline stay in floating point (they live in
//! the shared L3 cache during the fused MoE computation, §3.2 step ①); only
//! weights are re-packed/quantized. `Matrix` is therefore a plain row-major
//! buffer with just enough linear-algebra helpers for reference kernels and
//! model code.

use crate::alloc::AlignedBuf;
use crate::error::TensorError;
use crate::rng;
use rand::rngs::StdRng;

/// A dense row-major `f32` matrix with cache-line-aligned storage.
///
/// The backing buffer may hold **more** elements than `rows * cols`:
/// matrices recycled through a [`crate::workspace::ScratchArena`] keep
/// their largest-ever allocation and are reshaped in place. All
/// accessors ([`Matrix::as_slice`], rows, element getters) expose only
/// the live `rows * cols` prefix, so excess capacity is invisible to
/// callers.
pub struct Matrix {
    data: AlignedBuf<f32>,
    rows: usize,
    cols: usize,
}

impl Clone for Matrix {
    fn clone(&self) -> Self {
        // Clone only the live prefix: recycled matrices may carry spare
        // capacity that a copy has no reason to inherit.
        Matrix {
            data: AlignedBuf::from_slice(self.as_slice()),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] when either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, TensorError> {
        if rows == 0 || cols == 0 {
            return Err(TensorError::shape(format!(
                "matrix dimensions must be nonzero, got {rows}x{cols}"
            )));
        }
        Ok(Matrix {
            data: AlignedBuf::zeroed(rows * cols),
            rows,
            cols,
        })
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Length`] when `data.len() != rows * cols`,
    /// or [`TensorError::Shape`] for zero dimensions.
    pub fn from_rows(rows: usize, cols: usize, data: &[f32]) -> Result<Self, TensorError> {
        let mut m = Self::zeros(rows, cols)?;
        if data.len() != rows * cols {
            return Err(TensorError::Length {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        m.data.as_mut_slice().copy_from_slice(data);
        Ok(m)
    }

    /// Creates a matrix with uniform random entries in `[-scale, scale)`.
    pub fn random_uniform(
        rows: usize,
        cols: usize,
        scale: f32,
        rng: &mut StdRng,
    ) -> Result<Self, TensorError> {
        let mut m = Self::zeros(rows, cols)?;
        rng::fill_uniform(rng, m.data.as_mut_slice(), scale);
        Ok(m)
    }

    /// Creates a matrix with Kaiming-initialized entries for `cols` fan-in.
    pub fn random_kaiming(rows: usize, cols: usize, rng: &mut StdRng) -> Result<Self, TensorError> {
        let mut m = Self::zeros(rows, cols)?;
        let std = rng::kaiming_std(cols);
        rng::fill_normal(rng, m.data.as_mut_slice(), std);
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` (programming error, as with slice indexing).
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// The live row-major slice (`rows * cols` elements).
    pub fn as_slice(&self) -> &[f32] {
        &self.data[..self.rows * self.cols]
    }

    /// The live mutable row-major slice (`rows * cols` elements).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        let n = self.rows * self.cols;
        &mut self.data[..n]
    }

    /// Total element capacity of the backing buffer. May exceed
    /// `rows() * cols()` for matrices recycled through a scratch arena.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Reshapes in place to `rows x cols` and zeroes the live prefix.
    ///
    /// Grow-only: the backing buffer is reallocated only when its
    /// capacity is insufficient; otherwise it is reused, so steady-state
    /// callers hit no allocator traffic. Returns `true` when a fresh
    /// allocation was required.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] when either dimension is zero.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) -> Result<bool, TensorError> {
        if rows == 0 || cols == 0 {
            return Err(TensorError::shape(format!(
                "matrix dimensions must be nonzero, got {rows}x{cols}"
            )));
        }
        let need = rows * cols;
        let grew = need > self.data.len();
        if grew {
            self.data = AlignedBuf::zeroed(need);
        } else {
            self.data.as_mut_slice()[..need].fill(0.0);
        }
        self.rows = rows;
        self.cols = cols;
        Ok(grew)
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.row(r)[c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.row_mut(r)[c] = v;
    }

    /// Serializes the matrix (shape + row-major f32 payload).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), TensorError> {
        crate::serial::write_u64(w, self.rows as u64)?;
        crate::serial::write_u64(w, self.cols as u64)?;
        crate::serial::write_f32s(w, self.as_slice())
    }

    /// Deserializes a matrix written by [`Matrix::write_to`].
    ///
    /// # Errors
    ///
    /// Returns shape/length errors for corrupt payloads.
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, TensorError> {
        let rows = crate::serial::read_len(r, crate::serial::MAX_ELEMS)?;
        let cols = crate::serial::read_len(r, crate::serial::MAX_ELEMS)?;
        let data = crate::serial::read_f32s(r, crate::serial::MAX_ELEMS)?;
        Matrix::from_rows(rows, cols, &data)
    }

    /// Reference GEMM: `C = A * B^T` where `self` is `A` (`m x k`) and
    /// `w` is row-major `n x k`. Returns `m x n`.
    ///
    /// This is the golden model every optimized kernel is validated
    /// against; it is deliberately the naive triple loop.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Shape`] when inner dimensions disagree.
    pub fn matmul_wt(&self, w: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != w.cols {
            return Err(TensorError::shape(format!(
                "matmul_wt inner dims: a is {}x{}, w is {}x{}",
                self.rows, self.cols, w.rows, w.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, w.rows)?;
        for i in 0..self.rows {
            let a = self.row(i);
            for j in 0..w.rows {
                let b = w.row(j);
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += a[k] * b[k];
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Frobenius norm of the difference to another matrix, relative to the
    /// norm of `self`; used to express kernel/quantization error bounds.
    pub fn relative_error(&self, other: &Matrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in self.as_slice().iter().zip(other.as_slice()) {
            num += ((a - b) as f64).powi(2);
            den += (*a as f64).powi(2);
        }
        if den == 0.0 {
            return if num == 0.0 { 0.0 } else { f32::INFINITY };
        }
        ((num / den).sqrt()) as f32
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Matrix")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn zeros_rejects_empty_dims() {
        assert!(Matrix::zeros(0, 4).is_err());
        assert!(Matrix::zeros(4, 0).is_err());
    }

    #[test]
    fn from_rows_validates_length() {
        assert!(Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn row_accessors_are_consistent() {
        let mut m = Matrix::zeros(3, 4).unwrap();
        m.row_mut(2).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(2), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(2, 3), 4.0);
    }

    #[test]
    fn matmul_wt_matches_hand_computation() {
        // a = [[1,2],[3,4]], w = [[5,6],[7,8]] (rows are output neurons)
        // c[i][j] = dot(a[i], w[j])
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul_wt(&w).unwrap();
        assert_eq!(c.as_slice(), &[17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn matmul_wt_rejects_mismatched_inner_dim() {
        let a = Matrix::zeros(2, 3).unwrap();
        let w = Matrix::zeros(2, 4).unwrap();
        assert!(a.matmul_wt(&w).is_err());
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = seeded(9);
        let m = Matrix::random_uniform(7, 11, 2.0, &mut rng).unwrap();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let back = Matrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(m.as_slice(), back.as_slice());
        assert_eq!(back.rows(), 7);
        // Corrupt length fails cleanly.
        buf.truncate(12);
        assert!(Matrix::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let mut rng = seeded(3);
        let m = Matrix::random_uniform(5, 7, 1.0, &mut rng).unwrap();
        assert_eq!(m.relative_error(&m.clone()), 0.0);
    }

    #[test]
    fn reshape_zeroed_reuses_capacity() {
        let mut m = Matrix::from_rows(2, 4, &[1.0; 8]).unwrap();
        // Shrinking reuses the buffer and zeroes only the live prefix.
        assert!(!m.reshape_zeroed(1, 3).unwrap());
        assert_eq!(m.capacity(), 8);
        assert_eq!(m.as_slice(), &[0.0; 3]);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        // Growing past capacity reallocates.
        assert!(m.reshape_zeroed(3, 4).unwrap());
        assert_eq!(m.capacity(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(m.reshape_zeroed(0, 4).is_err());
    }

    #[test]
    fn clone_drops_excess_capacity() {
        let mut m = Matrix::from_rows(2, 4, &[7.0; 8]).unwrap();
        m.reshape_zeroed(1, 2).unwrap();
        m.set(0, 1, 5.0);
        let c = m.clone();
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn relative_error_detects_perturbation() {
        let mut rng = seeded(3);
        let m = Matrix::random_uniform(5, 7, 1.0, &mut rng).unwrap();
        let mut p = m.clone();
        let v = p.get(0, 0);
        p.set(0, 0, v + 0.5);
        assert!(m.relative_error(&p) > 0.0);
    }
}
