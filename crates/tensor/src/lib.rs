//! Tensor substrate for the KTransformers reproduction.
//!
//! This crate provides the data-layout layer that the paper's CPU kernels
//! (§3.2) are built on:
//!
//! * [`alloc::AlignedBuf`] — 64-byte (cache-line) aligned storage, the
//!   alignment requirement of AMX tile loads and of the paper's packed
//!   weight format.
//! * [`bf16::Bf16`] — the BF16 storage type used by the full-precision
//!   model deployments.
//! * [`matrix::Matrix`] — a simple row-major `f32` matrix used for
//!   activations and reference computations.
//! * [`quant`] — symmetric group-wise Int8/Int4 quantization with scale
//!   factors stored separately from the packed payload, exactly as the
//!   paper's "block-wise quantization, 64-byte alignment" layout requires.
//! * [`tile`] — the AMX-tiling-aware packed weight layout: weights are
//!   re-packed once at load time into tile-major, cache-line-aligned
//!   panels so that inference kernels never transpose or reshape.
//!
//! The layout types here are shared by both compute paths in
//! `kt-kernels`: the tiled high-arithmetic-intensity ("AMX-class") GEMM
//! and the lightweight ("AVX-512-class") vector kernel read the same
//! packed bytes.

pub mod alloc;
pub mod bf16;
pub mod error;
pub mod matrix;
pub mod precision;
pub mod quant;
pub mod rng;
pub mod serial;
pub mod tile;
pub mod workspace;

pub use alloc::AlignedBuf;
pub use bf16::Bf16;
pub use error::TensorError;
pub use matrix::Matrix;
pub use precision::PrecisionPolicy;
pub use quant::{QuantDtype, QuantizedMatrix};
pub use tile::{PackedWeights, WeightDtype, NR};
pub use workspace::{set_arena_alloc_hook, ArenaStats, ScratchArena};
