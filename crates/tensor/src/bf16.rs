//! A minimal BF16 (bfloat16) storage type.
//!
//! The paper's full-precision deployments store weights in BF16, the
//! native input type of AMX `TDPBF16PS` tile multiplies. We model BF16 as
//! a storage-only format: values are widened to `f32` for arithmetic, as
//! AMX itself accumulates into `f32` tiles.

/// A bfloat16 value: the upper 16 bits of an IEEE-754 `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Converts from `f32` with round-to-nearest-even, the rounding mode
    /// used by hardware BF16 conversion instructions.
    pub fn from_f32(v: f32) -> Self {
        let bits = v.to_bits();
        if v.is_nan() {
            // Preserve NaN; set the quiet bit so truncation cannot yield Inf.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(round_bit - 1 + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Widens to `f32` (exact; BF16 is a prefix of the f32 encoding).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Self {
        Bf16::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> f32 {
        v.to_f32()
    }
}

/// Converts a slice of `f32` into BF16 values.
pub fn quantize_slice(src: &[f32]) -> Vec<Bf16> {
    src.iter().map(|&v| Bf16::from_f32(v)).collect()
}

/// Widens a slice of BF16 values into `f32`.
pub fn dequantize_slice(src: &[Bf16]) -> Vec<f32> {
    src.iter().map(|v| v.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, -0.5, 2.0, 256.0, -1024.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "v={v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // BF16 has 8 significand bits: relative error <= 2^-8 under RNE.
        let mut v = 1.0e-3f32;
        while v < 1.0e6 {
            let q = Bf16::from_f32(v).to_f32();
            let rel = ((q - v) / v).abs();
            assert!(rel <= 1.0 / 256.0, "v={v} q={q} rel={rel}");
            v *= 1.7;
        }
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 1.0 + 2^-9 is exactly halfway between bf16(1.0) and the next
        // representable value; RNE must choose the even mantissa (1.0).
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above the halfway point must round up.
        let above = f32::from_bits(0x3F80_8001);
        assert!(Bf16::from_f32(above).to_f32() > 1.0);
    }

    #[test]
    fn nan_and_inf_are_preserved() {
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn slice_helpers_round_trip_exact_values() {
        let src = vec![0.0f32, 1.5, -3.0, 64.0];
        let q = quantize_slice(&src);
        assert_eq!(dequantize_slice(&q), src);
    }
}
