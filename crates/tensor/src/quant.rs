//! Symmetric group-wise Int8/Int4 weight quantization.
//!
//! Following §3.2: "We employ symmetric group-wise linear quantization for
//! Int8 and Int4 formats, storing shared scale factors separately to
//! maintain alignment. Int4 tiles are packed into Int8-sized blocks and
//! unpacked using SIMD intrinsics."
//!
//! Each weight row is split into contiguous groups of `group_size`
//! elements along the reduction (K) dimension. Every group stores one
//! `f32` scale; payload bytes carry only the integer codes so the packed
//! data keeps its 64-byte alignment (scales live in a separate aligned
//! buffer).

use crate::alloc::AlignedBuf;
use crate::error::TensorError;
use crate::matrix::Matrix;

/// Integer weight format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantDtype {
    /// 8-bit symmetric codes in `[-127, 127]`.
    Int8,
    /// 4-bit symmetric codes in `[-7, 7]`, two codes packed per byte
    /// (low nibble = even index, high nibble = odd index).
    Int4,
}

impl QuantDtype {
    /// Maximum positive code value.
    pub fn qmax(self) -> i32 {
        match self {
            QuantDtype::Int8 => 127,
            QuantDtype::Int4 => 7,
        }
    }

    /// Payload bytes needed for `n` codes.
    pub fn payload_len(self, n: usize) -> usize {
        match self {
            QuantDtype::Int8 => n,
            QuantDtype::Int4 => n.div_ceil(2),
        }
    }

    /// Effective bits per weight (payload only).
    pub fn bits(self) -> usize {
        match self {
            QuantDtype::Int8 => 8,
            QuantDtype::Int4 => 4,
        }
    }
}

/// A row-major quantized matrix (`rows x cols` logical f32 values).
///
/// Storage is split exactly as the paper's layout requires: an aligned
/// byte payload holding the integer codes and an aligned `f32` buffer
/// holding one scale per `(row, group)`.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    dtype: QuantDtype,
    rows: usize,
    cols: usize,
    group_size: usize,
    /// Integer codes; for Int4 two codes per byte, row-padded so each row
    /// starts on a byte boundary.
    data: AlignedBuf<u8>,
    /// `rows * (cols / group_size)` scales.
    scales: AlignedBuf<f32>,
}

impl QuantizedMatrix {
    /// Quantizes `src` with the given dtype and group size.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Quant`] unless `group_size` is nonzero,
    /// even (for Int4 nibble pairing) and divides `src.cols()`.
    pub fn quantize(
        src: &Matrix,
        dtype: QuantDtype,
        group_size: usize,
    ) -> Result<Self, TensorError> {
        let cols = src.cols();
        if group_size == 0 || !cols.is_multiple_of(group_size) {
            return Err(TensorError::quant(format!(
                "group size {group_size} must divide cols {cols}"
            )));
        }
        if dtype == QuantDtype::Int4 && !group_size.is_multiple_of(2) {
            return Err(TensorError::quant(format!(
                "Int4 group size {group_size} must be even"
            )));
        }
        let rows = src.rows();
        let groups_per_row = cols / group_size;
        let row_bytes = dtype.payload_len(cols);
        let mut data = AlignedBuf::<u8>::zeroed(rows * row_bytes);
        let mut scales = AlignedBuf::<f32>::zeroed(rows * groups_per_row);

        for r in 0..rows {
            let row = src.row(r);
            for g in 0..groups_per_row {
                let chunk = &row[g * group_size..(g + 1) * group_size];
                let absmax = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let scale = if absmax == 0.0 {
                    0.0
                } else {
                    absmax / dtype.qmax() as f32
                };
                scales[r * groups_per_row + g] = scale;
                let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
                for (j, &v) in chunk.iter().enumerate() {
                    let code = (v * inv).round().clamp(-(dtype.qmax() as f32),
                        dtype.qmax() as f32) as i32;
                    let idx = g * group_size + j;
                    match dtype {
                        QuantDtype::Int8 => {
                            data[r * row_bytes + idx] = code as i8 as u8;
                        }
                        QuantDtype::Int4 => {
                            let byte = &mut data[r * row_bytes + idx / 2];
                            let nib = (code as i8 as u8) & 0x0F;
                            if idx.is_multiple_of(2) {
                                *byte = (*byte & 0xF0) | nib;
                            } else {
                                *byte = (*byte & 0x0F) | (nib << 4);
                            }
                        }
                    }
                }
            }
        }
        Ok(QuantizedMatrix {
            dtype,
            rows,
            cols,
            group_size,
            data,
            scales,
        })
    }

    /// The quantization dtype.
    pub fn dtype(&self) -> QuantDtype {
        self.dtype
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantization group size along K.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Raw payload bytes.
    pub fn payload(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// Scale factors, `rows * (cols / group_size)` row-major.
    pub fn scales(&self) -> &[f32] {
        self.scales.as_slice()
    }

    /// Total bytes of payload + scales (for memory-footprint accounting).
    pub fn stored_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Decodes the integer code at `(r, c)` (before scaling).
    pub fn code(&self, r: usize, c: usize) -> i32 {
        let row_bytes = self.dtype.payload_len(self.cols);
        match self.dtype {
            QuantDtype::Int8 => self.data[r * row_bytes + c] as i8 as i32,
            QuantDtype::Int4 => {
                let byte = self.data[r * row_bytes + c / 2];
                let nib = if c.is_multiple_of(2) { byte & 0x0F } else { byte >> 4 };
                // Sign-extend the 4-bit code.
                ((nib as i8) << 4 >> 4) as i32
            }
        }
    }

    /// Dequantizes element `(r, c)`.
    pub fn dequantize_at(&self, r: usize, c: usize) -> f32 {
        let groups_per_row = self.cols / self.group_size;
        let scale = self.scales[r * groups_per_row + c / self.group_size];
        self.code(r, c) as f32 * scale
    }

    /// Dequantizes row `r` into `dst` (`dst.len() == cols`).
    pub fn dequantize_row(&self, r: usize, dst: &mut [f32]) {
        assert_eq!(dst.len(), self.cols);
        let groups_per_row = self.cols / self.group_size;
        for g in 0..groups_per_row {
            let scale = self.scales[r * groups_per_row + g];
            for j in 0..self.group_size {
                let c = g * self.group_size + j;
                dst[c] = self.code(r, c) as f32 * scale;
            }
        }
    }

    /// Fully dequantizes into a dense matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols).expect("nonzero dims");
        for r in 0..self.rows {
            self.dequantize_row(r, m.row_mut(r));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn sample(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::random_uniform(rows, cols, 1.0, &mut rng).unwrap()
    }

    #[test]
    fn rejects_bad_group_sizes() {
        let m = sample(2, 64, 1);
        assert!(QuantizedMatrix::quantize(&m, QuantDtype::Int8, 0).is_err());
        assert!(QuantizedMatrix::quantize(&m, QuantDtype::Int8, 48).is_err());
        // Odd group size invalid for Int4.
        let m2 = sample(2, 63, 1);
        assert!(QuantizedMatrix::quantize(&m2, QuantDtype::Int4, 63).is_err());
    }

    #[test]
    fn int8_error_is_within_half_step() {
        let m = sample(4, 128, 2);
        let q = QuantizedMatrix::quantize(&m, QuantDtype::Int8, 32).unwrap();
        let d = q.dequantize();
        for r in 0..m.rows() {
            for g in 0..(m.cols() / 32) {
                let absmax = (0..32)
                    .map(|j| m.get(r, g * 32 + j).abs())
                    .fold(0.0f32, f32::max);
                let step = absmax / 127.0;
                for j in 0..32 {
                    let c = g * 32 + j;
                    let err = (m.get(r, c) - d.get(r, c)).abs();
                    assert!(err <= step * 0.5 + 1e-6, "err={err} step={step}");
                }
            }
        }
    }

    #[test]
    fn int4_error_is_within_half_step() {
        let m = sample(3, 64, 3);
        let q = QuantizedMatrix::quantize(&m, QuantDtype::Int4, 16).unwrap();
        let d = q.dequantize();
        for r in 0..m.rows() {
            for g in 0..(m.cols() / 16) {
                let absmax = (0..16)
                    .map(|j| m.get(r, g * 16 + j).abs())
                    .fold(0.0f32, f32::max);
                let step = absmax / 7.0;
                for j in 0..16 {
                    let c = g * 16 + j;
                    let err = (m.get(r, c) - d.get(r, c)).abs();
                    assert!(err <= step * 0.5 + 1e-6, "err={err} step={step}");
                }
            }
        }
    }

    #[test]
    fn int4_packs_two_codes_per_byte() {
        let m = sample(2, 64, 4);
        let q8 = QuantizedMatrix::quantize(&m, QuantDtype::Int8, 16).unwrap();
        let q4 = QuantizedMatrix::quantize(&m, QuantDtype::Int4, 16).unwrap();
        assert_eq!(q4.payload().len() * 2, q8.payload().len());
        assert!(q4.stored_bytes() < q8.stored_bytes());
    }

    #[test]
    fn zero_group_gets_zero_scale_and_codes() {
        let m = Matrix::from_rows(1, 4, &[0.0, 0.0, 0.0, 0.0]).unwrap();
        let q = QuantizedMatrix::quantize(&m, QuantDtype::Int8, 4).unwrap();
        assert_eq!(q.scales(), &[0.0]);
        assert_eq!(q.dequantize().as_slice(), &[0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn negative_codes_survive_nibble_round_trip() {
        let m = Matrix::from_rows(1, 4, &[-1.0, 1.0, -0.5, 0.25]).unwrap();
        let q = QuantizedMatrix::quantize(&m, QuantDtype::Int4, 4).unwrap();
        assert_eq!(q.code(0, 0), -7);
        assert_eq!(q.code(0, 1), 7);
        assert!(q.dequantize_at(0, 0) < 0.0);
    }

    #[test]
    fn dequantize_row_matches_elementwise() {
        let m = sample(5, 96, 5);
        let q = QuantizedMatrix::quantize(&m, QuantDtype::Int4, 32).unwrap();
        let mut row = vec![0.0f32; 96];
        q.dequantize_row(3, &mut row);
        for (c, &v) in row.iter().enumerate() {
            assert_eq!(v, q.dequantize_at(3, c));
        }
    }
}
