//! Cache-line-aligned buffers.
//!
//! The paper's AMX memory layout requires every tile to start on a 64-byte
//! boundary ("Tiles are memory-aligned to 64-byte cache lines, optimizing
//! cache efficiency and prefetching performance", §3.2). Rust's `Vec` only
//! guarantees the alignment of its element type, so we provide a small
//! aligned buffer built on the raw allocator.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (in bytes) used for all packed tensor storage.
///
/// 64 bytes is both the x86 cache-line size and the row width of an AMX
/// tile register, which is why the paper aligns its packed weights to it.
pub const CACHE_LINE: usize = 64;

/// A fixed-size, 64-byte-aligned, zero-initialized buffer of `T`.
///
/// `T` must be a plain-old-data type for which the all-zeroes bit pattern
/// is a valid value (`f32`, `u8`, `i8`, `u16`, `u32`, ...). The buffer
/// cannot grow; packing code computes its exact size up front, mirroring
/// the one-shot preprocessing step performed at model-load time.
pub struct AlignedBuf<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: `AlignedBuf` owns its allocation exclusively; `T: Copy` types
// carry no interior mutability or thread affinity.
unsafe impl<T: Copy + Send> Send for AlignedBuf<T> {}
// SAFETY: Shared references only permit reads of plain-old-data.
unsafe impl<T: Copy + Sync> Sync for AlignedBuf<T> {}

impl<T: Copy> AlignedBuf<T> {
    /// Allocates a zeroed buffer holding `len` elements of `T`.
    ///
    /// A `len` of zero is permitted and allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics on allocation failure (delegated to [`handle_alloc_error`])
    /// or if the total size overflows `isize`.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf {
                ptr: NonNull::dangling(),
                len: 0,
                _marker: PhantomData,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: `layout` has nonzero size (len > 0) and valid alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        AlignedBuf {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Builds an aligned buffer by copying `src`.
    pub fn from_slice(src: &[T]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `ptr` is valid for `len` contiguous initialized `T`
        // (zeroed at allocation, `T: Copy` has no invalid bit patterns by
        // the type's contract documented on `AlignedBuf`).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: As in `as_slice`; `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    fn layout(len: usize) -> Layout {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("AlignedBuf size overflow");
        let align = CACHE_LINE.max(std::mem::align_of::<T>());
        Layout::from_size_align(bytes, align).expect("AlignedBuf layout overflow")
    }
}

impl<T: Copy> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            let layout = Self::layout(self.len);
            // SAFETY: `ptr` was allocated with exactly this layout in
            // `zeroed` and has not been freed.
            unsafe { dealloc(self.ptr.as_ptr().cast::<u8>(), layout) };
        }
    }
}

impl<T: Copy> Clone for AlignedBuf<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl<T: Copy> Deref for AlignedBuf<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let buf = AlignedBuf::<f32>::zeroed(1000);
        assert_eq!(buf.len(), 1000);
        assert!(buf.iter().all(|&x| x == 0.0));
        assert_eq!(buf.as_slice().as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<u8> = (0..=255).collect();
        let buf = AlignedBuf::from_slice(&data);
        assert_eq!(buf.as_slice(), data.as_slice());
        assert_eq!(buf.as_slice().as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn empty_buffer_is_ok() {
        let buf = AlignedBuf::<f32>::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice(), &[] as &[f32]);
        let cloned = buf.clone();
        assert!(cloned.is_empty());
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedBuf::<u32>::zeroed(16);
        a[0] = 7;
        let b = a.clone();
        a[0] = 9;
        assert_eq!(b[0], 7);
    }

    #[test]
    fn mutation_via_deref_mut() {
        let mut buf = AlignedBuf::<i8>::zeroed(8);
        for (i, x) in buf.iter_mut().enumerate() {
            *x = i as i8;
        }
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn alignment_holds_for_many_sizes() {
        for len in [1usize, 3, 15, 16, 17, 63, 64, 65, 1023] {
            let buf = AlignedBuf::<u8>::zeroed(len);
            assert_eq!(buf.as_slice().as_ptr() as usize % CACHE_LINE, 0, "len={len}");
        }
    }
}
