//! Error type shared by the tensor layer.

use std::fmt;

/// Errors produced by tensor construction, packing and quantization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape argument was invalid (zero-sized or mismatched).
    Shape {
        /// Human-readable description of the violated expectation.
        what: String,
    },
    /// The provided data length does not match the requested shape.
    Length {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// A quantization parameter (e.g. group size) was invalid.
    Quant {
        /// Human-readable description of the violated expectation.
        what: String,
    },
    /// A serialization / deserialization failure.
    Io {
        /// Human-readable description.
        what: String,
    },
}

impl TensorError {
    /// Convenience constructor for [`TensorError::Shape`].
    pub fn shape(what: impl Into<String>) -> Self {
        TensorError::Shape { what: what.into() }
    }

    /// Convenience constructor for [`TensorError::Quant`].
    pub fn quant(what: impl Into<String>) -> Self {
        TensorError::Quant { what: what.into() }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape { what } => write!(f, "invalid shape: {what}"),
            TensorError::Length { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            TensorError::Quant { what } => write!(f, "invalid quantization: {what}"),
            TensorError::Io { what } => write!(f, "io/serialization error: {what}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TensorError::shape("rows must be nonzero");
        assert!(e.to_string().contains("rows must be nonzero"));
        let e = TensorError::Length {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains("expected 4"));
        let e = TensorError::quant("group size must divide k");
        assert!(e.to_string().contains("group size"));
    }
}
