//! AMX-tiling-aware packed weight layout (§3.2, Figure 6).
//!
//! Weight matrices are re-packed **once at model-load time** into a
//! tile-major layout so that inference kernels never transpose, reshape
//! or gather:
//!
//! * The `n` output neurons are split into *panels* of [`NR`] = 16
//!   neurons — the width of one AMX tile register row group.
//! * Within a panel, data is K-major: for each reduction index `kk`, the
//!   16 weights (one per panel neuron) are contiguous. For `f32` this
//!   makes every K-step exactly one 64-byte cache line, mirroring the
//!   paper's "16-row by 64-byte submatrix" tile shape.
//! * Every panel starts on a 64-byte boundary (padded stride), so tile
//!   loads are always aligned.
//! * Quantized formats store their group scales in a separate aligned
//!   buffer (`[panel][k_group][NR]`), keeping the payload uniform —
//!   "storing shared scale factors separately to maintain alignment".
//! * Int4 packs the codes of two adjacent K-steps into one byte
//!   (low nibble = even `kk`, high nibble = odd `kk`), i.e. "Int4 tiles
//!   are packed into Int8-sized blocks".
//!
//! Both the tiled ("AMX-class") GEMM and the lightweight ("AVX-512
//! class") vector kernel in `kt-kernels` consume this same layout; the
//! paper calls this out as a key property ("fully compatible with the
//! AMX memory layout").

use crate::alloc::{AlignedBuf, CACHE_LINE};
use crate::bf16::Bf16;
use crate::error::TensorError;
use crate::matrix::Matrix;
use crate::quant::QuantDtype;

/// Panel width: number of output neurons packed side by side.
pub const NR: usize = 16;

/// Storage format of packed weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightDtype {
    /// 32-bit floats (reference / highest precision).
    F32,
    /// bfloat16, the paper's full-precision deployment format.
    Bf16,
    /// Symmetric group-wise Int8 with the given group size along K.
    Int8 {
        /// Quantization group length along the reduction dimension.
        group: usize,
    },
    /// Symmetric group-wise Int4 (two codes per byte) with the given
    /// group size along K.
    Int4 {
        /// Quantization group length along the reduction dimension.
        group: usize,
    },
}

impl WeightDtype {
    /// Bytes of payload per K-step per panel (i.e. per [`NR`] weights).
    pub fn bytes_per_kstep(self) -> usize {
        match self {
            WeightDtype::F32 => NR * 4,
            WeightDtype::Bf16 => NR * 2,
            WeightDtype::Int8 { .. } => NR,
            WeightDtype::Int4 { .. } => NR / 2,
        }
    }

    /// Short lowercase name for metric labels and logs ("f32", "bf16",
    /// "int8", "int4" — group size elided).
    pub fn name(self) -> &'static str {
        match self {
            WeightDtype::F32 => "f32",
            WeightDtype::Bf16 => "bf16",
            WeightDtype::Int8 { .. } => "int8",
            WeightDtype::Int4 { .. } => "int4",
        }
    }

    /// Quantization group size, if any.
    pub fn group(self) -> Option<usize> {
        match self {
            WeightDtype::Int8 { group } | WeightDtype::Int4 { group } => Some(group),
            _ => None,
        }
    }

    /// Average bits per logical weight including scale overhead for the
    /// given K (used for bandwidth accounting).
    pub fn bits_per_weight(self, _k: usize) -> f64 {
        match self {
            WeightDtype::F32 => 32.0,
            WeightDtype::Bf16 => 16.0,
            WeightDtype::Int8 { group } => 8.0 + 32.0 / group as f64,
            WeightDtype::Int4 { group } => 4.0 + 32.0 / group as f64,
        }
    }
}

/// A weight matrix (`n x k`, row = output neuron) packed into the
/// AMX-tiling-aware layout.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    dtype: WeightDtype,
    n: usize,
    k: usize,
    n_panels: usize,
    /// Distance in bytes between consecutive panels (64-byte multiple).
    panel_stride: usize,
    data: AlignedBuf<u8>,
    /// `[panel][k_group][NR]` scales; empty for float formats.
    scales: AlignedBuf<f32>,
    groups_per_col: usize,
}

impl PackedWeights {
    /// Packs a dense row-major weight matrix (`n x k`) into the tiled
    /// layout, quantizing if `dtype` is an integer format.
    ///
    /// # Examples
    ///
    /// ```
    /// use kt_tensor::{Matrix, PackedWeights, WeightDtype};
    ///
    /// let w = Matrix::from_rows(2, 4, &[1.0, -2.0, 3.0, -4.0,
    ///                                   0.5, 0.25, -0.5, -0.25])?;
    /// let packed = PackedWeights::pack(&w, WeightDtype::Int8 { group: 4 })?;
    /// assert_eq!(packed.n(), 2);
    /// assert_eq!(packed.k(), 4);
    /// // Quantization is symmetric group-wise: the layout round-trips
    /// // to within half a quantization step.
    /// assert!(w.relative_error(&packed.unpack()) < 0.01);
    /// # Ok::<(), kt_tensor::TensorError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Quant`] if a quantized dtype's group size
    /// is zero, odd (Int4 pairs K-steps) or does not divide `k`.
    pub fn pack(src: &Matrix, dtype: WeightDtype) -> Result<Self, TensorError> {
        let n = src.rows();
        let k = src.cols();
        if let Some(group) = dtype.group() {
            if group == 0 || !k.is_multiple_of(group) {
                return Err(TensorError::quant(format!(
                    "group size {group} must divide k={k}"
                )));
            }
            if matches!(dtype, WeightDtype::Int4 { .. }) && group % 2 != 0 {
                return Err(TensorError::quant(format!(
                    "Int4 group size {group} must be even"
                )));
            }
        }
        let n_panels = n.div_ceil(NR);
        let k_padded = if matches!(dtype, WeightDtype::Int4 { .. }) {
            k.div_ceil(2) * 2
        } else {
            k
        };
        let raw_panel_bytes = k_padded.div_ceil(if matches!(dtype, WeightDtype::Int4 { .. }) {
            2
        } else {
            1
        }) * match dtype {
            WeightDtype::Int4 { .. } => NR / 2 * 2, // two K-steps share NR/2*2 bytes
            _ => dtype.bytes_per_kstep(),
        };
        // For non-Int4 the expression above equals k * bytes_per_kstep.
        let raw_panel_bytes = match dtype {
            WeightDtype::Int4 { .. } => k_padded / 2 * NR,
            _ => raw_panel_bytes,
        };
        let panel_stride = raw_panel_bytes.div_ceil(CACHE_LINE) * CACHE_LINE;
        let groups_per_col = dtype.group().map_or(0, |g| k / g);
        let mut data = AlignedBuf::<u8>::zeroed(n_panels * panel_stride);
        let mut scales = AlignedBuf::<f32>::zeroed(n_panels * groups_per_col * NR);

        // Stage 1 (quantized formats): compute per-(neuron, group) scales.
        if let Some(group) = dtype.group() {
            for p in 0..n_panels {
                for j in 0..NR {
                    let row = p * NR + j;
                    if row >= n {
                        continue;
                    }
                    let r = src.row(row);
                    for g in 0..groups_per_col {
                        let chunk = &r[g * group..(g + 1) * group];
                        let absmax = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                        let qmax = match dtype {
                            WeightDtype::Int8 { .. } => QuantDtype::Int8.qmax(),
                            WeightDtype::Int4 { .. } => QuantDtype::Int4.qmax(),
                            _ => unreachable!(),
                        };
                        let scale = if absmax == 0.0 {
                            0.0
                        } else {
                            absmax / qmax as f32
                        };
                        scales[(p * groups_per_col + g) * NR + j] = scale;
                    }
                }
            }
        }

        // Stage 2: transpose rows into K-major panel payloads.
        for p in 0..n_panels {
            let base = p * panel_stride;
            for j in 0..NR {
                let row = p * NR + j;
                if row >= n {
                    continue; // padding neurons stay zero
                }
                let r = src.row(row);
                for (kk, &v) in r.iter().enumerate() {
                    match dtype {
                        WeightDtype::F32 => {
                            let off = base + (kk * NR + j) * 4;
                            data[off..off + 4].copy_from_slice(&v.to_le_bytes());
                        }
                        WeightDtype::Bf16 => {
                            let off = base + (kk * NR + j) * 2;
                            data[off..off + 2]
                                .copy_from_slice(&Bf16::from_f32(v).0.to_le_bytes());
                        }
                        WeightDtype::Int8 { group } => {
                            let g = kk / group;
                            let scale = scales[(p * groups_per_col + g) * NR + j];
                            let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
                            let code = (v * inv).round().clamp(-127.0, 127.0) as i8;
                            data[base + kk * NR + j] = code as u8;
                        }
                        WeightDtype::Int4 { group } => {
                            let g = kk / group;
                            let scale = scales[(p * groups_per_col + g) * NR + j];
                            let inv = if scale == 0.0 { 0.0 } else { 1.0 / scale };
                            let code = ((v * inv).round().clamp(-7.0, 7.0) as i8 as u8) & 0x0F;
                            let byte = &mut data[base + (kk / 2) * NR + j];
                            if kk % 2 == 0 {
                                *byte = (*byte & 0xF0) | code;
                            } else {
                                *byte = (*byte & 0x0F) | (code << 4);
                            }
                        }
                    }
                }
            }
        }

        Ok(PackedWeights {
            dtype,
            n,
            k,
            n_panels,
            panel_stride,
            data,
            scales,
            groups_per_col,
        })
    }

    /// Storage format.
    pub fn dtype(&self) -> WeightDtype {
        self.dtype
    }

    /// Logical output dimension (rows of the original matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Logical reduction dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of [`NR`]-wide panels (`ceil(n / NR)`).
    pub fn n_panels(&self) -> usize {
        self.n_panels
    }

    /// Output dimension padded to a panel multiple.
    pub fn n_padded(&self) -> usize {
        self.n_panels * NR
    }

    /// Raw payload bytes of panel `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= n_panels()`.
    pub fn panel_bytes(&self, p: usize) -> &[u8] {
        assert!(p < self.n_panels, "panel {p} out of bounds");
        let base = p * self.panel_stride;
        &self.data[base..base + self.panel_stride]
    }

    /// Panel `p` viewed as `f32` K-major data (`k * NR` values).
    ///
    /// # Panics
    ///
    /// Panics unless the dtype is [`WeightDtype::F32`].
    pub fn panel_f32(&self, p: usize) -> &[f32] {
        assert_eq!(self.dtype, WeightDtype::F32, "panel_f32 on non-f32 weights");
        let bytes = &self.panel_bytes(p)[..self.k * NR * 4];
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
        // SAFETY: The buffer is 64-byte aligned and panel strides are
        // 64-byte multiples, so `bytes` is 4-aligned; length is an exact
        // multiple of 4; all byte patterns were written from valid f32s.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), self.k * NR) }
    }

    /// Panel `p` viewed as BF16 K-major data (`k * NR` values).
    ///
    /// # Panics
    ///
    /// Panics unless the dtype is [`WeightDtype::Bf16`].
    pub fn panel_bf16(&self, p: usize) -> &[Bf16] {
        assert_eq!(self.dtype, WeightDtype::Bf16, "panel_bf16 on non-bf16 weights");
        let bytes = &self.panel_bytes(p)[..self.k * NR * 2];
        debug_assert_eq!(bytes.as_ptr() as usize % 2, 0);
        // SAFETY: 64-byte-aligned base plus 64-byte panel stride keeps
        // 2-byte alignment; `Bf16` is `repr(transparent)` over `u16` and
        // any bit pattern is a valid `Bf16`.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<Bf16>(), self.k * NR) }
    }

    /// Scales of panel `p`: layout `[k_group][NR]`.
    ///
    /// Empty for float dtypes.
    pub fn panel_scales(&self, p: usize) -> &[f32] {
        if self.groups_per_col == 0 {
            return &[];
        }
        let per = self.groups_per_col * NR;
        &self.scales[p * per..(p + 1) * per]
    }

    /// Total stored bytes (payload + scales), the quantity that decode
    /// throughput is bandwidth-bound on.
    pub fn stored_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// Serializes the packed weights (dtype, shape, payload, scales) —
    /// the checkpoint format of the reproduction. The PACKED form is
    /// stored, so loading skips the pack/quantize preprocessing
    /// entirely (the point of doing it once at model-load time).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), TensorError> {
        use crate::serial::{write_bytes, write_f32s, write_magic, write_u64};
        write_magic(w, b"KTPW")?;
        let (tag, group) = match self.dtype {
            WeightDtype::F32 => (0u64, 0usize),
            WeightDtype::Bf16 => (1, 0),
            WeightDtype::Int8 { group } => (2, group),
            WeightDtype::Int4 { group } => (3, group),
        };
        write_u64(w, tag)?;
        write_u64(w, group as u64)?;
        write_u64(w, self.n as u64)?;
        write_u64(w, self.k as u64)?;
        write_bytes(w, self.data.as_slice())?;
        write_f32s(w, self.scales.as_slice())
    }

    /// Deserializes packed weights written by [`PackedWeights::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Io`]/[`TensorError::Length`] on corrupt
    /// input (wrong magic, unknown dtype, mismatched payload sizes).
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, TensorError> {
        use crate::serial::{expect_magic, read_bytes, read_f32s, read_len, read_u64, MAX_ELEMS};
        expect_magic(r, b"KTPW")?;
        let tag = read_u64(r)?;
        let group = read_len(r, MAX_ELEMS)?;
        let dtype = match tag {
            0 => WeightDtype::F32,
            1 => WeightDtype::Bf16,
            2 => WeightDtype::Int8 { group },
            3 => WeightDtype::Int4 { group },
            other => {
                return Err(TensorError::Io {
                    what: format!("unknown weight dtype tag {other}"),
                })
            }
        };
        let n = read_len(r, MAX_ELEMS)?;
        let k = read_len(r, MAX_ELEMS)?;
        if n == 0 || k == 0 {
            return Err(TensorError::shape("packed weights need nonzero dims"));
        }
        if let Some(g) = dtype.group() {
            if g == 0 || k % g != 0 || (matches!(dtype, WeightDtype::Int4 { .. }) && g % 2 != 0)
            {
                return Err(TensorError::quant(format!(
                    "invalid group {g} for k={k}"
                )));
            }
        }
        // Recompute the derived layout exactly as `pack` does.
        let n_panels = n.div_ceil(NR);
        let k_padded = if matches!(dtype, WeightDtype::Int4 { .. }) {
            k.div_ceil(2) * 2
        } else {
            k
        };
        let raw_panel_bytes = match dtype {
            WeightDtype::Int4 { .. } => k_padded / 2 * NR,
            _ => k * dtype.bytes_per_kstep(),
        };
        let panel_stride = raw_panel_bytes.div_ceil(CACHE_LINE) * CACHE_LINE;
        let groups_per_col = dtype.group().map_or(0, |g| k / g);
        let payload = read_bytes(r, MAX_ELEMS)?;
        if payload.len() != n_panels * panel_stride {
            return Err(TensorError::Length {
                expected: n_panels * panel_stride,
                actual: payload.len(),
            });
        }
        let scales = read_f32s(r, MAX_ELEMS)?;
        if scales.len() != n_panels * groups_per_col * NR {
            return Err(TensorError::Length {
                expected: n_panels * groups_per_col * NR,
                actual: scales.len(),
            });
        }
        Ok(PackedWeights {
            dtype,
            n,
            k,
            n_panels,
            panel_stride,
            data: AlignedBuf::from_slice(&payload),
            scales: AlignedBuf::from_slice(&scales),
            groups_per_col,
        })
    }

    /// Reconstructs the logical `n x k` matrix (dequantizing as needed);
    /// the golden reference for layout round-trip tests.
    pub fn unpack(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.k).expect("nonzero dims");
        for p in 0..self.n_panels {
            let base = p * self.panel_stride;
            for j in 0..NR {
                let row = p * NR + j;
                if row >= self.n {
                    continue;
                }
                for kk in 0..self.k {
                    let v = match self.dtype {
                        WeightDtype::F32 => {
                            let off = base + (kk * NR + j) * 4;
                            f32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
                        }
                        WeightDtype::Bf16 => {
                            let off = base + (kk * NR + j) * 2;
                            Bf16(u16::from_le_bytes(
                                self.data[off..off + 2].try_into().unwrap(),
                            ))
                            .to_f32()
                        }
                        WeightDtype::Int8 { group } => {
                            let g = kk / group;
                            let scale = self.scales[(p * self.groups_per_col + g) * NR + j];
                            let code = self.data[base + kk * NR + j] as i8;
                            code as f32 * scale
                        }
                        WeightDtype::Int4 { group } => {
                            let g = kk / group;
                            let scale = self.scales[(p * self.groups_per_col + g) * NR + j];
                            let byte = self.data[base + (kk / 2) * NR + j];
                            let nib = if kk % 2 == 0 { byte & 0x0F } else { byte >> 4 };
                            let code = (nib as i8) << 4 >> 4;
                            code as f32 * scale
                        }
                    };
                    m.set(row, kk, v);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn sample(n: usize, k: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        Matrix::random_uniform(n, k, 1.0, &mut rng).unwrap()
    }

    #[test]
    fn f32_pack_round_trips_exactly() {
        let w = sample(37, 48, 1); // n not a panel multiple
        let p = PackedWeights::pack(&w, WeightDtype::F32).unwrap();
        assert_eq!(p.n_panels(), 3);
        assert_eq!(p.n_padded(), 48);
        let u = p.unpack();
        assert_eq!(u.as_slice(), w.as_slice());
    }

    #[test]
    fn bf16_pack_is_close() {
        let w = sample(16, 32, 2);
        let p = PackedWeights::pack(&w, WeightDtype::Bf16).unwrap();
        let u = p.unpack();
        assert!(w.relative_error(&u) < 1.0 / 256.0);
    }

    #[test]
    fn int8_pack_is_close() {
        let w = sample(32, 64, 3);
        let p = PackedWeights::pack(&w, WeightDtype::Int8 { group: 32 }).unwrap();
        let u = p.unpack();
        assert!(w.relative_error(&u) < 0.01);
    }

    #[test]
    fn int4_pack_is_close_and_half_size() {
        let w = sample(32, 64, 4);
        let p8 = PackedWeights::pack(&w, WeightDtype::Int8 { group: 32 }).unwrap();
        let p4 = PackedWeights::pack(&w, WeightDtype::Int4 { group: 32 }).unwrap();
        let u = p4.unpack();
        assert!(w.relative_error(&u) < 0.12);
        assert!(p4.stored_bytes() < p8.stored_bytes());
    }

    #[test]
    fn panels_are_cache_line_aligned() {
        let w = sample(64, 40, 5);
        for dt in [
            WeightDtype::F32,
            WeightDtype::Bf16,
            WeightDtype::Int8 { group: 8 },
            WeightDtype::Int4 { group: 8 },
        ] {
            let p = PackedWeights::pack(&w, dt).unwrap();
            for i in 0..p.n_panels() {
                assert_eq!(
                    p.panel_bytes(i).as_ptr() as usize % CACHE_LINE,
                    0,
                    "dtype {dt:?} panel {i}"
                );
            }
        }
    }

    #[test]
    fn f32_panel_layout_is_k_major() {
        // W[row][kk]; packed panel f32 view should be panel[kk*NR + j] ==
        // W[panel*NR + j][kk].
        let w = sample(16, 8, 6);
        let p = PackedWeights::pack(&w, WeightDtype::F32).unwrap();
        let panel = p.panel_f32(0);
        for kk in 0..8 {
            for j in 0..NR {
                assert_eq!(panel[kk * NR + j], w.get(j, kk));
            }
        }
    }

    #[test]
    fn padding_neurons_are_zero() {
        let w = sample(17, 8, 7);
        let p = PackedWeights::pack(&w, WeightDtype::F32).unwrap();
        let panel = p.panel_f32(1); // holds neuron 16 plus 15 pad lanes
        for kk in 0..8 {
            for j in 1..NR {
                assert_eq!(panel[kk * NR + j], 0.0);
            }
        }
    }

    #[test]
    fn quant_group_validation() {
        let w = sample(16, 48, 8);
        assert!(PackedWeights::pack(&w, WeightDtype::Int8 { group: 0 }).is_err());
        assert!(PackedWeights::pack(&w, WeightDtype::Int8 { group: 32 }).is_err());
        assert!(PackedWeights::pack(&w, WeightDtype::Int4 { group: 3 }).is_err());
        assert!(PackedWeights::pack(&w, WeightDtype::Int4 { group: 16 }).is_ok());
    }

    #[test]
    fn bits_per_weight_accounting() {
        assert_eq!(WeightDtype::F32.bits_per_weight(64), 32.0);
        assert_eq!(WeightDtype::Bf16.bits_per_weight(64), 16.0);
        assert!((WeightDtype::Int8 { group: 64 }.bits_per_weight(64) - 8.5).abs() < 1e-9);
        assert!((WeightDtype::Int4 { group: 64 }.bits_per_weight(64) - 4.5).abs() < 1e-9);
    }

    #[test]
    fn serialization_round_trips_all_dtypes() {
        let w = sample(37, 48, 21);
        for dt in [
            WeightDtype::F32,
            WeightDtype::Bf16,
            WeightDtype::Int8 { group: 16 },
            WeightDtype::Int4 { group: 16 },
        ] {
            let p = PackedWeights::pack(&w, dt).unwrap();
            let mut buf = Vec::new();
            p.write_to(&mut buf).unwrap();
            let q = PackedWeights::read_from(&mut buf.as_slice()).unwrap();
            assert_eq!(q.dtype(), dt);
            assert_eq!(q.n(), 37);
            assert_eq!(q.k(), 48);
            // Bit-exact payload round trip.
            let a = p.unpack();
            let b = q.unpack();
            assert_eq!(a.as_slice(), b.as_slice(), "{dt:?}");
            // Loaded panels stay cache-line aligned.
            assert_eq!(q.panel_bytes(0).as_ptr() as usize % CACHE_LINE, 0);
        }
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let w = sample(16, 32, 22);
        let p = PackedWeights::pack(&w, WeightDtype::Int8 { group: 16 }).unwrap();
        let mut buf = Vec::new();
        p.write_to(&mut buf).unwrap();
        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(PackedWeights::read_from(&mut bad.as_slice()).is_err());
        // Unknown dtype tag.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(PackedWeights::read_from(&mut bad.as_slice()).is_err());
        // Truncated payload.
        let mut bad = buf.clone();
        bad.truncate(bad.len() - 8);
        assert!(PackedWeights::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn scales_layout_matches_unpack() {
        let w = sample(16, 32, 9);
        let p = PackedWeights::pack(&w, WeightDtype::Int8 { group: 16 }).unwrap();
        let scales = p.panel_scales(0);
        assert_eq!(scales.len(), 2 * NR);
        // Scale of neuron j, group g must equal absmax/127 of that chunk.
        for j in 0..NR {
            for g in 0..2 {
                let absmax = (0..16)
                    .map(|t| w.get(j, g * 16 + t).abs())
                    .fold(0.0f32, f32::max);
                let expect = absmax / 127.0;
                let got = scales[g * NR + j];
                assert!((got - expect).abs() < 1e-6);
            }
        }
    }
}
