//! Deterministic random initialization helpers.
//!
//! Every experiment in the reproduction is seeded so that benchmark tables
//! and accuracy studies are exactly repeatable run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a deterministic RNG for the given seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fills `dst` with uniform values in `[-scale, scale)`.
pub fn fill_uniform(rng: &mut StdRng, dst: &mut [f32], scale: f32) {
    for x in dst.iter_mut() {
        *x = rng.gen_range(-scale..scale);
    }
}

/// Fills `dst` with approximately normal values (Irwin–Hall of 4 uniforms),
/// scaled to standard deviation `std`.
pub fn fill_normal(rng: &mut StdRng, dst: &mut [f32], std: f32) {
    // Sum of 4 U(-1,1) has variance 4/3; normalize to unit std.
    let norm = (3.0f32 / 4.0).sqrt();
    for x in dst.iter_mut() {
        let s: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum();
        *x = s * norm * std;
    }
}

/// Kaiming-style initialization scale for a linear layer with `fan_in`
/// inputs, used to keep activations well-conditioned in the synthetic
/// models.
pub fn kaiming_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let mut va = vec![0.0f32; 32];
        let mut vb = vec![0.0f32; 32];
        fill_uniform(&mut a, &mut va, 1.0);
        fill_uniform(&mut b, &mut vb, 1.0);
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let mut va = vec![0.0f32; 32];
        let mut vb = vec![0.0f32; 32];
        fill_uniform(&mut a, &mut va, 1.0);
        fill_uniform(&mut b, &mut vb, 1.0);
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = seeded(7);
        let mut v = vec![0.0f32; 4096];
        fill_uniform(&mut rng, &mut v, 0.25);
        assert!(v.iter().all(|&x| (-0.25..0.25).contains(&x)));
    }

    #[test]
    fn normal_has_roughly_unit_std() {
        let mut rng = seeded(9);
        let mut v = vec![0.0f32; 65536];
        fill_normal(&mut rng, &mut v, 1.0);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn kaiming_std_shrinks_with_fan_in() {
        assert!(kaiming_std(1024) < kaiming_std(64));
        assert!(kaiming_std(0) > 0.0);
    }
}
