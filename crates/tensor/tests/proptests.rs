//! Property-based tests for the tensor layer invariants.

use kt_tensor::{Bf16, Matrix, PackedWeights, QuantDtype, QuantizedMatrix, WeightDtype};
use proptest::prelude::*;

fn matrix_strategy(max_n: usize, k: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(-8.0f32..8.0, n * k)
            .prop_map(move |data| Matrix::from_rows(n, k, &data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BF16 conversion never increases magnitude by more than one ULP
    /// step and is monotone in sign.
    #[test]
    fn bf16_preserves_sign_and_bounds(v in -1.0e6f32..1.0e6) {
        let q = Bf16::from_f32(v).to_f32();
        prop_assert_eq!(q.signum() == v.signum() || v == 0.0 || q == 0.0, true);
        if v != 0.0 {
            prop_assert!(((q - v) / v).abs() <= 1.0 / 256.0 + 1e-7);
        }
    }

    /// F32 packing is lossless for any shape.
    #[test]
    fn f32_pack_unpack_identity(m in matrix_strategy(40, 24)) {
        let p = PackedWeights::pack(&m, WeightDtype::F32).unwrap();
        let u = p.unpack();
        prop_assert_eq!(u.as_slice(), m.as_slice());
    }

    /// The packed quantized layout dequantizes to exactly the same values
    /// as the flat row-major quantizer: both implement the same
    /// symmetric group-wise scheme.
    #[test]
    fn packed_quant_matches_flat_quant(m in matrix_strategy(32, 32)) {
        let flat = QuantizedMatrix::quantize(&m, QuantDtype::Int8, 16).unwrap();
        let packed = PackedWeights::pack(&m, WeightDtype::Int8 { group: 16 }).unwrap();
        let a = flat.dequantize();
        let b = packed.unpack();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6, "flat={x} packed={y}");
        }
    }

    /// Int4 packed layout dequantization error per element never exceeds
    /// half a quantization step of its group.
    #[test]
    fn int4_error_bound_holds(m in matrix_strategy(20, 16)) {
        let p = PackedWeights::pack(&m, WeightDtype::Int4 { group: 8 }).unwrap();
        let u = p.unpack();
        for r in 0..m.rows() {
            for g in 0..2 {
                let absmax = (0..8).map(|t| m.get(r, g * 8 + t).abs())
                    .fold(0.0f32, f32::max);
                let step = absmax / 7.0;
                for t in 0..8 {
                    let c = g * 8 + t;
                    let err = (m.get(r, c) - u.get(r, c)).abs();
                    prop_assert!(err <= step * 0.5 + 1e-5);
                }
            }
        }
    }

    /// Quantization is idempotent: re-quantizing dequantized values
    /// reproduces the same codes.
    #[test]
    fn quantization_is_idempotent(m in matrix_strategy(8, 32)) {
        let q1 = QuantizedMatrix::quantize(&m, QuantDtype::Int8, 16).unwrap();
        let d1 = q1.dequantize();
        let q2 = QuantizedMatrix::quantize(&d1, QuantDtype::Int8, 16).unwrap();
        let d2 = q2.dequantize();
        for (x, y) in d1.as_slice().iter().zip(d2.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0));
        }
    }

    /// Reference matmul is linear in its left operand.
    #[test]
    fn matmul_is_linear(
        a in matrix_strategy(6, 12),
        scale in -4.0f32..4.0,
    ) {
        let mut rng = kt_tensor::rng::seeded(11);
        let w = Matrix::random_uniform(10, 12, 1.0, &mut rng).unwrap();
        let c1 = a.matmul_wt(&w).unwrap();
        let mut a2 = a.clone();
        for v in a2.as_mut_slice() { *v *= scale; }
        let c2 = a2.matmul_wt(&w).unwrap();
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            prop_assert!((x * scale - y).abs() <= 1e-3 * x.abs().max(1.0) * scale.abs().max(1.0));
        }
    }
}
