//! System policies and task-graph builders.
//!
//! A [`SystemPolicy`] captures how one inference system (Fiddler,
//! llama.cpp, or KTransformers with any subset of its optimizations)
//! schedules the hybrid computation. The builders turn a policy, a
//! platform and a model configuration into task graphs for the
//! discrete-event engine:
//!
//! * **Decode** — per layer: GPU attention → router → (submit) →
//!   CPU routed experts ∥ GPU shared experts → (sync) → merge. Without
//!   async scheduling, submit/sync are explicit overhead barriers and
//!   every layer pays kernel-launch latency (Figure 4); with the
//!   single-CUDA-Graph design, launch cost collapses to a replay fee and
//!   the barriers become in-stream `cudaLaunchHostFunc` callbacks
//!   (§3.3). With Expert Deferral, the routed work splits into an
//!   immediate part (blocking the next layer) and a deferred part that
//!   executes concurrently with the next layer's GPU work and merges one
//!   layer later (§4.1, Figure 10).
//! * **Prefill** — the same structure with prefill-sized operations; the
//!   paper applies no deferral in prefill.

use kt_model::ModelConfig;

use crate::cost::{Calibration, CpuKernel, CpuMoeOp, KernelPhase};
use crate::desim::{Sim, SimResult, TaskSpec};
use crate::error::SimError;
use crate::hardware::Platform;
use crate::workload::{dense_layer_workload, head_workload, moe_layer_workload, Precision};

/// Resource indices used by the builders.
pub const RES_CPU: usize = 0;
/// GPU compute/launch engine.
pub const RES_GPU: usize = 1;
/// PCIe link.
pub const RES_PCIE: usize = 2;
/// Total resources.
pub const N_RESOURCES: usize = 3;

/// Execution phase descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Prompt processing of the given length.
    Prefill {
        /// Prompt length in tokens.
        prompt: usize,
    },
    /// Token-by-token generation.
    Decode {
        /// Prompt length already in the cache.
        prompt: usize,
        /// Tokens to generate.
        steps: usize,
    },
}

/// How one system schedules hybrid MoE inference.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPolicy {
    /// Display name.
    pub name: String,
    /// CPU kernel used during prefill.
    pub kernel_prefill: CpuKernel,
    /// CPU kernel used during decode.
    pub kernel_decode: CpuKernel,
    /// Dynamic task scheduling (§3.2) instead of static partitioning.
    pub dynamic_sched: bool,
    /// NUMA-aware tensor placement (§3.3).
    pub numa_aware: bool,
    /// Whole-decode-path CUDA Graph with host-function callbacks (§3.3).
    pub cuda_graph: bool,
    /// GPU kernel launches issued per layer when not graph-captured.
    pub launches_per_layer: f64,
    /// Latency of one kernel launch, seconds (Figure 4: 16 µs for
    /// Fiddler's Python path, 5 µs for C++ paths).
    pub launch_latency_s: f64,
    /// Whether the CPU path pays per-layer Python/framework overhead.
    pub python_overhead: bool,
    /// Deferred experts per layer during decode (0 = no deferral).
    pub n_deferred: usize,
    /// Fraction of routed-expert activations served by GPU-pinned hot
    /// experts. Zero is the paper's default shared-experts-only
    /// placement; positive values model Fiddler-style popularity
    /// pinning for models without shared experts (§1).
    pub gpu_pinned_coverage: f64,
    /// Weight offloading instead of computation offloading (§2.1's
    /// baseline): routed experts stay in DRAM but are TRANSFERRED to
    /// the GPU over PCIe on demand and computed there.
    pub weight_offloading: bool,
}

impl SystemPolicy {
    /// Fiddler: PyTorch-based hybrid system; oneDNN AMX in prefill,
    /// torch GEMV in decode, NUMA-oblivious, no CUDA graphs, ~7000
    /// launches per token at 16 µs (Figure 4).
    pub fn fiddler() -> Self {
        SystemPolicy {
            name: "Fiddler".into(),
            kernel_prefill: CpuKernel::TorchAmx,
            kernel_decode: CpuKernel::TorchAvx512,
            dynamic_sched: false,
            numa_aware: false,
            cuda_graph: false,
            launches_per_layer: 7000.0 / 61.0,
            launch_latency_s: 16e-6,
            python_overhead: true,
            n_deferred: 0,
            gpu_pinned_coverage: 0.0,
            weight_offloading: false,
        }
    }

    /// llama.cpp with expert-level offloading: fused C++ AVX-512
    /// kernels, ~3000 launches per token at 5 µs, CUDA graphs disabled
    /// (§2.3).
    pub fn llamacpp() -> Self {
        SystemPolicy {
            name: "Llama.cpp".into(),
            kernel_prefill: CpuKernel::LlamaCppAvx,
            kernel_decode: CpuKernel::LlamaCppAvx,
            dynamic_sched: false,
            numa_aware: false,
            cuda_graph: false,
            launches_per_layer: 3000.0 / 61.0,
            launch_latency_s: 5e-6,
            python_overhead: false,
            n_deferred: 0,
            gpu_pinned_coverage: 0.0,
            weight_offloading: false,
        }
    }

    /// KTransformers with every optimization except Expert Deferral.
    pub fn ktransformers() -> Self {
        SystemPolicy {
            name: "KTransformers".into(),
            kernel_prefill: CpuKernel::KtHybrid,
            kernel_decode: CpuKernel::KtHybrid,
            dynamic_sched: true,
            numa_aware: true,
            cuda_graph: true,
            launches_per_layer: 60.0,
            launch_latency_s: 5e-6,
            python_overhead: false,
            n_deferred: 0,
            gpu_pinned_coverage: 0.0,
            weight_offloading: false,
        }
    }

    /// Weight-offloading baseline (§2.1): expert weights ship over PCIe
    /// to the GPU per activation instead of computing on the CPU —
    /// "this approach quickly hits a bottleneck due to PCIe bandwidth
    /// limits".
    pub fn weight_offloading() -> Self {
        let mut p = Self::ktransformers();
        p.name = "WeightOffload".into();
        p.weight_offloading = true;
        p
    }

    /// KTransformers with Expert Deferral (`n_deferred` experts).
    pub fn ktransformers_deferred(n_deferred: usize) -> Self {
        let mut p = Self::ktransformers();
        p.name = format!("KTransformers+Defer({n_deferred})");
        p.n_deferred = n_deferred;
        p
    }

    /// The cumulative optimization stages of Figure 14, in order:
    /// baseline (Fiddler), +v (AVX-512 fused kernel), +m (AMX/hybrid
    /// kernel), +d (dynamic scheduling), +n (NUMA-aware TP), +c (CUDA
    /// Graph).
    pub fn breakdown_stages() -> Vec<SystemPolicy> {
        let base = Self::fiddler();
        let mut v = base.clone();
        v.name = "+v (AVX-512 kernel)".into();
        v.kernel_prefill = CpuKernel::KtAvx512;
        v.kernel_decode = CpuKernel::KtAvx512;
        v.python_overhead = false;
        v.launches_per_layer = 60.0;
        v.launch_latency_s = 5e-6;
        let mut m = v.clone();
        m.name = "+m (AMX kernel)".into();
        m.kernel_prefill = CpuKernel::KtHybrid;
        m.kernel_decode = CpuKernel::KtHybrid;
        let mut d = m.clone();
        d.name = "+d (dynamic sched)".into();
        d.dynamic_sched = true;
        let mut n = d.clone();
        n.name = "+n (NUMA-aware TP)".into();
        n.numa_aware = true;
        let mut c = n.clone();
        c.name = "+c (CUDA Graph)".into();
        c.cuda_graph = true;
        vec![base, v, m, d, n, c]
    }
}

/// Outcome of one simulated phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Throughput in tokens per second.
    pub tokens_per_s: f64,
    /// CPU utilization (useful work / makespan).
    pub cpu_util: f64,
    /// GPU utilization (useful work / makespan).
    pub gpu_util: f64,
    /// Fraction of GPU busy time spent on launch/sync overhead.
    pub gpu_overhead_frac: f64,
    /// Raw simulation result (timelines etc.).
    pub result: SimResult,
}

/// Builds and runs the simulation for a phase.
///
/// # Errors
///
/// Returns [`SimError::Config`] on empty phases or inconsistent model
/// configurations.
pub fn simulate(
    policy: &SystemPolicy,
    platform: &Platform,
    cfg: &ModelConfig,
    cpu_prec: Precision,
    gpu_prec: Precision,
    phase: Phase,
    cal: &Calibration,
) -> Result<PhaseReport, SimError> {
    match phase {
        Phase::Prefill { prompt } => {
            if prompt == 0 {
                return Err(SimError::config("prefill needs a nonempty prompt"));
            }
            let mut sim = Sim::new(N_RESOURCES);
            let mut prev: Option<usize> = None;
            build_forward(
                &mut sim, policy, platform, cfg, cpu_prec, gpu_prec, prompt, 0, false, &mut prev,
                &mut None, cal,
            )?;
            let result = sim.run();
            Ok(report(result, prompt as f64))
        }
        Phase::Decode { prompt, steps } => simulate_with_tokens(
            policy, platform, cfg, cpu_prec, gpu_prec, prompt, steps, 1, cal,
        ),
    }
}

/// Decode-style simulation with `batch` tokens per step (batch 1 is
/// the paper's setting; `kt-hwsim::pipeline` uses larger batches).
///
/// # Errors
///
/// Returns [`SimError::Config`] on zero steps/batch.
#[allow(clippy::too_many_arguments)]
pub fn simulate_with_tokens(
    policy: &SystemPolicy,
    platform: &Platform,
    cfg: &ModelConfig,
    cpu_prec: Precision,
    gpu_prec: Precision,
    prompt: usize,
    steps: usize,
    batch: usize,
    cal: &Calibration,
) -> Result<PhaseReport, SimError> {
    if steps == 0 || batch == 0 {
        return Err(SimError::config("steps and batch must be nonzero"));
    }
    let mut sim = Sim::new(N_RESOURCES);
    let mut prev: Option<usize> = None;
    let mut deferred: Option<usize> = None;
    for s in 0..steps {
        build_forward(
            &mut sim,
            policy,
            platform,
            cfg,
            cpu_prec,
            gpu_prec,
            batch,
            prompt + s * batch,
            true,
            &mut prev,
            &mut deferred,
            cal,
        )?;
    }
    let result = sim.run();
    Ok(report(result, (steps * batch) as f64))
}

fn report(result: SimResult, tokens: f64) -> PhaseReport {
    let tokens_per_s = if result.makespan > 0.0 {
        tokens / result.makespan
    } else {
        0.0
    };
    PhaseReport {
        tokens_per_s,
        cpu_util: result.utilization(RES_CPU),
        gpu_util: result.utilization(RES_GPU),
        gpu_overhead_frac: result.overhead_fraction(RES_GPU),
        result,
    }
}

/// Appends one full forward pass (all layers + head) over `tokens` new
/// tokens at context `ctx` to the simulation.
#[allow(clippy::too_many_arguments)]
fn build_forward(
    sim: &mut Sim,
    policy: &SystemPolicy,
    platform: &Platform,
    cfg: &ModelConfig,
    cpu_prec: Precision,
    gpu_prec: Precision,
    tokens: usize,
    ctx: usize,
    decode: bool,
    prev: &mut Option<usize>,
    deferred_in: &mut Option<usize>,
    cal: &Calibration,
) -> Result<(), SimError> {
    let gpu = &platform.gpu;
    let cpu = &platform.cpu;
    let large = !decode;
    let phase = if decode {
        KernelPhase::Decode
    } else {
        KernelPhase::Prefill
    };
    let kernel = if decode {
        policy.kernel_decode
    } else {
        policy.kernel_prefill
    };
    let deps_of = |p: &Option<usize>| p.iter().copied().collect::<Vec<_>>();

    for layer in 0..cfg.n_layers {
        // Per-layer kernel-launch cost on the GPU stream.
        let launch_cost = if policy.cuda_graph {
            cal.graph_replay_layer_s
        } else {
            policy.launches_per_layer * policy.launch_latency_s
        };
        let launch = sim.push(TaskSpec::overhead(
            RES_GPU,
            launch_cost,
            deps_of(prev),
            format!("L{layer}:launch"),
        ))?;

        if layer < cfg.n_dense_layers {
            let w = dense_layer_workload(cfg, tokens, ctx, gpu_prec);
            let attn = sim.push(TaskSpec::work(
                RES_GPU,
                cal.gpu_op_time(gpu, w.attn_flops, w.attn_bytes, large),
                vec![launch],
                format!("L{layer}:attn"),
            ))?;
            let mlp = sim.push(TaskSpec::work(
                RES_GPU,
                cal.gpu_op_time(gpu, w.shared_flops, w.shared_bytes, large),
                vec![attn],
                format!("L{layer}:dense-mlp"),
            ))?;
            *prev = Some(mlp);
            continue;
        }

        let mut w = moe_layer_workload(cfg, tokens, ctx, cpu_prec, gpu_prec);
        // Popularity pinning: the covered fraction of routed activations
        // executes on the GPU next to the shared experts instead of the
        // CPU backend (pinned weights live in VRAM at GPU precision).
        let cov = policy.gpu_pinned_coverage.clamp(0.0, 1.0);
        if cov > 0.0 {
            let moved_flops = w.routed_flops * cov;
            let moved_bytes_gpu = w.routed_bytes * cov
                * (gpu_prec.bytes_per_weight() / cpu_prec.bytes_per_weight());
            w.routed_flops -= moved_flops;
            w.routed_bytes *= 1.0 - cov;
            w.n_active_experts *= 1.0 - cov;
            w.shared_flops += moved_flops;
            w.shared_bytes += moved_bytes_gpu;
        }

        // GPU attention and router.
        let attn = sim.push(TaskSpec::work(
            RES_GPU,
            cal.gpu_op_time(gpu, w.attn_flops, w.attn_bytes, large),
            vec![launch],
            format!("L{layer}:attn"),
        ))?;
        let router = sim.push(TaskSpec::work(
            RES_GPU,
            cal.gpu_op_time(gpu, w.router_flops, w.router_flops / 2.0, false),
            vec![attn],
            format!("L{layer}:router"),
        ))?;

        // Submit barrier: a real sync outside CUDA graphs, an in-stream
        // host callback inside them.
        let submit_cost = if policy.cuda_graph {
            cal.hostfunc_latency_s
        } else {
            cal.sync_latency_s
        };
        let submit = sim.push(TaskSpec::overhead(
            RES_GPU,
            submit_cost,
            vec![router],
            format!("L{layer}:submit"),
        ))?;

        // Ship activations to the CPU.
        let xfer = sim.push(TaskSpec::work(
            RES_PCIE,
            cal.pcie_time(w.transfer_bytes, platform.pcie_gbs),
            vec![submit],
            format!("L{layer}:h2d... d2h"),
        ))?;

        // CPU routed experts, split into immediate and deferred parts.
        let top_k = cfg.top_k.max(1);
        let n_def = if decode {
            policy.n_deferred.min(top_k.saturating_sub(1))
        } else {
            0
        };
        let imm_frac = (top_k - n_def) as f64 / top_k as f64;
        let python = if policy.python_overhead {
            cal.python_layer_overhead_s
        } else {
            0.0
        };
        // The PyTorch module path (Fiddler) re-reads intermediates and
        // launches unfused ops; its kernels see inflated work.
        let unfused = if policy.python_overhead {
            cal.torch_unfused_factor
        } else {
            1.0
        };
        let make_op = |frac: f64| CpuMoeOp {
            tokens_per_expert: w.tokens_per_expert,
            n_active_experts: w.n_active_experts * frac,
            flops: w.routed_flops * frac * unfused,
            bytes: w.routed_bytes * frac * unfused,
        };
        let cpu_imm = if policy.weight_offloading {
            // §2.1 baseline: stream the activated experts' weights over
            // PCIe and run the expert GEMMs on the GPU.
            let weight_xfer = sim.push(TaskSpec::work(
                RES_PCIE,
                cal.pcie_time(w.routed_bytes * imm_frac, platform.pcie_gbs),
                vec![xfer],
                format!("L{layer}:weight-h2d"),
            ))?;
            sim.push(TaskSpec::work(
                RES_GPU,
                cal.gpu_op_time(gpu, w.routed_flops * imm_frac, w.routed_bytes * imm_frac, large),
                vec![weight_xfer],
                format!("L{layer}:experts-on-gpu"),
            ))?
        } else {
            let imm_time = cal.cpu_moe_time(
                kernel,
                &make_op(imm_frac),
                cpu,
                policy.numa_aware,
                policy.dynamic_sched,
                phase,
            ) + python;
            sim.push(TaskSpec::work(
                RES_CPU,
                imm_time,
                vec![xfer],
                format!("L{layer}:experts-imm"),
            ))?
        };

        // GPU shared experts overlap the CPU work.
        let shared = sim.push(TaskSpec::work(
            RES_GPU,
            cal.gpu_op_time(gpu, w.shared_flops, w.shared_bytes, large),
            vec![router],
            format!("L{layer}:shared"),
        ))?;

        // Immediate results return to the GPU.
        let xfer_back = sim.push(TaskSpec::work(
            RES_PCIE,
            cal.pcie_time(w.transfer_bytes, platform.pcie_gbs),
            vec![cpu_imm],
            format!("L{layer}:d2h"),
        ))?;
        let sync_cost = if policy.cuda_graph {
            cal.hostfunc_latency_s
        } else {
            cal.sync_latency_s
        };
        let sync = sim.push(TaskSpec::overhead(
            RES_GPU,
            sync_cost,
            vec![xfer_back],
            format!("L{layer}:sync"),
        ))?;

        // Merge: needs shared experts, immediate experts, and the
        // PREVIOUS layer's deferred experts (their output lands here).
        let mut merge_deps = vec![shared, sync];
        if let Some(d) = deferred_in.take() {
            merge_deps.push(d);
        }
        let merge = sim.push(TaskSpec::work(
            RES_GPU,
            1e-6,
            merge_deps,
            format!("L{layer}:merge"),
        ))?;

        // Deferred experts execute after the immediate batch on the CPU
        // queue, overlapping the NEXT layer's GPU work; their result
        // merges one layer later. They are submitted after this layer's
        // merge so the in-order PCIe/GPU queues never head-of-line
        // block the immediate path behind deferred work.
        let deferred_new = if n_def > 0 {
            let def_time = cal.cpu_moe_time(
                kernel,
                &make_op(1.0 - imm_frac),
                cpu,
                policy.numa_aware,
                policy.dynamic_sched,
                phase,
            );
            let cpu_def = sim.push(TaskSpec::work(
                RES_CPU,
                def_time,
                vec![xfer],
                format!("L{layer}:experts-def"),
            ))?;
            let def_xfer = sim.push(TaskSpec::work(
                RES_PCIE,
                cal.pcie_time(w.transfer_bytes, platform.pcie_gbs),
                vec![cpu_def],
                format!("L{layer}:def-d2h"),
            ))?;
            Some(def_xfer)
        } else {
            None
        };
        *deferred_in = deferred_new;
        *prev = Some(merge);
    }

    // Any deferral left at the last layer must complete before the LM
    // head (the paper disables deferral at the final layer; workloads
    // equivalently merge it here).
    let (hf, hb) = head_workload(cfg, tokens, gpu_prec);
    let mut deps = deps_of(prev);
    if let Some(d) = deferred_in.take() {
        deps.push(d);
    }
    let head = sim.push(TaskSpec::work(
        RES_GPU,
        cal.gpu_op_time(&platform.gpu, hf, hb, large),
        deps,
        "head",
    ))?;
    *prev = Some(head);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    fn ds3() -> ModelConfig {
        ModelPreset::DeepSeekV3.full_config()
    }

    fn run_decode(policy: &SystemPolicy) -> PhaseReport {
        simulate(
            policy,
            &Platform::a100_dual_xeon(),
            &ds3(),
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt: 32,
                steps: 8,
            },
            &Calibration::default(),
        )
        .unwrap()
    }

    fn run_prefill(policy: &SystemPolicy, prompt: usize) -> PhaseReport {
        simulate(
            policy,
            &Platform::a100_dual_xeon(),
            &ds3(),
            Precision::Bf16,
            Precision::Bf16,
            Phase::Prefill { prompt },
            &Calibration::default(),
        )
        .unwrap()
    }

    #[test]
    fn decode_ordering_matches_paper() {
        // Figure 12 (DS-3, A100 BF16): Fiddler < Llama.cpp < KT < KT+defer.
        let fiddler = run_decode(&SystemPolicy::fiddler()).tokens_per_s;
        let llama = run_decode(&SystemPolicy::llamacpp()).tokens_per_s;
        let kt = run_decode(&SystemPolicy::ktransformers()).tokens_per_s;
        let kt_def = run_decode(&SystemPolicy::ktransformers_deferred(3)).tokens_per_s;
        assert!(
            fiddler < llama && llama < kt && kt < kt_def,
            "fiddler={fiddler:.2} llama={llama:.2} kt={kt:.2} kt_def={kt_def:.2}"
        );
        // Absolute anchors (loose): Fiddler ~2-5 tok/s, KT ~5-9 tok/s.
        assert!(fiddler > 1.0 && fiddler < 6.0, "fiddler={fiddler}");
        assert!(kt > 4.0 && kt < 10.0, "kt={kt}");
        // Deferral gain bounded by the paper's observed range (<= 45%).
        let gain = kt_def / kt;
        assert!(gain > 1.1 && gain < 1.5, "gain={gain}");
    }

    #[test]
    fn decode_utilization_matches_figure10() {
        // §4.2: without deferral CPU ~74% / GPU ~28%; with 3 deferred
        // experts CPU approaches saturation.
        let kt = run_decode(&SystemPolicy::ktransformers());
        assert!(kt.cpu_util > 0.55 && kt.cpu_util < 0.9, "cpu={}", kt.cpu_util);
        assert!(kt.gpu_util > 0.1 && kt.gpu_util < 0.5, "gpu={}", kt.gpu_util);
        let kt_def = run_decode(&SystemPolicy::ktransformers_deferred(3));
        assert!(kt_def.cpu_util > kt.cpu_util);
        assert!(kt_def.cpu_util > 0.85, "cpu={}", kt_def.cpu_util);
        assert!(kt_def.gpu_util > kt.gpu_util);
    }

    #[test]
    fn fiddler_gpu_overhead_fraction_matches_figure4() {
        // Figure 4: launch overhead ~73% of Fiddler's GPU busy time and
        // ~21% of llama.cpp's; KT's graph mode eliminates it.
        let fiddler = run_decode(&SystemPolicy::fiddler());
        assert!(
            fiddler.gpu_overhead_frac > 0.5 && fiddler.gpu_overhead_frac < 0.9,
            "{}",
            fiddler.gpu_overhead_frac
        );
        let llama = run_decode(&SystemPolicy::llamacpp());
        assert!(
            llama.gpu_overhead_frac > 0.1 && llama.gpu_overhead_frac < 0.4,
            "{}",
            llama.gpu_overhead_frac
        );
        let kt = run_decode(&SystemPolicy::ktransformers());
        assert!(kt.gpu_overhead_frac < 0.02, "{}", kt.gpu_overhead_frac);
    }

    #[test]
    fn prefill_ordering_matches_paper() {
        // Figure 11: KT beats both baselines at all prompt lengths;
        // llama.cpp beats Fiddler at short prompts, Fiddler wins at long
        // prompts (oneDNN AMX).
        for prompt in [32usize, 8192] {
            let fiddler = run_prefill(&SystemPolicy::fiddler(), prompt).tokens_per_s;
            let llama = run_prefill(&SystemPolicy::llamacpp(), prompt).tokens_per_s;
            let kt = run_prefill(&SystemPolicy::ktransformers(), prompt).tokens_per_s;
            assert!(kt > fiddler && kt > llama, "prompt={prompt}");
            if prompt <= 32 {
                assert!(llama > fiddler, "short prompts favor llama.cpp");
            } else {
                assert!(fiddler > llama, "long prompts favor Fiddler's AMX");
            }
        }
    }

    #[test]
    fn prefill_anchor_fiddler_70_tokens_per_s() {
        // §1: the Fiddler-style baseline prefills DS-3 at ~70 tok/s.
        let fiddler = run_prefill(&SystemPolicy::fiddler(), 8192).tokens_per_s;
        assert!(fiddler > 35.0 && fiddler < 160.0, "fiddler={fiddler}");
    }

    #[test]
    fn prefill_speedup_in_paper_range() {
        // §1: 4.62-19.74x prefill speedups (here vs the weaker baseline
        // at this prompt length).
        let p = 8192;
        let kt = run_prefill(&SystemPolicy::ktransformers(), p).tokens_per_s;
        let base = run_prefill(&SystemPolicy::fiddler(), p)
            .tokens_per_s
            .min(run_prefill(&SystemPolicy::llamacpp(), p).tokens_per_s);
        let speedup = kt / base;
        assert!(speedup > 4.0 && speedup < 25.0, "speedup={speedup}");
    }

    #[test]
    fn breakdown_stages_are_monotonic_in_decode() {
        // Figure 14b: each added optimization should not hurt decode.
        let stages = SystemPolicy::breakdown_stages();
        let mut last = 0.0;
        for (i, s) in stages.iter().enumerate() {
            let t = run_decode(s).tokens_per_s;
            // AMX-over-AVX (stage 2) may tie in decode since the hybrid
            // picks AVX anyway; allow tiny regressions from noise-free
            // model differences.
            assert!(
                t >= last * 0.98,
                "stage {i} ({}) regressed: {t} < {last}",
                s.name
            );
            last = t;
        }
    }

    #[test]
    fn deferral_is_disabled_in_prefill() {
        let kt = run_prefill(&SystemPolicy::ktransformers(), 512).tokens_per_s;
        let kt_def = run_prefill(&SystemPolicy::ktransformers_deferred(3), 512).tokens_per_s;
        assert!((kt - kt_def).abs() / kt < 1e-9);
    }

    #[test]
    fn invalid_phases_error() {
        let p = SystemPolicy::ktransformers();
        let plat = Platform::a100_dual_xeon();
        let cal = Calibration::default();
        assert!(simulate(
            &p,
            &plat,
            &ds3(),
            Precision::Bf16,
            Precision::Bf16,
            Phase::Prefill { prompt: 0 },
            &cal
        )
        .is_err());
        assert!(simulate(
            &p,
            &plat,
            &ds3(),
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt: 0,
                steps: 0
            },
            &cal
        )
        .is_err());
    }

    #[test]
    fn weight_offloading_is_pcie_bound() {
        // §2.1: compute offloading beats shipping weights over PCIe by
        // roughly the DRAM-vs-PCIe bandwidth ratio.
        let weight = run_decode(&SystemPolicy::weight_offloading()).tokens_per_s;
        let compute = run_decode(&SystemPolicy::ktransformers()).tokens_per_s;
        let adv = compute / weight;
        assert!(adv > 5.0 && adv < 20.0, "advantage={adv}");
        // Sanity: the PCIe-bound rate is near bytes/bandwidth: 58 layers
        // x 704 MB / 32 GB/s ~ 1.28 s/token.
        assert!(weight > 0.4 && weight < 1.5, "weight={weight}");
    }

    #[test]
    fn quantized_decode_is_faster() {
        // Quantization shrinks the streamed bytes, so decode speeds up.
        let plat = Platform::rtx4080_dual_xeon();
        let cal = Calibration::default();
        let cfg = ds3();
        let run = |prec: Precision| {
            simulate(
                &SystemPolicy::ktransformers(),
                &plat,
                &cfg,
                prec,
                prec,
                Phase::Decode {
                    prompt: 32,
                    steps: 4,
                },
                &cal,
            )
            .unwrap()
            .tokens_per_s
        };
        let bf16 = run(Precision::Bf16);
        let int4 = run(Precision::Int4);
        assert!(int4 > bf16 * 2.0, "int4={int4} bf16={bf16}");
    }
}
