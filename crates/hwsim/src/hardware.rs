//! Hardware platform descriptions, with presets matching §6.1.

/// CPU-side description of the platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// NUMA sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Theoretical AMX BF16 peak per socket, TFLOPS (§2.2: 73.7).
    pub amx_peak_tflops: f64,
    /// Achievable AVX-512 throughput per socket at high ARI, TFLOPS
    /// (§2.2 / Figure 3: ~1.8).
    pub avx512_tflops: f64,
    /// Intra-socket DRAM bandwidth, GB/s (§6.1: 220).
    pub local_bw_gbs: f64,
    /// Cross-socket bandwidth, GB/s (§6.1: 125).
    pub remote_bw_gbs: f64,
}

impl CpuSpec {
    /// Dual Intel Xeon Platinum 8452Y (the paper's testbed).
    pub fn dual_xeon_8452y() -> Self {
        CpuSpec {
            sockets: 2,
            cores_per_socket: 36,
            amx_peak_tflops: 73.7,
            avx512_tflops: 1.8,
            local_bw_gbs: 220.0,
            remote_bw_gbs: 125.0,
        }
    }

    /// Total DRAM bandwidth when every socket streams only local memory
    /// (the NUMA-aware case).
    pub fn total_local_bw_gbs(&self) -> f64 {
        self.local_bw_gbs * self.sockets as f64
    }

    /// Effective total bandwidth when placement is NUMA-oblivious: each
    /// socket's accesses are split evenly between local and remote
    /// memory, so per-socket throughput is the harmonic mean of the two
    /// link speeds.
    pub fn total_oblivious_bw_gbs(&self) -> f64 {
        if self.sockets == 1 {
            return self.local_bw_gbs;
        }
        let harmonic = 2.0 / (1.0 / self.local_bw_gbs + 1.0 / self.remote_bw_gbs);
        harmonic * self.sockets as f64
    }
}

/// GPU description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Dense BF16/FP16 tensor throughput, TFLOPS.
    pub tflops: f64,
    /// HBM bandwidth, GB/s.
    pub hbm_gbs: f64,
    /// VRAM capacity, GB.
    pub vram_gb: f64,
}

impl GpuSpec {
    /// NVIDIA A100 40 GB (server-grade GPU of §6.1).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            tflops: 312.0,
            hbm_gbs: 1555.0,
            vram_gb: 40.0,
        }
    }

    /// NVIDIA RTX 4080 16 GB (consumer-grade GPU of §6.1).
    pub fn rtx_4080() -> Self {
        GpuSpec {
            tflops: 97.0,
            hbm_gbs: 717.0,
            vram_gb: 16.0,
        }
    }
}

/// Full platform: CPUs + one GPU + the PCIe link between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// CPU-side spec.
    pub cpu: CpuSpec,
    /// GPU spec.
    pub gpu: GpuSpec,
    /// PCIe bandwidth, GB/s (§6.1: PCIe 4.0 x16 = 32).
    pub pcie_gbs: f64,
}

impl Platform {
    /// The paper's server configuration: dual Xeon + A100.
    pub fn a100_dual_xeon() -> Self {
        Platform {
            cpu: CpuSpec::dual_xeon_8452y(),
            gpu: GpuSpec::a100_40gb(),
            pcie_gbs: 32.0,
        }
    }

    /// The paper's consumer configuration: dual Xeon + RTX 4080.
    pub fn rtx4080_dual_xeon() -> Self {
        Platform {
            cpu: CpuSpec::dual_xeon_8452y(),
            gpu: GpuSpec::rtx_4080(),
            pcie_gbs: 32.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_section_6_1() {
        let p = Platform::a100_dual_xeon();
        assert_eq!(p.cpu.sockets, 2);
        assert_eq!(p.cpu.cores_per_socket, 36);
        assert_eq!(p.cpu.local_bw_gbs, 220.0);
        assert_eq!(p.cpu.remote_bw_gbs, 125.0);
        assert_eq!(p.pcie_gbs, 32.0);
        assert_eq!(p.gpu.vram_gb, 40.0);
        let c = Platform::rtx4080_dual_xeon();
        assert_eq!(c.gpu.vram_gb, 16.0);
        assert!(c.gpu.tflops < p.gpu.tflops);
    }

    #[test]
    fn numa_oblivious_bandwidth_is_lower() {
        let cpu = CpuSpec::dual_xeon_8452y();
        let aware = cpu.total_local_bw_gbs();
        let oblivious = cpu.total_oblivious_bw_gbs();
        assert_eq!(aware, 440.0);
        assert!(oblivious < aware);
        // Harmonic mean of 220/125 is ~159.4 per socket.
        assert!((oblivious - 318.8).abs() < 1.0, "{oblivious}");
        // §3.3: up to 1.63x decode speedup from NUMA awareness; the pure
        // bandwidth ratio gives ~1.38x, the rest comes from sync costs.
        assert!(aware / oblivious > 1.3);
    }

    #[test]
    fn single_socket_has_no_numa_penalty() {
        let mut cpu = CpuSpec::dual_xeon_8452y();
        cpu.sockets = 1;
        assert_eq!(cpu.total_oblivious_bw_gbs(), cpu.local_bw_gbs);
    }
}
