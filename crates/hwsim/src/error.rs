//! Error type for the simulator.

use std::fmt;

/// Errors produced when building or running simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task graph is malformed (bad resource id, forward dependency).
    Graph {
        /// Human-readable description.
        what: String,
    },
    /// An experiment configuration is invalid.
    Config {
        /// Human-readable description.
        what: String,
    },
}

impl SimError {
    /// Convenience constructor for [`SimError::Graph`].
    pub fn graph(what: impl Into<String>) -> Self {
        SimError::Graph { what: what.into() }
    }

    /// Convenience constructor for [`SimError::Config`].
    pub fn config(what: impl Into<String>) -> Self {
        SimError::Config { what: what.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Graph { what } => write!(f, "invalid task graph: {what}"),
            SimError::Config { what } => write!(f, "invalid sim config: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SimError::graph("dep 5 >= task 3").to_string().contains("dep 5"));
        assert!(SimError::config("no layers").to_string().contains("no layers"));
    }
}
