//! Multi-GPU pipelined prefill and batched decode.
//!
//! §5 lists multi-GPU pipelining among the deployments the injection
//! framework enables. This module models it: transformer layers are
//! partitioned contiguously across GPUs and the prompt is processed in
//! chunks, so chunk `c` can run layer-group `g+1` while chunk `c+1`
//! occupies group `g`. Two dependencies bound the pipeline: a chunk
//! must traverse layers in order, and — because attention reads the KV
//! cache of every earlier position — chunk `c` must finish a layer
//! before chunk `c+1` may run it.
//!
//! Batched decode extends the decode model to small batch sizes: the
//! expert weight traffic is amortized over the batch (the bandwidth
//! term stays flat while useful FLOPs grow), which is exactly why MoE
//! decode throughput scales well until the compute roofline bites.

use kt_model::ModelConfig;

use crate::cost::{Calibration, CpuMoeOp, KernelPhase};
use crate::desim::{Sim, SimResult, TaskSpec};
use crate::error::SimError;
use crate::hardware::Platform;
use crate::policy::{PhaseReport, SystemPolicy};
use crate::workload::{dense_layer_workload, head_workload, moe_layer_workload, Precision};

/// Result of a pipelined prefill simulation.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Prefill throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Utilization of each GPU.
    pub gpu_utils: Vec<f64>,
    /// CPU utilization.
    pub cpu_util: f64,
    /// Raw simulation result.
    pub result: SimResult,
}

/// Simulates chunked prefill with layers partitioned across `n_gpus`.
///
/// # Errors
///
/// Returns [`SimError::Config`] on an empty prompt, zero chunk size or
/// zero GPUs.
#[allow(clippy::too_many_arguments)]
pub fn simulate_prefill_pipeline(
    policy: &SystemPolicy,
    platform: &Platform,
    cfg: &ModelConfig,
    precision: Precision,
    prompt: usize,
    n_gpus: usize,
    chunk: usize,
    cal: &Calibration,
) -> Result<PipelineReport, SimError> {
    if prompt == 0 || chunk == 0 {
        return Err(SimError::config("prompt and chunk must be nonzero"));
    }
    if n_gpus == 0 {
        return Err(SimError::config("need at least one GPU"));
    }
    // Resources: 0 = CPU, 1..=n_gpus = GPUs, n_gpus + 1 = PCIe.
    let res_cpu = 0usize;
    let res_pcie = n_gpus + 1;
    let mut sim = Sim::new(n_gpus + 2);

    let layers_per_gpu = cfg.n_layers.div_ceil(n_gpus);
    let gpu_of = |layer: usize| 1 + (layer / layers_per_gpu).min(n_gpus - 1);

    let n_chunks = prompt.div_ceil(chunk);
    // Tasks are submitted in WAVEFRONT order (anti-diagonals of the
    // chunk x layer grid): resources execute FIFO, so submission order
    // must match a feasible pipeline schedule or chunk 1 would
    // head-of-line block behind chunk 0's stalled tail.
    let mut prev_of_chunk: Vec<Option<usize>> = vec![None; n_chunks];
    let mut prev_chunk_layer_end: Vec<Option<usize>> = vec![None; cfg.n_layers];
    #[allow(clippy::needless_range_loop)] // c indexes two arrays plus arithmetic
    for wave in 0..(n_chunks + cfg.n_layers - 1) {
        for c in 0..=wave.min(n_chunks - 1) {
            let layer = wave - c;
            if layer >= cfg.n_layers {
                continue;
            }
            let tokens = chunk.min(prompt - c * chunk);
            let ctx = c * chunk;
            let gpu_res = gpu_of(layer);
            let mut deps: Vec<usize> = prev_of_chunk[c].iter().copied().collect();
            if let Some(d) = prev_chunk_layer_end[layer] {
                deps.push(d);
            }
            let launch = sim.push(TaskSpec::overhead(
                gpu_res,
                if policy.cuda_graph {
                    cal.graph_replay_layer_s
                } else {
                    policy.launches_per_layer * policy.launch_latency_s
                },
                deps,
                format!("c{c}L{layer}:launch"),
            ))?;
            let end = if layer < cfg.n_dense_layers {
                let w = dense_layer_workload(cfg, tokens, ctx, precision);
                let attn = sim.push(TaskSpec::work(
                    gpu_res,
                    cal.gpu_op_time(&platform.gpu, w.attn_flops, w.attn_bytes, true),
                    vec![launch],
                    format!("c{c}L{layer}:attn"),
                ))?;
                sim.push(TaskSpec::work(
                    gpu_res,
                    cal.gpu_op_time(&platform.gpu, w.shared_flops, w.shared_bytes, true),
                    vec![attn],
                    format!("c{c}L{layer}:mlp"),
                ))?
            } else {
                let w = moe_layer_workload(cfg, tokens, ctx, precision, precision);
                let attn = sim.push(TaskSpec::work(
                    gpu_res,
                    cal.gpu_op_time(&platform.gpu, w.attn_flops, w.attn_bytes, true),
                    vec![launch],
                    format!("c{c}L{layer}:attn"),
                ))?;
                let xfer = sim.push(TaskSpec::work(
                    res_pcie,
                    cal.pcie_time(w.transfer_bytes, platform.pcie_gbs),
                    vec![attn],
                    format!("c{c}L{layer}:h2d"),
                ))?;
                let op = CpuMoeOp {
                    tokens_per_expert: w.tokens_per_expert,
                    n_active_experts: w.n_active_experts,
                    flops: w.routed_flops,
                    bytes: w.routed_bytes,
                };
                let cpu = sim.push(TaskSpec::work(
                    res_cpu,
                    cal.cpu_moe_time(
                        policy.kernel_prefill,
                        &op,
                        &platform.cpu,
                        policy.numa_aware,
                        policy.dynamic_sched,
                        KernelPhase::Prefill,
                    ),
                    vec![xfer],
                    format!("c{c}L{layer}:experts"),
                ))?;
                let shared = sim.push(TaskSpec::work(
                    gpu_res,
                    cal.gpu_op_time(&platform.gpu, w.shared_flops, w.shared_bytes, true),
                    vec![attn],
                    format!("c{c}L{layer}:shared"),
                ))?;
                let back = sim.push(TaskSpec::work(
                    res_pcie,
                    cal.pcie_time(w.transfer_bytes, platform.pcie_gbs),
                    vec![cpu],
                    format!("c{c}L{layer}:d2h"),
                ))?;
                sim.push(TaskSpec::work(
                    gpu_res,
                    1e-6,
                    vec![shared, back],
                    format!("c{c}L{layer}:merge"),
                ))?
            };
            prev_chunk_layer_end[layer] = Some(end);
            prev_of_chunk[c] = Some(end);
            if layer + 1 == cfg.n_layers {
                let (hf, hb) = head_workload(cfg, tokens, precision);
                let head = sim.push(TaskSpec::work(
                    gpu_res,
                    cal.gpu_op_time(&platform.gpu, hf, hb, true),
                    vec![end],
                    format!("c{c}:head"),
                ))?;
                prev_of_chunk[c] = Some(head);
            }
        }
    }
    // Out-of-order resources: each GPU runs chunks on separate streams,
    // and the CPU pool / PCIe engines serve whichever chunk is ready.
    let result = sim.run_out_of_order();
    let tokens_per_s = prompt as f64 / result.makespan;
    Ok(PipelineReport {
        tokens_per_s,
        gpu_utils: (1..=n_gpus).map(|g| result.utilization(g)).collect(),
        cpu_util: result.utilization(res_cpu),
        result,
    })
}

/// Simulates decode at batch size `batch` (the paper evaluates batch 1;
/// this sweep shows where the CPU bandwidth amortizes).
///
/// # Errors
///
/// Returns [`SimError::Config`] on zero batch/steps.
#[allow(clippy::too_many_arguments)]
pub fn simulate_batch_decode(
    policy: &SystemPolicy,
    platform: &Platform,
    cfg: &ModelConfig,
    precision: Precision,
    prompt: usize,
    steps: usize,
    batch: usize,
    cal: &Calibration,
) -> Result<PhaseReport, SimError> {
    if batch == 0 || steps == 0 {
        return Err(SimError::config("batch and steps must be nonzero"));
    }
    let report = crate::policy::simulate_with_tokens(
        policy, platform, cfg, precision, precision, prompt, steps, batch, cal,
    )?;
    Ok(report)
}

/// One point of the KV-offload study: decode at a context length with
/// a VRAM-resident window of recent positions; evicted KV streams over
/// PCIe every step (§5 names KV-cache offloading among the framework's
/// techniques).
#[derive(Debug, Clone, Copy)]
pub struct KvOffloadPoint {
    /// Context length (positions in the cache).
    pub context: usize,
    /// Decode throughput with the full cache in VRAM.
    pub full_vram_tok_s: f64,
    /// Decode throughput with only `window` recent positions in VRAM.
    pub offloaded_tok_s: f64,
    /// VRAM bytes the full cache would need (all layers).
    pub full_cache_bytes: f64,
}

/// Sweeps decode throughput across context lengths, comparing a fully
/// VRAM-resident KV cache against a `window`-limited cache whose older
/// entries stream from host memory over PCIe each step.
///
/// # Errors
///
/// Returns [`SimError::Config`] on zero window.
pub fn kv_offload_decode_sweep(
    policy: &SystemPolicy,
    platform: &Platform,
    cfg: &ModelConfig,
    precision: Precision,
    window: usize,
    contexts: &[usize],
    cal: &Calibration,
) -> Result<Vec<KvOffloadPoint>, SimError> {
    if window == 0 {
        return Err(SimError::config("window must be nonzero"));
    }
    // KV caches stay BF16 even in weight-quantized deployments.
    let row_bytes = crate::workload::kv_row_bytes(cfg, 2.0);
    let mut out = Vec::new();
    for &ctx in contexts {
        let full = crate::policy::simulate(
            policy,
            platform,
            cfg,
            precision,
            precision,
            crate::policy::Phase::Decode {
                prompt: ctx,
                steps: 4,
            },
            cal,
        )?;
        // Offloaded: every decode step must additionally stream the
        // evicted positions' KV rows for every layer over PCIe.
        let evicted = ctx.saturating_sub(window) as f64;
        let extra_pcie_per_step =
            evicted * row_bytes * cfg.n_layers as f64 / (platform.pcie_gbs * 1e9);
        let per_token_full = 1.0 / full.tokens_per_s;
        // PCIe streaming overlaps GPU compute only partially; charge it
        // serially (worst case) — the comparison is about orders of
        // magnitude.
        let offloaded_tok_s = 1.0 / (per_token_full + extra_pcie_per_step);
        out.push(KvOffloadPoint {
            context: ctx,
            full_vram_tok_s: full.tokens_per_s,
            offloaded_tok_s,
            full_cache_bytes: ctx as f64 * row_bytes * cfg.n_layers as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    fn setup() -> (SystemPolicy, Platform, ModelConfig, Calibration) {
        (
            SystemPolicy::ktransformers(),
            Platform::a100_dual_xeon(),
            ModelPreset::DeepSeekV3.full_config(),
            Calibration::default(),
        )
    }

    #[test]
    fn pipeline_inputs_are_validated() {
        let (p, plat, cfg, cal) = setup();
        assert!(
            simulate_prefill_pipeline(&p, &plat, &cfg, Precision::Bf16, 0, 1, 128, &cal).is_err()
        );
        assert!(
            simulate_prefill_pipeline(&p, &plat, &cfg, Precision::Bf16, 128, 0, 128, &cal)
                .is_err()
        );
        assert!(
            simulate_prefill_pipeline(&p, &plat, &cfg, Precision::Bf16, 128, 1, 0, &cal).is_err()
        );
    }

    #[test]
    fn single_gpu_single_chunk_matches_plain_prefill_closely() {
        let (p, plat, cfg, cal) = setup();
        let pipe =
            simulate_prefill_pipeline(&p, &plat, &cfg, Precision::Bf16, 2048, 1, 2048, &cal)
                .unwrap();
        let plain = crate::policy::simulate(
            &p,
            &plat,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            crate::policy::Phase::Prefill { prompt: 2048 },
            &cal,
        )
        .unwrap();
        let ratio = pipe.tokens_per_s / plain.tokens_per_s;
        assert!(
            (0.8..1.25).contains(&ratio),
            "pipe {} vs plain {}",
            pipe.tokens_per_s,
            plain.tokens_per_s
        );
    }

    #[test]
    fn two_gpus_help_gpu_bound_deployments_only() {
        let (p, plat, cfg, cal) = setup();
        // DS-3 prefill is CPU-bound (the routed experts dominate), so a
        // second GPU cannot help — the pipeline model must reflect that.
        let one =
            simulate_prefill_pipeline(&p, &plat, &cfg, Precision::Bf16, 8192, 1, 1024, &cal)
                .unwrap();
        let two =
            simulate_prefill_pipeline(&p, &plat, &cfg, Precision::Bf16, 8192, 2, 1024, &cal)
                .unwrap();
        assert!(two.tokens_per_s < one.tokens_per_s * 1.1, "CPU-bound: no gain");

        // QW-2 on an RTX 4080 with a strong 4-socket CPU is GPU-bound
        // (20480-wide shared experts on a consumer GPU); there,
        // pipelining two GPUs pays off.
        let qw = ModelPreset::Qwen2Moe.full_config();
        let mut plat4080 = Platform::rtx4080_dual_xeon();
        plat4080.cpu.sockets = 4;
        let one = simulate_prefill_pipeline(
            &p, &plat4080, &qw, Precision::Bf16, 8192, 1, 1024, &cal,
        )
        .unwrap();
        let two = simulate_prefill_pipeline(
            &p, &plat4080, &qw, Precision::Bf16, 8192, 2, 1024, &cal,
        )
        .unwrap();
        assert!(
            two.tokens_per_s > one.tokens_per_s * 1.15,
            "GPU-bound: two GPUs {} should beat one {}",
            two.tokens_per_s,
            one.tokens_per_s
        );
        assert_eq!(two.gpu_utils.len(), 2);
    }

    #[test]
    fn kv_offload_costs_grow_with_evicted_context() {
        let (p, plat, cfg, cal) = setup();
        let points = kv_offload_decode_sweep(
            &p,
            &plat,
            &cfg,
            Precision::Bf16,
            4096,
            &[1024, 8192, 16384],
            &cal,
        )
        .unwrap();
        // Inside the window, offloading is free.
        assert!((points[0].offloaded_tok_s - points[0].full_vram_tok_s).abs() < 1e-9);
        // Beyond it, throughput degrades, monotonically with context.
        assert!(points[1].offloaded_tok_s < points[1].full_vram_tok_s);
        let slow1 = points[1].offloaded_tok_s / points[1].full_vram_tok_s;
        let slow2 = points[2].offloaded_tok_s / points[2].full_vram_tok_s;
        assert!(slow2 < slow1, "more evicted context hurts more");
        // MLA keeps even 16k contexts cheap: the full cache is < 1 GB.
        assert!(points[2].full_cache_bytes < 1.5e9);
        assert!(kv_offload_decode_sweep(
            &p, &plat, &cfg, Precision::Bf16, 0, &[64], &cal
        )
        .is_err());
    }

    #[test]
    fn batch_decode_amortizes_weight_traffic() {
        let (p, plat, cfg, cal) = setup();
        let run = |batch: usize| {
            simulate_batch_decode(&p, &plat, &cfg, Precision::Bf16, 32, 4, batch, &cal)
                .unwrap()
                .tokens_per_s
        };
        let b1 = run(1);
        let b8 = run(8);
        let b64 = run(64);
        // Throughput grows with batch — slowly at first for DS-3 (256
        // experts mean little weight reuse at small batches: 8 tokens x
        // top-8 hit ~57 distinct experts), then faster as the expert
        // pool saturates.
        assert!(b8 > b1 * 1.2, "b1={b1} b8={b8}");
        assert!(b64 > b1 * 3.0, "b1={b1} b64={b64}");
        // ...but far sublinearly (distinct experts per step grow too).
        assert!(b64 < b1 * 64.0, "b64 must be sublinear");
    }
}
