//! Series builders for every table and figure of the paper's
//! evaluation, consumed by the `kt-bench` regeneration binaries.

use kt_model::{ModelConfig, ModelPreset};

use crate::cost::{Calibration, CpuKernel, CpuMoeOp, KernelPhase};
use crate::error::SimError;
use crate::hardware::{CpuSpec, Platform};
use crate::policy::{simulate, Phase, PhaseReport, SystemPolicy};
use crate::workload::Precision;

/// One point of a named series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// X value (tokens per expert, prompt length, ...).
    pub x: f64,
    /// Y value (TFLOPS, tokens/s, ms, ...).
    pub y: f64,
}

/// A labeled series of points.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedSeries {
    /// Series label (system or kernel name).
    pub name: String,
    /// The data points.
    pub points: Vec<SeriesPoint>,
}

/// The GPU/precision deployments of §6.1, per model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deployment {
    /// Model under test.
    pub model: ModelPreset,
    /// Whether this is the A100 (true) or RTX 4080 (false) setup.
    pub a100: bool,
    /// Weight precision for this deployment.
    pub precision: Precision,
}

impl Deployment {
    /// The six deployments of the evaluation: every model on the A100
    /// at BF16 and on the RTX 4080 at its §6.1 quantization.
    pub fn all() -> Vec<Deployment> {
        let mut v = Vec::new();
        for model in ModelPreset::all() {
            v.push(Deployment {
                model,
                a100: true,
                precision: Precision::Bf16,
            });
            let precision = match model {
                ModelPreset::DeepSeekV3 => Precision::Int4,
                _ => Precision::Int8,
            };
            v.push(Deployment {
                model,
                a100: false,
                precision,
            });
        }
        v
    }

    /// Platform for this deployment.
    pub fn platform(&self) -> Platform {
        if self.a100 {
            Platform::a100_dual_xeon()
        } else {
            Platform::rtx4080_dual_xeon()
        }
    }

    /// Display label ("DS-3 / A100 / BF16").
    pub fn label(&self) -> String {
        format!(
            "{} / {} / {}",
            self.model.short_name(),
            if self.a100 { "A100" } else { "RTX4080" },
            self.precision.label()
        )
    }

    fn config(&self) -> ModelConfig {
        self.model.full_config()
    }
}

/// Figure 3: single-socket MoE-layer throughput (TFLOPS) vs tokens per
/// expert, for PyTorch-AMX (oneDNN), PyTorch-AVX512 and the KT AMX
/// kernel, on the DS-3 MoE layer.
pub fn fig3_kernel_throughput(cal: &Calibration) -> Vec<NamedSeries> {
    let mut cpu = CpuSpec::dual_xeon_8452y();
    cpu.sockets = 1;
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let xs: Vec<f64> = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&v| v as f64)
        .collect();
    let kernels = [
        ("PyTorch AMX (oneDNN)", CpuKernel::TorchAmx),
        ("PyTorch AVX-512", CpuKernel::TorchAvx512),
        ("KTransformers AMX", CpuKernel::KtAmx),
    ];
    kernels
        .iter()
        .map(|(name, k)| NamedSeries {
            name: (*name).into(),
            points: xs
                .iter()
                .map(|&m| {
                    let op = moe_op(&cfg, m);
                    let phase = if m > 4.0 {
                        KernelPhase::Prefill
                    } else {
                        KernelPhase::Decode
                    };
                    SeriesPoint {
                        x: m,
                        y: cal.cpu_moe_tflops(*k, &op, &cpu, true, phase),
                    }
                })
                .collect(),
        })
        .collect()
}

fn moe_op(cfg: &ModelConfig, tokens_per_expert: f64) -> CpuMoeOp {
    let h = cfg.hidden as f64;
    let mi = cfg.moe_inter as f64;
    let n = cfg.n_routed_experts as f64;
    CpuMoeOp {
        tokens_per_expert,
        n_active_experts: n,
        flops: tokens_per_expert * n * 3.0 * 2.0 * h * mi,
        bytes: n * 3.0 * h * mi * 2.0,
    }
}

/// One row of Figure 4's launch-overhead analysis.
#[derive(Debug, Clone)]
pub struct LaunchRow {
    /// System name.
    pub system: String,
    /// Kernel launches per decoded token.
    pub launches_per_token: f64,
    /// Average launch latency in microseconds.
    pub launch_latency_us: f64,
    /// Fraction of GPU busy time spent on launch/sync overhead.
    pub gpu_overhead_frac: f64,
}

/// Figure 4: kernel-launch analysis of DS-3 decode under Fiddler,
/// llama.cpp and KTransformers.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig4_launch_analysis(cal: &Calibration) -> Result<Vec<LaunchRow>, SimError> {
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let platform = Platform::a100_dual_xeon();
    let mut rows = Vec::new();
    for policy in [
        SystemPolicy::fiddler(),
        SystemPolicy::llamacpp(),
        SystemPolicy::ktransformers(),
    ] {
        let rep = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt: 32,
                steps: 8,
            },
            cal,
        )?;
        rows.push(LaunchRow {
            system: policy.name.clone(),
            launches_per_token: if policy.cuda_graph {
                cfg.n_layers as f64 // one graph-replay node per layer
            } else {
                policy.launches_per_layer * cfg.n_layers as f64
            },
            launch_latency_us: policy.launch_latency_s * 1e6,
            gpu_overhead_frac: rep.gpu_overhead_frac,
        });
    }
    Ok(rows)
}

/// Figure 7: MoE-layer latency (ms) of the KT AMX vs AVX-512 kernels at
/// low tokens-per-expert, for each model.
pub fn fig7_kernel_latency(cal: &Calibration) -> Vec<(String, Vec<NamedSeries>)> {
    let cpu = CpuSpec::dual_xeon_8452y();
    let xs = [1.0f64, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0];
    ModelPreset::all()
        .iter()
        .map(|preset| {
            let cfg = preset.full_config();
            let series = [("AMX kernel", CpuKernel::KtAmx), ("AVX-512 kernel", CpuKernel::KtAvx512)]
                .iter()
                .map(|(name, k)| NamedSeries {
                    name: (*name).into(),
                    points: xs
                        .iter()
                        .map(|&m| {
                            let op = moe_op(&cfg, m);
                            let phase = if m > 4.0 {
                                KernelPhase::Prefill
                            } else {
                                KernelPhase::Decode
                            };
                            SeriesPoint {
                                x: m,
                                y: cal.cpu_moe_time(*k, &op, &cpu, true, true, phase) * 1e3,
                            }
                        })
                        .collect(),
                })
                .collect();
            (preset.short_name().to_string(), series)
        })
        .collect()
}

/// One row of the Figure 10 deferral-configuration study.
#[derive(Debug, Clone)]
pub struct DeferRow {
    /// Deferred experts per layer.
    pub n_deferred: usize,
    /// CPU utilization.
    pub cpu_util: f64,
    /// GPU utilization.
    pub gpu_util: f64,
    /// Decode throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Per-token time relative to no deferral (1.0 = baseline).
    pub relative_time: f64,
}

/// Figure 10: CPU/GPU utilization and execution time for 0/2/3/4
/// deferred experts (DS-3, BF16, A100).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig10_deferral_study(cal: &Calibration) -> Result<Vec<DeferRow>, SimError> {
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let platform = Platform::a100_dual_xeon();
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    for n_def in [0usize, 2, 3, 4] {
        let policy = if n_def == 0 {
            SystemPolicy::ktransformers()
        } else {
            SystemPolicy::ktransformers_deferred(n_def)
        };
        let rep = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt: 32,
                steps: 8,
            },
            cal,
        )?;
        if n_def == 0 {
            baseline = rep.tokens_per_s;
        }
        rows.push(DeferRow {
            n_deferred: n_def,
            cpu_util: rep.cpu_util,
            gpu_util: rep.gpu_util,
            tokens_per_s: rep.tokens_per_s,
            relative_time: baseline / rep.tokens_per_s,
        });
    }
    Ok(rows)
}

/// Figure 11: prefill throughput vs prompt length for each deployment
/// and system.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig11_prefill(
    cal: &Calibration,
    prompts: &[usize],
) -> Result<Vec<(Deployment, Vec<NamedSeries>)>, SimError> {
    let mut out = Vec::new();
    for dep in Deployment::all() {
        let cfg = dep.config();
        let platform = dep.platform();
        let mut series = Vec::new();
        for policy in [
            SystemPolicy::fiddler(),
            SystemPolicy::llamacpp(),
            SystemPolicy::ktransformers(),
        ] {
            // The paper compares quantized deployments against
            // llama.cpp only (Fiddler lacks quantized kernels); keep
            // all three for completeness.
            let mut points = Vec::new();
            for &p in prompts {
                let rep = simulate(
                    &policy,
                    &platform,
                    &cfg,
                    dep.precision,
                    dep.precision,
                    Phase::Prefill { prompt: p },
                    cal,
                )?;
                points.push(SeriesPoint {
                    x: p as f64,
                    y: rep.tokens_per_s,
                });
            }
            series.push(NamedSeries {
                name: policy.name.clone(),
                points,
            });
        }
        out.push((dep, series));
    }
    Ok(out)
}

/// Deferred-expert counts used in §6.3 per (model, quantized?) pair.
pub fn paper_deferral_config(model: ModelPreset, quantized: bool) -> usize {
    match (model, quantized) {
        (ModelPreset::DeepSeekV3, false) => 3,
        (ModelPreset::DeepSeekV3, true) => 6,
        (ModelPreset::DeepSeekV2, _) => 4,
        (ModelPreset::Qwen2Moe, false) => 2,
        (ModelPreset::Qwen2Moe, true) => 4,
    }
}

/// Figure 12: decode throughput for each deployment and system,
/// including KTransformers with the paper's per-model deferral configs.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig12_decode(cal: &Calibration) -> Result<Vec<(Deployment, Vec<NamedSeries>)>, SimError> {
    let mut out = Vec::new();
    for dep in Deployment::all() {
        let cfg = dep.config();
        let platform = dep.platform();
        let n_def = paper_deferral_config(dep.model, dep.precision != Precision::Bf16);
        let policies = vec![
            SystemPolicy::fiddler(),
            SystemPolicy::llamacpp(),
            SystemPolicy::ktransformers(),
            SystemPolicy::ktransformers_deferred(n_def),
        ];
        let mut series = Vec::new();
        for policy in policies {
            let rep = simulate(
                &policy,
                &platform,
                &cfg,
                dep.precision,
                dep.precision,
                Phase::Decode {
                    prompt: 32,
                    steps: 16,
                },
                cal,
            )?;
            series.push(NamedSeries {
                name: policy.name.clone(),
                points: vec![SeriesPoint {
                    x: 0.0,
                    y: rep.tokens_per_s,
                }],
            });
        }
        out.push((dep, series));
    }
    Ok(out)
}

/// One model's Figure 14 rows: `(model, [(stage, prefill speedup,
/// decode speedup)])`.
pub type BreakdownRows = (String, Vec<(String, f64, f64)>);

/// Figure 14: normalized speedup over the Fiddler baseline as the
/// optimizations v/m/d/n/c are merged cumulatively, for prefill
/// (prompt 8192) and decode, per model (BF16, A100).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig14_breakdown(cal: &Calibration) -> Result<Vec<BreakdownRows>, SimError> {
    let platform = Platform::a100_dual_xeon();
    let mut out = Vec::new();
    for preset in ModelPreset::all() {
        let cfg = preset.full_config();
        let stages = SystemPolicy::breakdown_stages();
        let mut base_prefill = 0.0;
        let mut base_decode = 0.0;
        let mut rows = Vec::new();
        for (i, policy) in stages.iter().enumerate() {
            let pre = simulate(
                policy,
                &platform,
                &cfg,
                Precision::Bf16,
                Precision::Bf16,
                Phase::Prefill { prompt: 8192 },
                cal,
            )?
            .tokens_per_s;
            let dec = simulate(
                policy,
                &platform,
                &cfg,
                Precision::Bf16,
                Precision::Bf16,
                Phase::Decode {
                    prompt: 32,
                    steps: 8,
                },
                cal,
            )?
            .tokens_per_s;
            if i == 0 {
                base_prefill = pre;
                base_decode = dec;
            }
            rows.push((policy.name.clone(), pre / base_prefill, dec / base_decode));
        }
        out.push((preset.short_name().to_string(), rows));
    }
    Ok(out)
}

/// §3.3 / §6.4 ablation: decode throughput with NUMA-aware tensor
/// parallelism vs a NUMA-oblivious baseline, plus the §2.3 single-layer
/// latencies.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn ablation_numa(cal: &Calibration) -> Result<Vec<(String, f64)>, SimError> {
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let platform = Platform::a100_dual_xeon();
    let mut rows = Vec::new();
    for (name, aware) in [("NUMA-oblivious", false), ("NUMA-aware TP", true)] {
        let mut policy = SystemPolicy::ktransformers();
        policy.numa_aware = aware;
        let rep = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt: 32,
                steps: 8,
            },
            cal,
        )?;
        rows.push((name.to_string(), rep.tokens_per_s));
    }
    Ok(rows)
}

/// §3.3 ablation: decode throughput with and without the single-graph
/// CUDA Graph design (paper: up to 1.23x).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn ablation_graph(cal: &Calibration) -> Result<Vec<(String, f64)>, SimError> {
    let cfg = ModelPreset::DeepSeekV3.full_config();
    let platform = Platform::a100_dual_xeon();
    let mut rows = Vec::new();
    for (name, graph) in [("per-op launches", false), ("single CUDA Graph", true)] {
        let mut policy = SystemPolicy::ktransformers();
        policy.cuda_graph = graph;
        let rep = simulate(
            &policy,
            &platform,
            &cfg,
            Precision::Bf16,
            Precision::Bf16,
            Phase::Decode {
                prompt: 32,
                steps: 8,
            },
            cal,
        )?;
        rows.push((name.to_string(), rep.tokens_per_s));
    }
    Ok(rows)
}

/// Zipf coverage: fraction of activation mass captured by the `top_n`
/// most popular of `n_experts` experts when popularity follows a
/// Zipf(`s`) law (`s = 0` is uniform routing, larger `s` = more skew).
pub fn zipf_coverage(n_experts: usize, top_n: usize, s: f64) -> f64 {
    if n_experts == 0 {
        return 0.0;
    }
    let h = |n: usize| -> f64 { (1..=n).map(|k| (k as f64).powf(-s)).sum() };
    (h(top_n.min(n_experts)) / h(n_experts)).max(0.0)
}

/// One row of the popularity-placement study.
#[derive(Debug, Clone)]
pub struct PlacementRow {
    /// Experts pinned to the GPU per layer.
    pub n_pinned: usize,
    /// Fraction of routed activations they cover.
    pub coverage: f64,
    /// Decode throughput, tokens/s.
    pub tokens_per_s: f64,
    /// VRAM the pinned experts plus the resident model need, GB.
    pub vram_needed_gb: f64,
    /// Whether that fits the platform's GPU.
    pub vram_feasible: bool,
}

/// Popularity-placement study (§1's Fiddler-style path for models
/// without shared experts): with Zipf(`s`)-skewed routing, pin the top
/// `n_pinned` experts of every layer to the GPU and measure decode.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn placement_study(
    cal: &Calibration,
    preset: ModelPreset,
    zipf_s: f64,
    precision: Precision,
    pinned: &[usize],
) -> Result<Vec<PlacementRow>, SimError> {
    let cfg = preset.full_config();
    let platform = Platform::a100_dual_xeon();
    // VRAM accounting: the resident model (attention, shared experts,
    // embeddings, router) plus the pinned experts of every MoE layer.
    let bytes_per_w = precision.bytes_per_weight();
    let base_gb = cfg.gpu_params() as f64 * bytes_per_w / 1e9;
    let per_expert_gb = 3.0 * cfg.hidden as f64 * cfg.moe_inter as f64 * bytes_per_w
        * cfg.n_moe_layers() as f64
        / 1e9;
    let mut rows = Vec::new();
    for &n in pinned {
        let coverage = zipf_coverage(cfg.n_routed_experts, n, zipf_s);
        let mut policy = SystemPolicy::ktransformers();
        policy.gpu_pinned_coverage = coverage;
        let rep = simulate(
            &policy,
            &platform,
            &cfg,
            precision,
            precision,
            Phase::Decode {
                prompt: 32,
                steps: 8,
            },
            cal,
        )?;
        let vram_needed_gb = base_gb + n as f64 * per_expert_gb;
        rows.push(PlacementRow {
            n_pinned: n,
            coverage,
            tokens_per_s: rep.tokens_per_s,
            vram_needed_gb,
            vram_feasible: vram_needed_gb <= platform.gpu.vram_gb,
        });
    }
    Ok(rows)
}

/// Convenience wrapper: run one deployment/phase under one policy.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_deployment(
    dep: &Deployment,
    policy: &SystemPolicy,
    phase: Phase,
    cal: &Calibration,
) -> Result<PhaseReport, SimError> {
    simulate(
        policy,
        &dep.platform(),
        &dep.config(),
        dep.precision,
        dep.precision,
        phase,
        cal,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::default()
    }

    #[test]
    fn fig3_series_have_expected_shape() {
        let series = fig3_kernel_throughput(&cal());
        assert_eq!(series.len(), 3);
        for s in &series {
            // Throughput is non-decreasing with ARI until the plateau.
            let first = s.points.first().unwrap().y;
            let last = s.points.last().unwrap().y;
            assert!(last > first, "{}", s.name);
        }
        // KT-AMX plateau ~21.3, oneDNN ~5.4, torch-AVX <= 1.8.
        let plateau = |name: &str| {
            series
                .iter()
                .find(|s| s.name.contains(name))
                .unwrap()
                .points
                .last()
                .unwrap()
                .y
        };
        assert!((plateau("KTransformers") - 21.3).abs() < 2.5);
        assert!((plateau("oneDNN") - 5.4).abs() < 1.5);
        assert!(plateau("AVX-512") < 2.0);
    }

    #[test]
    fn fig4_rows_match_paper_shape() {
        let rows = fig4_launch_analysis(&cal()).unwrap();
        assert_eq!(rows.len(), 3);
        let fiddler = &rows[0];
        let llama = &rows[1];
        let kt = &rows[2];
        assert!(fiddler.launches_per_token > 6000.0);
        assert!((fiddler.launch_latency_us - 16.0).abs() < 1e-9);
        assert!(llama.launches_per_token > 2500.0 && llama.launches_per_token < 3500.0);
        assert!(fiddler.gpu_overhead_frac > llama.gpu_overhead_frac);
        assert!(llama.gpu_overhead_frac > kt.gpu_overhead_frac);
    }

    #[test]
    fn fig7_crossover_present_for_all_models() {
        for (model, series) in fig7_kernel_latency(&cal()) {
            let amx = &series[0];
            let avx = &series[1];
            // At 1 token/expert AVX wins; at 32 AMX wins.
            assert!(
                avx.points[0].y < amx.points[0].y,
                "{model}: AVX should win at ARI=1"
            );
            assert!(
                amx.points.last().unwrap().y < avx.points.last().unwrap().y,
                "{model}: AMX should win at ARI=32"
            );
        }
    }

    #[test]
    fn fig10_three_deferred_is_optimal() {
        let rows = fig10_deferral_study(&cal()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].n_deferred, 0);
        // Throughput at 3 deferred >= at 2 deferred; 4 gives no real
        // further benefit (§4.2).
        let by_def: Vec<f64> = rows.iter().map(|r| r.tokens_per_s).collect();
        assert!(by_def[2] >= by_def[1]);
        assert!(by_def[3] <= by_def[2] * 1.05);
        // Deferral saturates the CPU.
        assert!(rows[2].cpu_util > rows[0].cpu_util);
        // Paper: 33% end-to-end decode gain at 3 deferred (accept 15-45%).
        let gain = by_def[2] / by_def[0];
        assert!(gain > 1.15 && gain < 1.5, "gain={gain}");
    }

    #[test]
    fn fig12_speedups_in_paper_range() {
        let all = fig12_decode(&cal()).unwrap();
        assert_eq!(all.len(), 6);
        let mut gainful = 0;
        for (dep, series) in &all {
            let get = |name: &str| {
                series
                    .iter()
                    .find(|s| s.name == name)
                    .unwrap()
                    .points[0]
                    .y
            };
            let fiddler = get("Fiddler");
            let llama = get("Llama.cpp");
            let kt = get("KTransformers");
            assert!(kt > fiddler && kt > llama, "{}", dep.label());
            // §6.2: 2.42-4.09x over Fiddler, 1.25-1.93x over llama.cpp
            // (accept a widened band for the simulator).
            let vs_fiddler = kt / fiddler;
            let vs_llama = kt / llama;
            // The paper only benchmarks Fiddler on BF16 (it lacks
            // quantized kernels); on quantized deployments our simulated
            // Fiddler is dominated by its per-layer Python overhead, so
            // the band is wider there.
            let fiddler_band = if dep.precision == Precision::Bf16 {
                (1.5, 6.0)
            } else {
                (1.5, 9.0)
            };
            assert!(
                vs_fiddler > fiddler_band.0 && vs_fiddler < fiddler_band.1,
                "{}: vs fiddler {vs_fiddler}",
                dep.label()
            );
            assert!(
                vs_llama > 1.1 && vs_llama < 2.5,
                "{}: vs llama {vs_llama}",
                dep.label()
            );
            // Deferral never hurts and adds up to ~45% in the paper;
            // our simulator over-rewards the extreme Int4 configuration
            // and finds the QW-2/RTX4080 deployment GPU-bound (no CPU
            // idle to reclaim), so the accepted band is wider
            // (documented in EXPERIMENTS.md).
            let deferred = series.last().unwrap().points[0].y;
            let gain = deferred / kt;
            assert!((0.999..1.75).contains(&gain), "{}: defer gain {gain}", dep.label());
            if gain > 1.05 {
                gainful += 1;
            }
        }
        // Deferral must help clearly on most deployments.
        assert!(gainful >= 4, "deferral helped only {gainful}/6 deployments");
    }

    #[test]
    fn fig14_final_stage_dominates() {
        let rows = fig14_breakdown(&cal()).unwrap();
        assert_eq!(rows.len(), 3);
        for (model, stages) in rows {
            assert_eq!(stages.len(), 6);
            let last = stages.last().unwrap();
            assert!(last.1 > 2.0, "{model}: prefill breakdown {:.2}", last.1);
            assert!(last.2 > 1.5, "{model}: decode breakdown {:.2}", last.2);
            // The AVX-512-only stage should HURT prefill (Figure 14a
            // shows v below baseline for prefill).
            assert!(stages[1].1 < 1.0, "{model}: +v prefill {:.2}", stages[1].1);
            // ... but help decode (Figure 14b).
            assert!(stages[1].2 > 1.0, "{model}: +v decode {:.2}", stages[1].2);
        }
    }

    #[test]
    fn numa_ablation_in_paper_range() {
        let rows = ablation_numa(&cal()).unwrap();
        let ratio = rows[1].1 / rows[0].1;
        // §3.3: up to 1.63x.
        assert!(ratio > 1.15 && ratio < 1.7, "ratio={ratio}");
    }

    #[test]
    fn graph_ablation_in_paper_range() {
        let rows = ablation_graph(&cal()).unwrap();
        let ratio = rows[1].1 / rows[0].1;
        // §3.3: up to 1.23x.
        assert!(ratio > 1.03 && ratio < 1.35, "ratio={ratio}");
    }

    #[test]
    fn deployments_cover_the_grid() {
        let deps = Deployment::all();
        assert_eq!(deps.len(), 6);
        assert_eq!(
            deps.iter().filter(|d| d.a100).count(),
            3,
            "three A100 deployments"
        );
        assert!(deps
            .iter()
            .any(|d| !d.a100 && d.precision == Precision::Int4));
    }

    #[test]
    fn zipf_coverage_behaves() {
        // Uniform: coverage is proportional.
        assert!((zipf_coverage(256, 64, 0.0) - 0.25).abs() < 1e-12);
        // Skewed: the head captures outsized mass.
        assert!(zipf_coverage(256, 64, 1.0) > 0.6);
        // Monotone and bounded.
        assert!(zipf_coverage(256, 8, 1.0) < zipf_coverage(256, 64, 1.0));
        assert!((zipf_coverage(256, 256, 1.3) - 1.0).abs() < 1e-12);
        assert_eq!(zipf_coverage(0, 4, 1.0), 0.0);
    }

    #[test]
    fn placement_has_an_optimum_under_skew() {
        // Pinning hot experts moves routed traffic from the CPU (the
        // decode bottleneck) to the GPU; past the balance point the GPU
        // becomes the bottleneck instead, so throughput peaks at an
        // intermediate pin count.
        let rows = placement_study(
            &cal(),
            ModelPreset::DeepSeekV3,
            1.0,
            Precision::Int4,
            &[0, 32, 160],
        )
        .unwrap();
        assert_eq!(rows[0].coverage, 0.0);
        assert!(rows[1].tokens_per_s > rows[0].tokens_per_s * 1.2, "{rows:?}");
        assert!(
            rows[2].tokens_per_s < rows[1].tokens_per_s,
            "over-pinning must shift the bottleneck to the GPU: {rows:?}"
        );
        assert!(rows[2].coverage > rows[1].coverage);
        // VRAM feasibility: Int4 DS-3 fits a handful of pinned experts
        // per layer on a 40 GB A100, not 160.
        assert!(rows[0].vram_feasible);
        assert!(!rows[2].vram_feasible, "{rows:?}");
    }

    #[test]
    fn paper_deferral_configs() {
        use ModelPreset::*;
        assert_eq!(paper_deferral_config(DeepSeekV3, false), 3);
        assert_eq!(paper_deferral_config(DeepSeekV3, true), 6);
        assert_eq!(paper_deferral_config(DeepSeekV2, false), 4);
        assert_eq!(paper_deferral_config(Qwen2Moe, true), 4);
    }
}
