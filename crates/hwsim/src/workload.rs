//! Per-layer FLOP/byte workloads derived from model configurations.
//!
//! Translates a full-scale [`ModelConfig`] (Table 1) plus a phase
//! description (how many new tokens, at what context length, with which
//! weight precision) into the operation sizes the cost models consume.

use kt_model::{AttentionKind, ModelConfig};

/// Weight precision of a deployment (determines streamed bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// BF16/FP16 full-precision deployment.
    Bf16,
    /// Int8 quantized experts (DS-2/QW-2 on RTX 4080 in §6.1).
    Int8,
    /// Int4 quantized experts (DS-3 on RTX 4080 in §6.1).
    Int4,
}

impl Precision {
    /// Bytes per weight (including group-scale overhead for integer
    /// formats at the paper's typical group sizes).
    pub fn bytes_per_weight(self) -> f64 {
        match self {
            Precision::Bf16 => 2.0,
            Precision::Int8 => 8.5 / 8.0,
            Precision::Int4 => 4.5 / 8.0,
        }
    }

    /// Display name matching the paper's labels.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Bf16 => "BF16",
            Precision::Int8 => "Int8",
            Precision::Int4 => "Int4",
        }
    }
}

/// Cost-relevant sizes of one transformer layer's execution over a
/// group of new tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerWorkload {
    /// New tokens processed.
    pub tokens: f64,
    /// GPU attention FLOPs (projections + score/value matmuls).
    pub attn_flops: f64,
    /// GPU attention bytes (weights + KV cache traffic).
    pub attn_bytes: f64,
    /// GPU shared-expert FLOPs.
    pub shared_flops: f64,
    /// GPU shared-expert bytes.
    pub shared_bytes: f64,
    /// GPU router FLOPs (gate projection; tiny).
    pub router_flops: f64,
    /// CPU routed-expert FLOPs.
    pub routed_flops: f64,
    /// CPU routed-expert bytes (weights streamed from DRAM).
    pub routed_bytes: f64,
    /// Tokens per activated expert (the ARI axis).
    pub tokens_per_expert: f64,
    /// Distinct experts activated (expected value).
    pub n_active_experts: f64,
    /// Activation bytes shipped over PCIe per direction.
    pub transfer_bytes: f64,
}

/// Expected number of distinct experts hit by `n_draws` uniform top-k
/// draws over `n_experts` experts (balanced routing assumption — the
/// design goal of MoE load-balancing losses).
pub fn expected_active_experts(n_experts: usize, n_draws: f64) -> f64 {
    let n = n_experts as f64;
    if n_draws <= 0.0 {
        return 0.0;
    }
    n * (1.0 - (1.0 - 1.0 / n).powf(n_draws))
}

/// Attention parameter count per layer (mirrors
/// `ModelConfig::gpu_params`' decomposition).
pub fn attn_params(cfg: &ModelConfig) -> f64 {
    let hidden = cfg.hidden as f64;
    let hd = (cfg.n_heads * cfg.head_dim) as f64;
    match cfg.attention {
        AttentionKind::Gqa { kv_heads } => {
            2.0 * hidden * hd + 2.0 * hidden * (kv_heads * cfg.head_dim) as f64
        }
        AttentionKind::Mla { kv_lora_rank } => {
            let r = kv_lora_rank as f64;
            hidden * r + r * hd + hidden * r + r * 2.0 * hd + hd * hidden
        }
    }
}

/// KV cache row bytes per position (what decode attention streams).
pub fn kv_row_bytes(cfg: &ModelConfig, gpu_bytes_per_w: f64) -> f64 {
    match cfg.attention {
        AttentionKind::Gqa { kv_heads } => {
            2.0 * (kv_heads * cfg.head_dim) as f64 * gpu_bytes_per_w
        }
        AttentionKind::Mla { kv_lora_rank } => kv_lora_rank as f64 * gpu_bytes_per_w,
    }
}

/// Builds the workload of one **MoE** layer processing `tokens` new
/// tokens at context length `ctx` (positions already cached), with
/// experts stored at `cpu_prec` and GPU weights at `gpu_prec`.
pub fn moe_layer_workload(
    cfg: &ModelConfig,
    tokens: usize,
    ctx: usize,
    cpu_prec: Precision,
    gpu_prec: Precision,
) -> LayerWorkload {
    let t = tokens as f64;
    let hidden = cfg.hidden as f64;
    let mi = cfg.moe_inter as f64;
    let gpu_b = gpu_prec.bytes_per_weight();
    let cpu_b = cpu_prec.bytes_per_weight();

    // Attention: weight matmuls are 2*params*T; score/value matmuls are
    // 2 * sum over new tokens of (context length) * heads * 2*head_dim.
    let params = attn_params(cfg);
    let avg_ctx = ctx as f64 + (t + 1.0) / 2.0;
    let attn_flops = 2.0 * params * t
        + 2.0 * t * avg_ctx * (cfg.n_heads * cfg.head_dim) as f64 * 2.0;
    let attn_bytes = params * gpu_b + t * avg_ctx.min(cfg.max_seq as f64)
        * kv_row_bytes(cfg, gpu_b).min(1e18);

    // Shared experts (always active on GPU).
    let shared = cfg.n_shared_experts as f64;
    let shared_flops = t * shared * 3.0 * 2.0 * hidden * mi;
    let shared_bytes = shared * 3.0 * hidden * mi * gpu_b + t * hidden * 4.0;

    // Router.
    let router_flops = 2.0 * t * cfg.n_routed_experts as f64 * hidden;

    // Routed experts (CPU): balanced top-k routing.
    let draws = t * cfg.top_k as f64;
    let n_active = expected_active_experts(cfg.n_routed_experts, draws);
    let tokens_per_expert = if n_active > 0.0 { draws / n_active } else { 0.0 };
    let routed_flops = draws * 3.0 * 2.0 * hidden * mi;
    let routed_bytes = n_active * 3.0 * hidden * mi * cpu_b
        + draws * (hidden + mi) * 4.0; // activations in f32

    LayerWorkload {
        tokens: t,
        attn_flops,
        attn_bytes,
        shared_flops,
        shared_bytes,
        router_flops,
        routed_flops,
        routed_bytes,
        tokens_per_expert,
        n_active_experts: n_active,
        transfer_bytes: t * hidden * 4.0,
    }
}

/// Builds the workload of one **dense** layer (leading DeepSeek layers;
/// everything runs on the GPU).
pub fn dense_layer_workload(
    cfg: &ModelConfig,
    tokens: usize,
    ctx: usize,
    gpu_prec: Precision,
) -> LayerWorkload {
    let t = tokens as f64;
    let hidden = cfg.hidden as f64;
    let di = cfg.dense_inter as f64;
    let gpu_b = gpu_prec.bytes_per_weight();
    let params = attn_params(cfg);
    let avg_ctx = ctx as f64 + (t + 1.0) / 2.0;
    let attn_flops = 2.0 * params * t
        + 2.0 * t * avg_ctx * (cfg.n_heads * cfg.head_dim) as f64 * 2.0;
    let attn_bytes = params * gpu_b + t * avg_ctx * kv_row_bytes(cfg, gpu_b);
    LayerWorkload {
        tokens: t,
        attn_flops,
        attn_bytes,
        shared_flops: t * 3.0 * 2.0 * hidden * di,
        shared_bytes: 3.0 * hidden * di * gpu_b,
        router_flops: 0.0,
        routed_flops: 0.0,
        routed_bytes: 0.0,
        tokens_per_expert: 0.0,
        n_active_experts: 0.0,
        transfer_bytes: 0.0,
    }
}

/// GPU head/embedding work per forward (LM head dominates).
pub fn head_workload(cfg: &ModelConfig, tokens: usize, gpu_prec: Precision) -> (f64, f64) {
    let t = tokens as f64;
    let flops = 2.0 * t * cfg.vocab as f64 * cfg.hidden as f64;
    let bytes = cfg.vocab as f64 * cfg.hidden as f64 * gpu_prec.bytes_per_weight();
    (flops, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    #[test]
    fn expected_active_experts_limits() {
        // One draw hits exactly one expert.
        assert!((expected_active_experts(256, 1.0) - 1.0).abs() < 1e-6);
        // Many draws saturate the pool.
        assert!(expected_active_experts(256, 1e6) > 255.9);
        // Monotone in draws.
        let a = expected_active_experts(64, 8.0);
        let b = expected_active_experts(64, 64.0);
        assert!(a < b && b < 64.0);
        assert_eq!(expected_active_experts(64, 0.0), 0.0);
    }

    #[test]
    fn ds3_decode_layer_streams_all_activated_expert_bytes() {
        let cfg = ModelPreset::DeepSeekV3.full_config();
        let w = moe_layer_workload(&cfg, 1, 32, Precision::Bf16, Precision::Bf16);
        // 8 experts x 3 x 7168 x 2048 x 2 bytes ~ 704 MB.
        assert!((w.routed_bytes / 1e6 - 704.6).abs() < 10.0, "{}", w.routed_bytes / 1e6);
        assert!((w.tokens_per_expert - 1.0).abs() < 0.02);
        assert!((w.n_active_experts - 8.0).abs() < 0.2);
        // Routed flops: 8 x 3 x 2 x 7168 x 2048 ~ 0.70 GFLOP.
        assert!((w.routed_flops / 1e9 - 0.705).abs() < 0.02);
    }

    #[test]
    fn ds3_prefill_layer_is_high_ari() {
        let cfg = ModelPreset::DeepSeekV3.full_config();
        let w = moe_layer_workload(&cfg, 8192, 0, Precision::Bf16, Precision::Bf16);
        // 8192 x 8 / 256 = 256 tokens per expert on average.
        assert!(w.tokens_per_expert > 200.0, "{}", w.tokens_per_expert);
        assert!(w.n_active_experts > 255.0);
        // 5.77 TFLOP of routed work per layer.
        assert!((w.routed_flops / 1e12 - 5.77).abs() < 0.2);
        // All 256 experts streamed (~22.5 GB) plus ~2.4 GB activations.
        assert!((w.routed_bytes / 1e9 - 25.0).abs() < 1.5, "{}", w.routed_bytes / 1e9);
    }

    #[test]
    fn quantization_shrinks_cpu_bytes_only() {
        let cfg = ModelPreset::DeepSeekV3.full_config();
        let bf = moe_layer_workload(&cfg, 1, 32, Precision::Bf16, Precision::Bf16);
        let q4 = moe_layer_workload(&cfg, 1, 32, Precision::Int4, Precision::Bf16);
        assert!(q4.routed_bytes < bf.routed_bytes * 0.35);
        assert_eq!(q4.routed_flops, bf.routed_flops);
        assert_eq!(q4.attn_bytes, bf.attn_bytes);
    }

    #[test]
    fn mla_kv_rows_are_compressed() {
        let ds3 = ModelPreset::DeepSeekV3.full_config();
        let qw2 = ModelPreset::Qwen2Moe.full_config();
        let mla = kv_row_bytes(&ds3, 2.0);
        let gqa = kv_row_bytes(&qw2, 2.0);
        assert_eq!(mla, 512.0 * 2.0);
        assert_eq!(gqa, 2.0 * 4.0 * 128.0 * 2.0);
    }

    #[test]
    fn attention_grows_quadratically_with_prompt() {
        let cfg = ModelPreset::Qwen2Moe.full_config();
        let short = moe_layer_workload(&cfg, 1024, 0, Precision::Bf16, Precision::Bf16);
        let long = moe_layer_workload(&cfg, 8192, 0, Precision::Bf16, Precision::Bf16);
        let ratio = (long.attn_flops / 8.0) / short.attn_flops;
        assert!(ratio > 1.5, "per-token attention flops must grow, ratio={ratio}");
    }

    #[test]
    fn dense_layer_has_no_cpu_work() {
        let cfg = ModelPreset::DeepSeekV3.full_config();
        let w = dense_layer_workload(&cfg, 16, 0, Precision::Bf16);
        assert_eq!(w.routed_flops, 0.0);
        assert_eq!(w.routed_bytes, 0.0);
        assert!(w.shared_flops > 0.0);
    }

    #[test]
    fn head_workload_scales_with_tokens() {
        let cfg = ModelPreset::DeepSeekV2.full_config();
        let (f1, b1) = head_workload(&cfg, 1, Precision::Bf16);
        let (f8, b8) = head_workload(&cfg, 8, Precision::Bf16);
        assert!((f8 / f1 - 8.0).abs() < 1e-9);
        assert_eq!(b1, b8);
    }
}
