//! Operation cost models and calibration constants.
//!
//! Every constant here is anchored to a number the paper itself reports:
//!
//! | Constant | Anchor |
//! |---|---|
//! | `kt_amx_eff` = 0.289 | §3.2: KT AMX kernel reaches 21.3 of 73.7 TFLOPS |
//! | `onednn_amx_eff` = 0.073 | §2.2: oneDNN reaches ~7% of peak (5.4 TFLOPS) |
//! | `kt_avx512_tflops` = 1.8 | Figure 3: AVX-512 plateau |
//! | `llamacpp_cpu_tflops` = 1.4 | §6.2: llama.cpp trails Fiddler's oneDNN at long prompts |
//! | `fiddler_launches/latency` = 7000 x 16 µs | Figure 4 |
//! | `llamacpp_launches/latency` = 3000 x 5 µs | Figure 4 |
//! | bandwidth efficiencies | §2.3: Fiddler's 1-socket MoE decode layer takes 6.9 ms (~102 GB/s effective of 220), llama.cpp and KT progressively closer to peak |
//! | `amx_task_overhead` | Figure 7: AVX-512 wins at <= 4 tokens/expert; §3.2: hybrid is up to 1.20x faster than pure AMX in decode |
//!
//! The CPU MoE kernel model is a roofline with three corrections the
//! paper identifies: (1) AMX pads token counts to full 16-row tiles,
//! (2) each expert task pays a fixed scheduling/tile-configuration
//! overhead (higher for AMX), (3) static scheduling suffers an
//! imbalance factor during prefill (§3.2: dynamic scheduling recovers
//! up to 1.83x).

use crate::hardware::{CpuSpec, GpuSpec, Platform};

/// CPU kernel families the systems under study use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKernel {
    /// PyTorch/oneDNN AMX path (Fiddler prefill).
    TorchAmx,
    /// PyTorch AVX-512 path (Fiddler decode).
    TorchAvx512,
    /// llama.cpp's hand-written AVX-512 kernels.
    LlamaCppAvx,
    /// KTransformers tiled AMX-class kernel.
    KtAmx,
    /// KTransformers lightweight AVX-512-class kernel.
    KtAvx512,
    /// KTransformers ARI-based hybrid dispatch (§3.2).
    KtHybrid,
}

/// Execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPhase {
    /// Many tokens per expert (high ARI).
    Prefill,
    /// Few tokens per expert (low ARI).
    Decode,
}

/// Calibration constants (see module docs for anchors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Fraction of AMX peak the KT kernel sustains (21.3 / 73.7).
    pub kt_amx_eff: f64,
    /// Fraction of AMX peak oneDNN sustains (5.4 / 73.7).
    pub onednn_amx_eff: f64,
    /// KT AVX-512 kernel throughput per socket, TFLOPS.
    pub kt_avx512_tflops: f64,
    /// Torch AVX-512 path throughput per socket, TFLOPS.
    pub torch_avx512_tflops: f64,
    /// llama.cpp CPU throughput per socket, TFLOPS.
    pub llamacpp_cpu_tflops: f64,
    /// Effective DRAM bandwidth fraction of the KT packed layout.
    pub kt_bw_eff: f64,
    /// Effective bandwidth fraction of PyTorch's generic layouts
    /// (§3.2 blames "suboptimal memory layouts" for the oneDNN gap).
    pub torch_bw_eff: f64,
    /// Effective bandwidth fraction of llama.cpp's layouts.
    pub llamacpp_bw_eff: f64,
    /// AMX tile row granularity (token counts are padded to this).
    pub amx_m_pad: f64,
    /// Fixed per-expert-task overhead of the AMX path, seconds.
    pub amx_task_overhead_s: f64,
    /// Fixed per-expert-task overhead of the AVX-512 path, seconds.
    pub avx_task_overhead_s: f64,
    /// Per-layer framework overhead of the PyTorch interpreter path,
    /// seconds (Fiddler only).
    pub python_layer_overhead_s: f64,
    /// Extra work factor of the non-fused PyTorch MoE *module* (>= 1);
    /// applied at the system (policy) level, not in the kernel
    /// microbenchmark model, since Figure 3 measures bare kernels.
    pub torch_unfused_factor: f64,
    /// Load-imbalance multiplier of static scheduling during prefill
    /// (§3.2: dynamic scheduling is up to 1.83x better).
    pub static_prefill_imbalance: f64,
    /// Load-imbalance multiplier of static scheduling during decode.
    pub static_decode_imbalance: f64,
    /// GPU compute efficiency for large (prefill-sized) kernels.
    pub gpu_eff_large: f64,
    /// GPU compute efficiency for small decode-sized kernels.
    pub gpu_eff_small: f64,
    /// GPU HBM efficiency for large kernels.
    pub gpu_mem_eff_large: f64,
    /// GPU HBM efficiency for small decode-sized kernels (short rows,
    /// no coalescing amortization).
    pub gpu_mem_eff_small: f64,
    /// Latency of one CPU<->GPU synchronization point outside CUDA
    /// graphs, seconds.
    pub sync_latency_s: f64,
    /// Latency of a `cudaLaunchHostFunc` callback inside a captured
    /// graph, seconds (§3.3).
    pub hostfunc_latency_s: f64,
    /// Per-layer kernel-launch cost when replaying a captured graph,
    /// seconds.
    pub graph_replay_layer_s: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            kt_amx_eff: 21.3 / 73.7,
            onednn_amx_eff: 5.4 / 73.7,
            kt_avx512_tflops: 1.8,
            torch_avx512_tflops: 1.8,
            llamacpp_cpu_tflops: 1.4,
            kt_bw_eff: 0.90,
            torch_bw_eff: 0.50,
            llamacpp_bw_eff: 0.80,
            amx_m_pad: 16.0,
            amx_task_overhead_s: 50e-6,
            avx_task_overhead_s: 10e-6,
            python_layer_overhead_s: 1.0e-3,
            torch_unfused_factor: 1.25,
            static_prefill_imbalance: 1.7,
            static_decode_imbalance: 1.05,
            gpu_eff_large: 0.60,
            gpu_eff_small: 0.30,
            gpu_mem_eff_large: 0.70,
            gpu_mem_eff_small: 0.45,
            sync_latency_s: 15e-6,
            hostfunc_latency_s: 3e-6,
            graph_replay_layer_s: 1e-6,
        }
    }
}

/// Inputs describing one CPU MoE layer execution.
#[derive(Debug, Clone, Copy)]
pub struct CpuMoeOp {
    /// Tokens processed by each active expert (the paper's ARI axis).
    pub tokens_per_expert: f64,
    /// Distinct experts activated.
    pub n_active_experts: f64,
    /// Total useful FLOPs.
    pub flops: f64,
    /// Total weight/activation bytes streamed from DRAM.
    pub bytes: f64,
}

impl Calibration {
    /// Resolves the kernel the hybrid backend uses at a given ARI
    /// (Figure 7 crossover: vector kernel at <= 4 tokens/expert).
    pub fn resolve_hybrid(&self, kernel: CpuKernel, tokens_per_expert: f64) -> CpuKernel {
        match kernel {
            CpuKernel::KtHybrid => {
                if tokens_per_expert <= 4.0 {
                    CpuKernel::KtAvx512
                } else {
                    CpuKernel::KtAmx
                }
            }
            other => other,
        }
    }

    /// Effective compute throughput (FLOPS) of a kernel on `cpu`, all
    /// sockets combined.
    pub fn cpu_flops(&self, kernel: CpuKernel, cpu: &CpuSpec) -> f64 {
        let per_socket = match kernel {
            CpuKernel::TorchAmx => self.onednn_amx_eff * cpu.amx_peak_tflops,
            CpuKernel::TorchAvx512 => self.torch_avx512_tflops,
            CpuKernel::LlamaCppAvx => self.llamacpp_cpu_tflops,
            CpuKernel::KtAmx => self.kt_amx_eff * cpu.amx_peak_tflops,
            CpuKernel::KtAvx512 => self.kt_avx512_tflops,
            CpuKernel::KtHybrid => self.kt_amx_eff * cpu.amx_peak_tflops,
        };
        per_socket * 1e12 * cpu.sockets as f64
    }

    /// Effective DRAM bandwidth (bytes/s) for a kernel family, given
    /// NUMA awareness.
    pub fn cpu_bandwidth(&self, kernel: CpuKernel, cpu: &CpuSpec, numa_aware: bool) -> f64 {
        let raw = if numa_aware {
            cpu.total_local_bw_gbs()
        } else {
            cpu.total_oblivious_bw_gbs()
        };
        let eff = match kernel {
            CpuKernel::TorchAmx | CpuKernel::TorchAvx512 => self.torch_bw_eff,
            CpuKernel::LlamaCppAvx => self.llamacpp_bw_eff,
            CpuKernel::KtAmx | CpuKernel::KtAvx512 | CpuKernel::KtHybrid => self.kt_bw_eff,
        };
        raw * 1e9 * eff
    }

    /// Time (s) for one CPU MoE layer under the full kernel model.
    pub fn cpu_moe_time(
        &self,
        kernel: CpuKernel,
        op: &CpuMoeOp,
        cpu: &CpuSpec,
        numa_aware: bool,
        dynamic_sched: bool,
        phase: KernelPhase,
    ) -> f64 {
        let kernel = self.resolve_hybrid(kernel, op.tokens_per_expert);
        let is_amx = matches!(kernel, CpuKernel::TorchAmx | CpuKernel::KtAmx);
        // (1) AMX pads each expert's token count to full tiles.
        let pad = if is_amx {
            let m = op.tokens_per_expert.max(1.0);
            (m / self.amx_m_pad).ceil() * self.amx_m_pad / m
        } else {
            1.0
        };
        let flops = op.flops * pad;
        let compute = flops / self.cpu_flops(kernel, cpu);
        let memory = op.bytes / self.cpu_bandwidth(kernel, cpu, numa_aware);
        // (2) Fixed per-expert-task overhead, spread across sockets.
        let per_task = if is_amx {
            self.amx_task_overhead_s
        } else {
            self.avx_task_overhead_s
        };
        let overhead = op.n_active_experts * per_task / cpu.sockets as f64;
        // (3) Static-scheduling imbalance.
        let imbalance = if dynamic_sched {
            1.0
        } else {
            match phase {
                KernelPhase::Prefill => self.static_prefill_imbalance,
                KernelPhase::Decode => self.static_decode_imbalance,
            }
        };
        compute.max(memory) * imbalance + overhead
    }

    /// Sustained throughput (FLOPS) of one CPU MoE layer — the y-axis of
    /// Figures 3 and 7's companions.
    pub fn cpu_moe_tflops(
        &self,
        kernel: CpuKernel,
        op: &CpuMoeOp,
        cpu: &CpuSpec,
        numa_aware: bool,
        phase: KernelPhase,
    ) -> f64 {
        let t = self.cpu_moe_time(kernel, op, cpu, numa_aware, true, phase);
        if t <= 0.0 {
            return 0.0;
        }
        op.flops / t / 1e12
    }

    /// Time (s) for a GPU op under the roofline with size-dependent
    /// efficiencies.
    pub fn gpu_op_time(&self, gpu: &GpuSpec, flops: f64, bytes: f64, large: bool) -> f64 {
        let (ceff, meff) = if large {
            (self.gpu_eff_large, self.gpu_mem_eff_large)
        } else {
            (self.gpu_eff_small, self.gpu_mem_eff_small)
        };
        let compute = flops / (gpu.tflops * 1e12 * ceff);
        let memory = bytes / (gpu.hbm_gbs * 1e9 * meff);
        compute.max(memory)
    }

    /// PCIe transfer time (s).
    pub fn pcie_time(&self, bytes: f64, pcie_gbs: f64) -> f64 {
        bytes / (pcie_gbs * 1e9)
    }

    /// Calibrated cost split for placing one routed expert's bucket:
    /// `tokens` rows through an expert of `flops` useful FLOPs and
    /// `weight_bytes` stored weight bytes. The CPU side uses the hybrid
    /// kernel dispatch (so AMX tile padding and per-task overhead apply
    /// exactly as in `cpu_moe_time`); the GPU side is the small-kernel
    /// roofline plus a PCIe upload term paid only when the expert is
    /// not already resident in VRAM.
    pub fn expert_placement_cost(
        &self,
        tokens: f64,
        flops: f64,
        weight_bytes: f64,
        platform: &Platform,
    ) -> ExpertPlacementCost {
        let op = CpuMoeOp {
            tokens_per_expert: tokens.max(1.0),
            n_active_experts: 1.0,
            flops,
            bytes: weight_bytes,
        };
        let cpu_s = self.cpu_moe_time(
            CpuKernel::KtHybrid,
            &op,
            &platform.cpu,
            true,
            true,
            KernelPhase::Decode,
        );
        let large = tokens >= self.amx_m_pad;
        let gpu_compute_s = self.gpu_op_time(&platform.gpu, flops, weight_bytes, large);
        let pcie_upload_s = self.pcie_time(weight_bytes, platform.pcie_gbs);
        ExpertPlacementCost {
            cpu_s,
            gpu_compute_s,
            pcie_upload_s,
        }
    }
}

/// Per-expert placement cost comparison produced by
/// [`Calibration::expert_placement_cost`], consumed by the dynamic
/// placement policy in `kt-core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertPlacementCost {
    /// CPU kernel time (hybrid dispatch, NUMA-aware, dynamic sched).
    pub cpu_s: f64,
    /// vGPU compute time for the same bucket.
    pub gpu_compute_s: f64,
    /// PCIe upload of the expert's weights (paid when not resident).
    pub pcie_upload_s: f64,
}

impl ExpertPlacementCost {
    /// Total GPU-side cost given current residency.
    pub fn gpu_total_s(&self, resident: bool) -> f64 {
        if resident {
            self.gpu_compute_s
        } else {
            self.gpu_compute_s + self.pcie_upload_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::CpuSpec;

    fn cal() -> Calibration {
        Calibration::default()
    }

    fn cpu() -> CpuSpec {
        CpuSpec::dual_xeon_8452y()
    }

    /// A DS-3-like MoE layer op at `m` tokens per expert, all 256
    /// experts active (the Figure 3 microbenchmark setup).
    fn ds3_op(m: f64, n_active: f64) -> CpuMoeOp {
        let per_tok_expert_flops = 2.0 * 3.0 * 7168.0 * 2048.0;
        CpuMoeOp {
            tokens_per_expert: m,
            n_active_experts: n_active,
            flops: m * n_active * per_tok_expert_flops,
            bytes: n_active * 3.0 * 7168.0 * 2048.0 * 2.0, // BF16
        }
    }

    #[test]
    fn fig3_plateaus_match_paper() {
        // High-ARI throughput should approach the paper's measured
        // plateaus on a single socket: KT-AMX 21.3, oneDNN 5.4, AVX 1.8.
        let mut one = cpu();
        one.sockets = 1;
        let op = ds3_op(1024.0, 256.0);
        let kt = cal().cpu_moe_tflops(CpuKernel::KtAmx, &op, &one, true, KernelPhase::Prefill);
        let dnn =
            cal().cpu_moe_tflops(CpuKernel::TorchAmx, &op, &one, true, KernelPhase::Prefill);
        let avx =
            cal().cpu_moe_tflops(CpuKernel::KtAvx512, &op, &one, true, KernelPhase::Prefill);
        assert!((kt - 21.3).abs() < 2.0, "kt={kt}");
        assert!((dnn - 5.4).abs() < 1.5, "dnn={dnn}");
        assert!((avx - 1.8).abs() < 0.3, "avx={avx}");
        // Ordering: KT-AMX > oneDNN-AMX > AVX-512 at high ARI.
        assert!(kt > dnn && dnn > avx);
    }

    #[test]
    fn fig3_low_ari_is_bandwidth_bound() {
        let mut one = cpu();
        one.sockets = 1;
        let lo = ds3_op(1.0, 256.0);
        let hi = ds3_op(256.0, 256.0);
        let t_lo = cal().cpu_moe_tflops(CpuKernel::KtAmx, &lo, &one, true, KernelPhase::Decode);
        let t_hi =
            cal().cpu_moe_tflops(CpuKernel::KtAmx, &hi, &one, true, KernelPhase::Prefill);
        assert!(t_lo < t_hi / 5.0, "lo={t_lo} hi={t_hi}");
    }

    #[test]
    fn fig7_crossover_near_four_tokens() {
        // AVX-512 faster at m <= 4, AMX faster by m = 16 (Figure 7).
        let c = cal();
        let machine = cpu();
        for m in [1.0, 2.0, 4.0] {
            let op = ds3_op(m, 256.0);
            let amx = c.cpu_moe_time(CpuKernel::KtAmx, &op, &machine, true, true, KernelPhase::Decode);
            let avx =
                c.cpu_moe_time(CpuKernel::KtAvx512, &op, &machine, true, true, KernelPhase::Decode);
            assert!(avx < amx, "m={m}: avx {avx} should beat amx {amx}");
        }
        for m in [16.0, 64.0] {
            let op = ds3_op(m, 256.0);
            let amx =
                c.cpu_moe_time(CpuKernel::KtAmx, &op, &machine, true, true, KernelPhase::Prefill);
            let avx = c.cpu_moe_time(
                CpuKernel::KtAvx512,
                &op,
                &machine,
                true,
                true,
                KernelPhase::Prefill,
            );
            assert!(amx < avx, "m={m}: amx {amx} should beat avx {avx}");
        }
    }

    #[test]
    fn hybrid_resolves_by_ari() {
        let c = cal();
        assert_eq!(c.resolve_hybrid(CpuKernel::KtHybrid, 1.0), CpuKernel::KtAvx512);
        assert_eq!(c.resolve_hybrid(CpuKernel::KtHybrid, 4.0), CpuKernel::KtAvx512);
        assert_eq!(c.resolve_hybrid(CpuKernel::KtHybrid, 5.0), CpuKernel::KtAmx);
        assert_eq!(c.resolve_hybrid(CpuKernel::KtAmx, 1.0), CpuKernel::KtAmx);
    }

    #[test]
    fn prefill_hybrid_speedup_over_pure_avx() {
        // §3.2: "up to 10.81x speedup in prefill phases compared to pure
        // AVX-512".
        let c = cal();
        let machine = cpu();
        let op = ds3_op(256.0, 256.0);
        let hybrid = c.cpu_moe_time(
            CpuKernel::KtHybrid,
            &op,
            &machine,
            true,
            true,
            KernelPhase::Prefill,
        );
        let avx = c.cpu_moe_time(
            CpuKernel::KtAvx512,
            &op,
            &machine,
            true,
            true,
            KernelPhase::Prefill,
        );
        let speedup = avx / hybrid;
        assert!(speedup > 6.0 && speedup < 14.0, "speedup={speedup}");
    }

    #[test]
    fn decode_hybrid_speedup_over_pure_amx() {
        // §3.2: "up to 1.20x speedup in decode phases compared to pure
        // AMX".
        let c = cal();
        let machine = cpu();
        let op = ds3_op(1.0, 8.0); // decode: top-8 experts, 1 token each
        let hybrid =
            c.cpu_moe_time(CpuKernel::KtHybrid, &op, &machine, true, true, KernelPhase::Decode);
        let amx =
            c.cpu_moe_time(CpuKernel::KtAmx, &op, &machine, true, true, KernelPhase::Decode);
        let speedup = amx / hybrid;
        assert!(speedup > 1.05 && speedup < 1.4, "speedup={speedup}");
    }

    #[test]
    fn numa_awareness_improves_decode_bandwidth() {
        let c = cal();
        let machine = cpu();
        let op = ds3_op(1.0, 8.0);
        let aware =
            c.cpu_moe_time(CpuKernel::KtAvx512, &op, &machine, true, true, KernelPhase::Decode);
        let oblivious =
            c.cpu_moe_time(CpuKernel::KtAvx512, &op, &machine, false, true, KernelPhase::Decode);
        let ratio = oblivious / aware;
        assert!(ratio > 1.2 && ratio < 1.7, "ratio={ratio}");
    }

    #[test]
    fn dynamic_scheduling_helps_prefill_most() {
        let c = cal();
        let machine = cpu();
        let op = ds3_op(256.0, 256.0);
        let dynamic =
            c.cpu_moe_time(CpuKernel::KtAmx, &op, &machine, true, true, KernelPhase::Prefill);
        let static_ =
            c.cpu_moe_time(CpuKernel::KtAmx, &op, &machine, true, false, KernelPhase::Prefill);
        let prefill_gain = static_ / dynamic;
        assert!(prefill_gain > 1.4 && prefill_gain < 1.9, "{prefill_gain}");
        let op_d = ds3_op(1.0, 8.0);
        let dyn_d =
            c.cpu_moe_time(CpuKernel::KtAvx512, &op_d, &machine, true, true, KernelPhase::Decode);
        let stat_d =
            c.cpu_moe_time(CpuKernel::KtAvx512, &op_d, &machine, true, false, KernelPhase::Decode);
        let decode_gain = stat_d / dyn_d;
        assert!(decode_gain < 1.1, "{decode_gain}");
    }

    #[test]
    fn fiddler_single_layer_decode_near_measured() {
        // §2.3: Fiddler's dual-socket MoE decode layer takes ~5.8 ms.
        let c = cal();
        let machine = cpu();
        let op = ds3_op(1.0, 8.0);
        let t = c.cpu_moe_time(
            CpuKernel::TorchAvx512,
            &op,
            &machine,
            false,
            false,
            KernelPhase::Decode,
        ) + c.python_layer_overhead_s;
        assert!(t > 3.5e-3 && t < 9e-3, "t={t}");
    }

    #[test]
    fn expert_placement_cost_resident_vs_cold() {
        // One DS-3-scale routed expert at decode (1 token): BF16 weights
        // are ~88 MB, so both sides are memory-bound. A VRAM-resident
        // expert should win on HBM bandwidth; a cold expert pays a PCIe
        // upload that dwarfs the CPU kernel time, so one-off activations
        // stay on CPU.
        let c = cal();
        let platform = crate::hardware::Platform::a100_dual_xeon();
        let per_tok_flops = 2.0 * 3.0 * 7168.0 * 2048.0;
        let weight_bytes = 3.0 * 7168.0 * 2048.0 * 2.0;
        let cost = c.expert_placement_cost(1.0, per_tok_flops, weight_bytes, &platform);
        assert!(cost.cpu_s > 0.0 && cost.gpu_compute_s > 0.0 && cost.pcie_upload_s > 0.0);
        assert!(
            cost.gpu_total_s(true) < cost.cpu_s,
            "resident expert should prefer GPU: gpu={} cpu={}",
            cost.gpu_total_s(true),
            cost.cpu_s
        );
        assert!(
            cost.gpu_total_s(false) > cost.cpu_s,
            "cold expert should prefer CPU: gpu={} cpu={}",
            cost.gpu_total_s(false),
            cost.cpu_s
        );
        // The upload term is exactly the PCIe transfer of the weights.
        let up = c.pcie_time(weight_bytes, platform.pcie_gbs);
        assert!((cost.gpu_total_s(false) - cost.gpu_total_s(true) - up).abs() < 1e-12);
    }

    #[test]
    fn expert_placement_cost_tracks_cpu_moe_time() {
        // The CPU side must be the same roofline as cpu_moe_time with a
        // single active expert (hybrid dispatch, dynamic scheduling).
        let c = cal();
        let platform = crate::hardware::Platform::a100_dual_xeon();
        for m in [1.0, 4.0, 32.0] {
            let per_tok_flops = 2.0 * 3.0 * 7168.0 * 2048.0;
            let weight_bytes = 3.0 * 7168.0 * 2048.0 * 2.0;
            let op = CpuMoeOp {
                tokens_per_expert: m,
                n_active_experts: 1.0,
                flops: m * per_tok_flops,
                bytes: weight_bytes,
            };
            let direct =
                c.cpu_moe_time(CpuKernel::KtHybrid, &op, &platform.cpu, true, true, KernelPhase::Decode);
            let cost =
                c.expert_placement_cost(m, m * per_tok_flops, weight_bytes, &platform);
            assert!((cost.cpu_s - direct).abs() < 1e-15, "m={m}");
        }
    }

    #[test]
    fn gpu_roofline_behaves() {
        let c = cal();
        let gpu = GpuSpec::a100_40gb();
        // Compute-bound large op.
        let t1 = c.gpu_op_time(&gpu, 1e12, 1e6, true);
        assert!((t1 - 1.0 / (312.0 * 0.6)).abs() < 1e-3);
        // Memory-bound small op: 374 MB of MLA weights at decode.
        let t2 = c.gpu_op_time(&gpu, 1e9, 374e6, false);
        assert!(t2 > 0.3e-3 && t2 < 0.8e-3, "t2={t2}");
        // PCIe: 32 GB/s.
        assert!((c.pcie_time(32e9, 32.0) - 1.0).abs() < 1e-9);
    }
}
