//! Deterministic task-graph discrete-event engine.
//!
//! Tasks bind to a resource (a CPU socket pool, the GPU compute engine,
//! the GPU launch engine, the PCIe link) and execute FIFO per resource
//! once their dependencies complete — the semantics of in-order GPU
//! streams and of the CPU control thread's task queue. The engine
//! reports the makespan, per-resource useful/overhead busy time and the
//! full execution timeline; Figure 10's utilization numbers are
//! computed exactly this way.

use crate::error::SimError;

/// Whether a timeline segment is useful work or framework overhead
/// (kernel-launch latency, synchronization stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Useful computation or data movement.
    Work,
    /// Overhead the paper's optimizations target (launch latency,
    /// submit/sync barriers).
    Overhead,
}

/// Specification of one task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Resource index the task executes on.
    pub resource: usize,
    /// Execution duration in seconds.
    pub duration: f64,
    /// Indices of tasks that must finish first (all `<` this task's
    /// index — graphs are built in submission order).
    pub deps: Vec<usize>,
    /// Segment classification.
    pub kind: SegmentKind,
    /// Human-readable label for timeline rendering.
    pub label: String,
}

impl TaskSpec {
    /// Convenience constructor for a work task.
    pub fn work(resource: usize, duration: f64, deps: Vec<usize>, label: impl Into<String>) -> Self {
        TaskSpec {
            resource,
            duration,
            deps,
            kind: SegmentKind::Work,
            label: label.into(),
        }
    }

    /// Convenience constructor for an overhead task.
    pub fn overhead(
        resource: usize,
        duration: f64,
        deps: Vec<usize>,
        label: impl Into<String>,
    ) -> Self {
        TaskSpec {
            resource,
            duration,
            deps,
            kind: SegmentKind::Overhead,
            label: label.into(),
        }
    }
}

/// One executed interval on a resource's timeline.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Task index.
    pub task: usize,
    /// Start time (s).
    pub start: f64,
    /// End time (s).
    pub end: f64,
    /// Work/overhead classification.
    pub kind: SegmentKind,
    /// Task label.
    pub label: String,
}

/// Simulation outcome.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the last task (s).
    pub makespan: f64,
    /// Finish time per task.
    pub finish: Vec<f64>,
    /// Useful busy time per resource.
    pub work_busy: Vec<f64>,
    /// Overhead busy time per resource.
    pub overhead_busy: Vec<f64>,
    /// Execution timeline per resource.
    pub timelines: Vec<Vec<Segment>>,
}

impl SimResult {
    /// Utilization of a resource counting only useful work, as the
    /// paper reports it (launch overhead does not count as utilization).
    pub fn utilization(&self, resource: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.work_busy[resource] / self.makespan
    }

    /// Fraction of a resource's busy time that is overhead (Figure 4's
    /// "% of GPU execution time spent on kernel launch").
    pub fn overhead_fraction(&self, resource: usize) -> f64 {
        let total = self.work_busy[resource] + self.overhead_busy[resource];
        if total <= 0.0 {
            return 0.0;
        }
        self.overhead_busy[resource] / total
    }
}

/// A task-graph simulation over a fixed set of resources.
///
/// # Examples
///
/// ```
/// use kt_hwsim::{Sim, TaskSpec};
///
/// // CPU (resource 0) computes for 3 ms, then the GPU (resource 1)
/// // consumes the result for 1 ms.
/// let mut sim = Sim::new(2);
/// let cpu = sim.push(TaskSpec::work(0, 3e-3, vec![], "experts")).unwrap();
/// sim.push(TaskSpec::work(1, 1e-3, vec![cpu], "attention")).unwrap();
/// let result = sim.run();
/// assert_eq!(result.makespan, 4e-3);
/// assert!((result.utilization(0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct Sim {
    n_resources: usize,
    tasks: Vec<TaskSpec>,
}

impl Sim {
    /// Creates a simulation with `n_resources` FIFO resources.
    pub fn new(n_resources: usize) -> Self {
        Sim {
            n_resources,
            tasks: Vec::new(),
        }
    }

    /// Number of tasks added so far.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a task and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Graph`] for an invalid resource, a forward
    /// dependency, or a negative duration.
    pub fn push(&mut self, task: TaskSpec) -> Result<usize, SimError> {
        let id = self.tasks.len();
        if task.resource >= self.n_resources {
            return Err(SimError::graph(format!(
                "task {id} targets resource {} of {}",
                task.resource, self.n_resources
            )));
        }
        if task.duration < 0.0 || !task.duration.is_finite() {
            return Err(SimError::graph(format!(
                "task {id} has invalid duration {}",
                task.duration
            )));
        }
        for &d in &task.deps {
            if d >= id {
                return Err(SimError::graph(format!(
                    "task {id} depends on not-yet-submitted task {d}"
                )));
            }
        }
        self.tasks.push(task);
        Ok(id)
    }

    /// Runs the simulation: each task starts at
    /// `max(resource free time, dependency finish times)` in submission
    /// order per resource.
    pub fn run(&self) -> SimResult {
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut free = vec![0.0f64; self.n_resources];
        let mut work_busy = vec![0.0f64; self.n_resources];
        let mut overhead_busy = vec![0.0f64; self.n_resources];
        let mut timelines: Vec<Vec<Segment>> = vec![Vec::new(); self.n_resources];
        let mut makespan = 0.0f64;

        for (id, t) in self.tasks.iter().enumerate() {
            let dep_ready = t
                .deps
                .iter()
                .map(|&d| finish[d])
                .fold(0.0f64, f64::max);
            let start = dep_ready.max(free[t.resource]);
            let end = start + t.duration;
            finish[id] = end;
            free[t.resource] = end;
            match t.kind {
                SegmentKind::Work => work_busy[t.resource] += t.duration,
                SegmentKind::Overhead => overhead_busy[t.resource] += t.duration,
            }
            if t.duration > 0.0 {
                timelines[t.resource].push(Segment {
                    task: id,
                    start,
                    end,
                    kind: t.kind,
                    label: t.label.clone(),
                });
            }
            makespan = makespan.max(end);
        }
        SimResult {
            makespan,
            finish,
            work_busy,
            overhead_busy,
            timelines,
        }
    }
}

impl Sim {
    /// Runs the simulation with **out-of-order** resources: each
    /// resource, whenever free, starts the ready task (all dependencies
    /// complete) with the smallest submission index. This models
    /// multi-stream GPUs and worker pools, where independent work can
    /// overtake a stalled queue head; [`Sim::run`]'s in-order semantics
    /// model single CUDA streams.
    ///
    /// Deterministic: ties break by submission index.
    pub fn run_out_of_order(&self) -> SimResult {
        let n = self.tasks.len();
        let mut dep_remaining: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }
        // Ready sets per resource, ordered by submission index.
        let mut ready: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); self.n_resources];
        for (id, t) in self.tasks.iter().enumerate() {
            if t.deps.is_empty() {
                ready[t.resource].insert(id);
            }
        }
        let mut free = vec![0.0f64; self.n_resources];
        let mut running: Vec<Option<usize>> = vec![None; self.n_resources];
        let mut finish = vec![0.0f64; n];
        let mut work_busy = vec![0.0f64; self.n_resources];
        let mut overhead_busy = vec![0.0f64; self.n_resources];
        let mut timelines: Vec<Vec<Segment>> = vec![Vec::new(); self.n_resources];
        let mut done = 0usize;
        let mut makespan = 0.0f64;
        // Event queue of (finish time, resource); BinaryHeap is a
        // max-heap, so order by Reverse.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Ev(f64, usize);
        impl Eq for Ev {}
        impl PartialOrd for Ev {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Ev {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&o.0).then(self.1.cmp(&o.1))
            }
        }
        let mut events: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();

        let start_ready =
            |r: usize,
             now: f64,
             ready: &mut Vec<std::collections::BTreeSet<usize>>,
             free: &mut Vec<f64>,
             running: &mut Vec<Option<usize>>,
             timelines: &mut Vec<Vec<Segment>>,
             work_busy: &mut Vec<f64>,
             overhead_busy: &mut Vec<f64>,
             events: &mut BinaryHeap<Reverse<Ev>>,
             tasks: &[TaskSpec]| {
                if running[r].is_some() {
                    return;
                }
                let Some(&id) = ready[r].iter().next() else {
                    return;
                };
                ready[r].remove(&id);
                let t = &tasks[id];
                let start = now.max(free[r]);
                let end = start + t.duration;
                free[r] = end;
                running[r] = Some(id);
                match t.kind {
                    SegmentKind::Work => work_busy[r] += t.duration,
                    SegmentKind::Overhead => overhead_busy[r] += t.duration,
                }
                if t.duration > 0.0 {
                    timelines[r].push(Segment {
                        task: id,
                        start,
                        end,
                        kind: t.kind,
                        label: t.label.clone(),
                    });
                }
                events.push(Reverse(Ev(end, r)));
            };

        // Kick off every resource at t = 0.
        for r in 0..self.n_resources {
            start_ready(
                r, 0.0, &mut ready, &mut free, &mut running, &mut timelines, &mut work_busy,
                &mut overhead_busy, &mut events, &self.tasks,
            );
        }
        while let Some(Reverse(Ev(now, r))) = events.pop() {
            let Some(id) = running[r].take() else {
                continue;
            };
            finish[id] = now;
            makespan = makespan.max(now);
            done += 1;
            // Release dependents.
            for &dep in &dependents[id] {
                dep_remaining[dep] -= 1;
                if dep_remaining[dep] == 0 {
                    ready[self.tasks[dep].resource].insert(dep);
                }
            }
            // Try to start work everywhere something may have unblocked.
            for rr in 0..self.n_resources {
                start_ready(
                    rr, now, &mut ready, &mut free, &mut running, &mut timelines,
                    &mut work_busy, &mut overhead_busy, &mut events, &self.tasks,
                );
            }
        }
        debug_assert_eq!(done, n, "all tasks must complete");
        SimResult {
            makespan,
            finish,
            work_busy,
            overhead_busy,
            timelines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_sums_durations() {
        let mut sim = Sim::new(1);
        let a = sim.push(TaskSpec::work(0, 1.0, vec![], "a")).unwrap();
        let b = sim.push(TaskSpec::work(0, 2.0, vec![a], "b")).unwrap();
        sim.push(TaskSpec::work(0, 3.0, vec![b], "c")).unwrap();
        let r = sim.run();
        assert_eq!(r.makespan, 6.0);
        assert_eq!(r.utilization(0), 1.0);
    }

    #[test]
    fn independent_tasks_on_two_resources_overlap() {
        let mut sim = Sim::new(2);
        sim.push(TaskSpec::work(0, 3.0, vec![], "cpu")).unwrap();
        sim.push(TaskSpec::work(1, 2.0, vec![], "gpu")).unwrap();
        let r = sim.run();
        assert_eq!(r.makespan, 3.0);
        assert_eq!(r.utilization(0), 1.0);
        assert!((r.utilization(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dependency_across_resources_serializes() {
        let mut sim = Sim::new(2);
        let a = sim.push(TaskSpec::work(0, 3.0, vec![], "cpu")).unwrap();
        sim.push(TaskSpec::work(1, 2.0, vec![a], "gpu")).unwrap();
        let r = sim.run();
        assert_eq!(r.makespan, 5.0);
    }

    #[test]
    fn fifo_order_is_respected_within_resource() {
        // Task c has no deps but was submitted after b on the same
        // resource, so it cannot jump the queue.
        let mut sim = Sim::new(2);
        let a = sim.push(TaskSpec::work(1, 5.0, vec![], "slow-dep")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![a], "b")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![], "c")).unwrap();
        let r = sim.run();
        // b starts at 5, ends 6; c runs after b (FIFO): ends 7.
        assert_eq!(r.finish[1], 6.0);
        assert_eq!(r.finish[2], 7.0);
    }

    #[test]
    fn overhead_is_tracked_separately() {
        let mut sim = Sim::new(1);
        let a = sim.push(TaskSpec::overhead(0, 1.0, vec![], "launch")).unwrap();
        sim.push(TaskSpec::work(0, 3.0, vec![a], "kernel")).unwrap();
        let r = sim.run();
        assert_eq!(r.makespan, 4.0);
        assert_eq!(r.work_busy[0], 3.0);
        assert_eq!(r.overhead_busy[0], 1.0);
        assert!((r.utilization(0) - 0.75).abs() < 1e-12);
        assert!((r.overhead_fraction(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn graph_validation_catches_errors() {
        let mut sim = Sim::new(1);
        assert!(sim.push(TaskSpec::work(1, 1.0, vec![], "bad-res")).is_err());
        assert!(sim.push(TaskSpec::work(0, -1.0, vec![], "bad-dur")).is_err());
        assert!(sim.push(TaskSpec::work(0, f64::NAN, vec![], "nan")).is_err());
        assert!(sim.push(TaskSpec::work(0, 1.0, vec![3], "fwd-dep")).is_err());
    }

    #[test]
    fn zero_duration_tasks_do_not_pollute_timeline() {
        let mut sim = Sim::new(1);
        sim.push(TaskSpec::work(0, 0.0, vec![], "nop")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![], "real")).unwrap();
        let r = sim.run();
        assert_eq!(r.timelines[0].len(), 1);
        assert_eq!(r.timelines[0][0].label, "real");
    }

    #[test]
    fn empty_sim_is_safe() {
        let sim = Sim::new(2);
        let r = sim.run();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.utilization(0), 0.0);
        assert_eq!(r.overhead_fraction(1), 0.0);
    }

    #[test]
    fn out_of_order_overtakes_stalled_queue_head() {
        // In-order: b (behind stalled a) waits; out-of-order: b runs
        // immediately.
        let mut sim = Sim::new(2);
        let slow = sim.push(TaskSpec::work(1, 10.0, vec![], "slow-dep")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![slow], "a")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![], "b")).unwrap();
        let fifo = sim.run();
        let ooo = sim.run_out_of_order();
        assert_eq!(fifo.finish[2], 12.0, "FIFO: b behind a");
        assert_eq!(ooo.finish[2], 1.0, "OOO: b overtakes");
        assert_eq!(ooo.finish[1], 11.0);
        assert_eq!(ooo.makespan, 11.0);
    }

    #[test]
    fn out_of_order_matches_in_order_for_chains() {
        // With pure chains there is nothing to reorder.
        let mut sim = Sim::new(2);
        let a = sim.push(TaskSpec::work(0, 2.0, vec![], "a")).unwrap();
        let b = sim.push(TaskSpec::work(1, 3.0, vec![a], "b")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![b], "c")).unwrap();
        let fifo = sim.run();
        let ooo = sim.run_out_of_order();
        assert_eq!(fifo.makespan, ooo.makespan);
        assert_eq!(fifo.finish, ooo.finish);
        assert_eq!(fifo.work_busy, ooo.work_busy);
    }

    #[test]
    fn out_of_order_ties_break_by_submission_index() {
        let mut sim = Sim::new(1);
        sim.push(TaskSpec::work(0, 1.0, vec![], "first")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![], "second")).unwrap();
        let r = sim.run_out_of_order();
        assert!(r.finish[0] < r.finish[1]);
    }

    #[test]
    fn diamond_dependency_waits_for_both_parents() {
        let mut sim = Sim::new(3);
        let root = sim.push(TaskSpec::work(0, 1.0, vec![], "root")).unwrap();
        let left = sim.push(TaskSpec::work(1, 5.0, vec![root], "left")).unwrap();
        let right = sim.push(TaskSpec::work(2, 2.0, vec![root], "right")).unwrap();
        sim.push(TaskSpec::work(0, 1.0, vec![left, right], "join"))
            .unwrap();
        let r = sim.run();
        assert_eq!(r.makespan, 7.0); // 1 + 5 + 1
    }
}
