//! Discrete-event simulator of heterogeneous CPU/GPU platforms for MoE
//! inference.
//!
//! The paper's headline results were measured on hardware this
//! reproduction does not have (dual Xeon 8452Y with AMX, NVIDIA
//! A100/RTX 4080). This crate substitutes a **calibrated simulator**:
//!
//! * [`hardware`] — machine descriptions (socket counts, AMX/AVX-512
//!   rooflines, local/remote memory bandwidth, GPU TFLOPS/HBM, PCIe),
//!   with presets matching §6.1's testbed.
//! * [`desim`] — a deterministic task-graph discrete-event engine:
//!   tasks bind to resources (CPU sockets, GPU compute, GPU launch
//!   engine, PCIe), run FIFO per resource after their dependencies, and
//!   produce makespans, per-resource busy/overhead time and full
//!   timelines (Figure 10's accounting).
//! * [`cost`] — operation cost models: the CPU MoE kernel model
//!   (reproducing Figures 3 and 7: bandwidth-bound at low arithmetic
//!   intensity, kernel-efficiency-bound at high ARI, AMX tile padding
//!   and task overheads), the GPU roofline, kernel-launch overheads
//!   (Figure 4) and transfer/synchronization costs.
//! * [`workload`] — per-layer FLOP/byte workloads derived from the
//!   full-scale [`kt_model::ModelConfig`]s of Table 1.
//! * [`policy`] — the systems under comparison: Fiddler-style,
//!   llama.cpp-style and KTransformers with individually toggleable
//!   optimizations (v/m/d/n/c of Figure 14) plus Expert Deferral.
//! * [`experiments`] — series builders for every figure and table of
//!   the evaluation, consumed by the `kt-bench` binaries.
//!
//! Calibration constants come from numbers the paper itself reports
//! (peak/achieved TFLOPS, bandwidths, launch counts and latencies,
//! reference throughputs); see `cost::Calibration`.

pub mod cost;
pub mod desim;
pub mod error;
pub mod experiments;
pub mod hardware;
pub mod pipeline;
pub mod policy;
pub mod workload;

pub use cost::{Calibration, ExpertPlacementCost};
pub use desim::{Segment, SegmentKind, Sim, SimResult, TaskSpec};
pub use error::SimError;
pub use hardware::{CpuSpec, GpuSpec, Platform};
pub use pipeline::{kv_offload_decode_sweep, simulate_batch_decode, simulate_prefill_pipeline, KvOffloadPoint, PipelineReport};
pub use policy::{Phase, SystemPolicy};
pub use workload::LayerWorkload;
