//! Property-based tests of the discrete-event engine's scheduling
//! invariants over randomly generated task graphs.

use kt_hwsim::{Sim, TaskSpec};
use proptest::prelude::*;

/// A random DAG: each task picks a resource, a duration and backward
/// dependencies.
#[derive(Debug, Clone)]
struct RandomGraph {
    n_resources: usize,
    tasks: Vec<(usize, f64, Vec<usize>)>,
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (1usize..4, 1usize..24).prop_flat_map(|(n_resources, n_tasks)| {
        let task =
            move |id: usize| {
                (
                    0..n_resources,
                    0.0f64..5.0,
                    proptest::collection::vec(0..id.max(1), 0..3.min(id + 1)),
                )
            };
        let mut tasks = Vec::new();
        for id in 0..n_tasks {
            tasks.push(task(id));
        }
        tasks.prop_map(move |tasks| RandomGraph {
            n_resources,
            tasks,
        })
    })
}

fn build(g: &RandomGraph) -> Sim {
    let mut sim = Sim::new(g.n_resources);
    for (i, (r, d, deps)) in g.tasks.iter().enumerate() {
        let deps: Vec<usize> = deps.iter().copied().filter(|&x| x < i).collect();
        sim.push(TaskSpec::work(*r, *d, deps, format!("t{i}")))
            .unwrap();
    }
    sim
}

/// Longest dependency chain length (sum of durations), a makespan lower
/// bound for any valid schedule.
fn critical_path(g: &RandomGraph) -> f64 {
    let mut depth = vec![0.0f64; g.tasks.len()];
    for (i, (_, d, deps)) in g.tasks.iter().enumerate() {
        let base = deps
            .iter()
            .filter(|&&x| x < i)
            .map(|&x| depth[x])
            .fold(0.0f64, f64::max);
        depth[i] = base + d;
    }
    depth.into_iter().fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both schedulers respect the two fundamental lower bounds: the
    /// critical path and the busiest resource's total work.
    #[test]
    fn makespan_respects_lower_bounds(g in graph_strategy()) {
        let sim = build(&g);
        let cp = critical_path(&g);
        let mut per_resource = vec![0.0f64; g.n_resources];
        for (r, d, _) in &g.tasks {
            per_resource[*r] += d;
        }
        let busiest = per_resource.iter().fold(0.0f64, |m, &x| m.max(x));
        for result in [sim.run(), sim.run_out_of_order()] {
            prop_assert!(result.makespan >= cp - 1e-9, "cp {cp} vs {}", result.makespan);
            prop_assert!(result.makespan >= busiest - 1e-9);
        }
    }

    /// Total busy time is schedule-independent, and utilization never
    /// exceeds 1.
    #[test]
    fn busy_time_is_conserved(g in graph_strategy()) {
        let sim = build(&g);
        let fifo = sim.run();
        let ooo = sim.run_out_of_order();
        for r in 0..g.n_resources {
            prop_assert!((fifo.work_busy[r] - ooo.work_busy[r]).abs() < 1e-9);
            prop_assert!(fifo.utilization(r) <= 1.0 + 1e-9);
            prop_assert!(ooo.utilization(r) <= 1.0 + 1e-9);
        }
    }

    /// Every task finishes after all of its dependencies, in both
    /// schedulers.
    #[test]
    fn dependencies_are_respected(g in graph_strategy()) {
        let sim = build(&g);
        for result in [sim.run(), sim.run_out_of_order()] {
            for (i, (_, d, deps)) in g.tasks.iter().enumerate() {
                for &dep in deps.iter().filter(|&&x| x < i) {
                    prop_assert!(
                        result.finish[i] >= result.finish[dep] + d - 1e-9,
                        "task {i} finished before its dependency {dep} plus itself"
                    );
                }
            }
        }
    }

    /// Timeline segments on one resource never overlap (a resource runs
    /// one task at a time), in both schedulers.
    #[test]
    fn timelines_have_no_overlap(g in graph_strategy()) {
        let sim = build(&g);
        for result in [sim.run(), sim.run_out_of_order()] {
            for lane in &result.timelines {
                let mut sorted: Vec<(f64, f64)> =
                    lane.iter().map(|s| (s.start, s.end)).collect();
                sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in sorted.windows(2) {
                    prop_assert!(w[1].0 >= w[0].1 - 1e-9, "overlap: {w:?}");
                }
            }
        }
    }
}
