//! Error type for the engine.

use std::fmt;

/// Errors produced by the hybrid engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Invalid engine configuration.
    Config {
        /// Human-readable description.
        what: String,
    },
    /// Execution failure (propagated from model/kernel layers or the
    /// device runtime).
    Exec {
        /// Human-readable description.
        what: String,
    },
}

impl EngineError {
    /// Convenience constructor for [`EngineError::Config`].
    pub fn config(what: impl Into<String>) -> Self {
        EngineError::Config { what: what.into() }
    }

    /// Convenience constructor for [`EngineError::Exec`].
    pub fn exec(what: impl Into<String>) -> Self {
        EngineError::Exec { what: what.into() }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config { what } => write!(f, "invalid engine config: {what}"),
            EngineError::Exec { what } => write!(f, "engine execution error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<kt_model::ModelError> for EngineError {
    fn from(e: kt_model::ModelError) -> Self {
        EngineError::exec(e.to_string())
    }
}

impl From<kt_kernels::KernelError> for EngineError {
    fn from(e: kt_kernels::KernelError) -> Self {
        EngineError::exec(e.to_string())
    }
}

impl From<kt_tensor::TensorError> for EngineError {
    fn from(e: kt_tensor::TensorError) -> Self {
        EngineError::exec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: EngineError = kt_model::ModelError::exec("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: EngineError = kt_kernels::KernelError::shape("bang").into();
        assert!(e.to_string().contains("bang"));
    }
}
