//! The KTransformers engine: asynchronous CPU/GPU hybrid execution.
//!
//! This crate is the paper's primary system contribution, rebuilt on a
//! **virtual GPU** so every scheduling mechanism is genuinely exercised
//! even without CUDA hardware:
//!
//! * [`vgpu`] — a device thread with in-order streams, kernel launches
//!   (with configurable injected launch latency, emulating the 5-16 µs
//!   costs of Figure 4), `cudaLaunchHostFunc`-style in-stream host
//!   callbacks, stream synchronization, and **graph capture/replay**:
//!   a captured op sequence replays with a single launch, which is how
//!   the paper fits the whole decode path into one CUDA Graph (§3.3).
//! * [`cpu_backend`] — the CPU side: a lock-free task queue drained by
//!   background worker threads, fed by the control thread exactly as
//!   §3.3 describes ("pushes routed-expert tasks into a lock-free
//!   queue ... background worker threads execute the queued tasks").
//! * [`placement`] — the placement plan (attention/shared experts/LM
//!   head on GPU, routed experts on CPU), the §3.1 split.
//! * [`engine`] — [`engine::HybridEngine`]: an end-to-end MoE decoder
//!   wiring the two backends together, with three scheduling modes
//!   (synchronous baseline, async single-graph, async + Expert
//!   Deferral) that are numerically equivalent where the paper says
//!   they are and differ exactly where deferral changes the math.

pub mod cpu_backend;
pub mod engine;
pub mod error;
pub mod placement;
pub mod profiling;
pub mod vgpu;

pub use cpu_backend::CpuBackend;
pub use engine::{
    BatchSeq, EngineConfig, FaultHook, HybridEngine, RoutingHook, SchedMode, UtilizationReport,
};
pub use error::EngineError;
pub use placement::dynamic::{ExpertCache, ExpertCacheStats, PlacementPolicy};
pub use placement::{DeviceKind, PlacementPlan};
pub use kt_tensor::ArenaStats;
// Re-exported so downstream crates (kt-serve's `kt_build_info` gauge)
// can label replicas with the kernel ISA level without a direct
// kt-kernels dependency.
pub use kt_kernels::simd::{effective_simd_level, SimdLevel};
pub use profiling::{percentile_ns, ExpertProfile, RequestMetrics, ServeStats};
pub use vgpu::{GraphHandle, LaunchStats, StreamId, VgpuConfig, VirtualGpu};
