//! A virtual GPU device: streams, launches, host callbacks and graphs.
//!
//! Reproduces the CUDA execution semantics the paper's scheduler relies
//! on, with a dedicated device thread standing in for the GPU:
//!
//! * **In-order streams** — ops submitted to a stream execute in
//!   submission order.
//! * **Kernel launches** — each individually-launched op pays a
//!   configurable launch latency on the device timeline (16 µs for
//!   Fiddler's Python path, 5 µs for C++ paths; Figure 4).
//! * **Host functions** — `cudaLaunchHostFunc` analogs: host code that
//!   runs *inside* the stream, used to hand work to the CPU backend and
//!   to collect it without breaking the stream (§3.3).
//! * **Graph capture/replay** — a captured op sequence replays with a
//!   single launch cost, which is how KTransformers fits the entire
//!   decode path into one CUDA Graph.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::EngineError;

/// Identifier of an in-order stream.
pub type StreamId = usize;

/// Device configuration.
#[derive(Debug, Clone, Copy)]
pub struct VgpuConfig {
    /// Latency charged per individually-launched op.
    pub launch_latency: Duration,
    /// Latency charged once per graph replay.
    pub graph_launch_latency: Duration,
    /// Number of streams.
    pub n_streams: usize,
}

impl Default for VgpuConfig {
    fn default() -> Self {
        VgpuConfig {
            launch_latency: Duration::ZERO,
            graph_launch_latency: Duration::ZERO,
            n_streams: 2,
        }
    }
}

/// A device op: a compute kernel or an in-stream host callback.
#[derive(Clone)]
enum Op {
    Kernel(Arc<dyn Fn() + Send + Sync>),
    HostFunc(Arc<dyn Fn() + Send + Sync>),
}

/// A captured, replayable op sequence.
#[derive(Clone)]
pub struct GraphHandle {
    ops: Arc<Vec<Op>>,
}

impl GraphHandle {
    /// Number of captured ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl std::fmt::Debug for GraphHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphHandle").field("ops", &self.ops.len()).finish()
    }
}

/// Launch accounting, mirroring the quantities of Figure 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Individually launched kernels.
    pub kernel_launches: u64,
    /// Host-function callbacks executed in-stream.
    pub host_funcs: u64,
    /// Graph replays (each is ONE launch regardless of graph size).
    pub graph_replays: u64,
    /// Ops executed via graph replay (launch-free).
    pub graph_ops: u64,
    /// Total simulated launch-latency nanoseconds charged.
    pub launch_overhead_ns: u64,
    /// Nanoseconds the device spent executing ops (excludes launch
    /// latency and idle gaps) — the numerator of GPU utilization.
    pub busy_ns: u64,
}

impl LaunchStats {
    /// Total host-side launches issued.
    pub fn total_launches(&self) -> u64 {
        self.kernel_launches + self.graph_replays
    }
}

struct QueueItem {
    stream: StreamId,
    op: Op,
    launch_cost: Duration,
}

#[derive(Default)]
struct DeviceState {
    queue: VecDeque<QueueItem>,
    /// Per-stream (submitted, completed) op counts.
    submitted: Vec<u64>,
    completed: Vec<u64>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<DeviceState>,
    cv: Condvar,
    done_cv: Condvar,
    kernel_launches: AtomicU64,
    host_funcs: AtomicU64,
    graph_replays: AtomicU64,
    graph_ops: AtomicU64,
    launch_overhead_ns: AtomicU64,
    busy_ns: AtomicU64,
    capturing: AtomicBool,
}

/// The virtual GPU device.
pub struct VirtualGpu {
    shared: Arc<Shared>,
    cfg: VgpuConfig,
    device_thread: Option<JoinHandle<()>>,
    capture_buf: Mutex<Vec<Op>>,
}

impl VirtualGpu {
    /// Spawns the device thread.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `n_streams` is zero.
    pub fn new(cfg: VgpuConfig) -> Result<Self, EngineError> {
        if cfg.n_streams == 0 {
            return Err(EngineError::config("vgpu requires at least one stream"));
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(DeviceState {
                queue: VecDeque::new(),
                submitted: vec![0; cfg.n_streams],
                completed: vec![0; cfg.n_streams],
                shutdown: false,
            }),
            cv: Condvar::new(),
            done_cv: Condvar::new(),
            kernel_launches: AtomicU64::new(0),
            host_funcs: AtomicU64::new(0),
            graph_replays: AtomicU64::new(0),
            graph_ops: AtomicU64::new(0),
            launch_overhead_ns: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            capturing: AtomicBool::new(false),
        });
        // Give each stream its own named trace track so CPU/GPU
        // overlap renders on separate rows even though all stream ops
        // execute on the one device thread.
        for s in 0..cfg.n_streams {
            kt_trace::sink().name_track(kt_trace::stream_track(s), &format!("vGPU stream {s}"));
        }
        let worker_shared = Arc::clone(&shared);
        let device_thread = std::thread::Builder::new()
            .name("kt-vgpu".into())
            .spawn(move || device_loop(worker_shared))
            .map_err(|e| EngineError::config(format!("failed to spawn device thread: {e}")))?;
        Ok(VirtualGpu {
            shared,
            cfg,
            device_thread: Some(device_thread),
            capture_buf: Mutex::new(Vec::new()),
        })
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.cfg.n_streams
    }

    fn enqueue(&self, stream: StreamId, op: Op, launch_cost: Duration) {
        debug_assert!(stream < self.cfg.n_streams);
        let mut st = self.shared.state.lock();
        st.submitted[stream] += 1;
        st.queue.push_back(QueueItem {
            stream,
            op,
            launch_cost,
        });
        self.shared.cv.notify_one();
    }

    /// Launches a kernel on `stream`. While capturing, the op is
    /// recorded instead of executed.
    pub fn launch_kernel(
        &self,
        stream: StreamId,
        f: impl Fn() + Send + Sync + 'static,
    ) {
        let op = Op::Kernel(Arc::new(f));
        if self.shared.capturing.load(Ordering::Acquire) {
            self.capture_buf.lock().push(op);
            return;
        }
        self.shared.kernel_launches.fetch_add(1, Ordering::Relaxed);
        self.enqueue(stream, op, self.cfg.launch_latency);
    }

    /// Launches an in-stream host callback (`cudaLaunchHostFunc`).
    pub fn launch_host_func(
        &self,
        stream: StreamId,
        f: impl Fn() + Send + Sync + 'static,
    ) {
        let op = Op::HostFunc(Arc::new(f));
        if self.shared.capturing.load(Ordering::Acquire) {
            self.capture_buf.lock().push(op);
            return;
        }
        self.shared.host_funcs.fetch_add(1, Ordering::Relaxed);
        self.enqueue(stream, op, self.cfg.launch_latency);
    }

    /// Begins capturing ops instead of executing them.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] if a capture is already active.
    pub fn begin_capture(&self) -> Result<(), EngineError> {
        if self.shared.capturing.swap(true, Ordering::AcqRel) {
            return Err(EngineError::exec("capture already in progress"));
        }
        self.capture_buf.lock().clear();
        Ok(())
    }

    /// Ends capture, returning the replayable graph.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] if no capture is active.
    pub fn end_capture(&self) -> Result<GraphHandle, EngineError> {
        if !self.shared.capturing.swap(false, Ordering::AcqRel) {
            return Err(EngineError::exec("no capture in progress"));
        }
        let ops = std::mem::take(&mut *self.capture_buf.lock());
        Ok(GraphHandle { ops: Arc::new(ops) })
    }

    /// Replays a captured graph on `stream` with a **single** launch
    /// cost, regardless of how many ops it contains.
    pub fn launch_graph(&self, stream: StreamId, graph: &GraphHandle) {
        if kt_trace::enabled() {
            kt_trace::record_on(
                kt_trace::stream_track(stream),
                kt_trace::SpanKind::VgpuGraphReplay,
                kt_trace::now_ns(),
                0,
                stream as u32,
                graph.ops.len() as u32,
            );
        }
        self.shared.graph_replays.fetch_add(1, Ordering::Relaxed);
        self.shared
            .graph_ops
            .fetch_add(graph.ops.len() as u64, Ordering::Relaxed);
        let mut first = true;
        for op in graph.ops.iter() {
            let cost = if first {
                self.cfg.graph_launch_latency
            } else {
                Duration::ZERO
            };
            first = false;
            // Host funcs inside graphs are still host funcs for stats.
            if matches!(op, Op::HostFunc(_)) {
                self.shared.host_funcs.fetch_add(1, Ordering::Relaxed);
            }
            self.enqueue(stream, op.clone(), cost);
        }
    }

    /// Blocks until every op submitted to `stream` has executed.
    pub fn synchronize(&self, stream: StreamId) {
        let mut st = self.shared.state.lock();
        while st.completed[stream] < st.submitted[stream] {
            self.shared.done_cv.wait(&mut st);
        }
    }

    /// Blocks until all streams drain.
    pub fn synchronize_all(&self) {
        for s in 0..self.cfg.n_streams {
            self.synchronize(s);
        }
    }

    /// Launch accounting snapshot.
    pub fn stats(&self) -> LaunchStats {
        LaunchStats {
            kernel_launches: self.shared.kernel_launches.load(Ordering::Relaxed),
            host_funcs: self.shared.host_funcs.load(Ordering::Relaxed),
            graph_replays: self.shared.graph_replays.load(Ordering::Relaxed),
            graph_ops: self.shared.graph_ops.load(Ordering::Relaxed),
            launch_overhead_ns: self.shared.launch_overhead_ns.load(Ordering::Relaxed),
            busy_ns: self.shared.busy_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.shared.kernel_launches.store(0, Ordering::Relaxed);
        self.shared.host_funcs.store(0, Ordering::Relaxed);
        self.shared.graph_replays.store(0, Ordering::Relaxed);
        self.shared.graph_ops.store(0, Ordering::Relaxed);
        self.shared.launch_overhead_ns.store(0, Ordering::Relaxed);
        self.shared.busy_ns.store(0, Ordering::Relaxed);
    }
}

impl Drop for VirtualGpu {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(h) = self.device_thread.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for VirtualGpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualGpu")
            .field("n_streams", &self.cfg.n_streams)
            .finish_non_exhaustive()
    }
}

fn device_loop(shared: Arc<Shared>) {
    loop {
        let item = {
            let mut st = shared.state.lock();
            loop {
                if let Some(item) = st.queue.pop_front() {
                    break item;
                }
                if st.shutdown {
                    return;
                }
                shared.cv.wait(&mut st);
            }
        };
        let tracing = kt_trace::enabled();
        let track = kt_trace::stream_track(item.stream);
        if !item.launch_cost.is_zero() {
            // Simulated launch latency occupies the device timeline.
            shared
                .launch_overhead_ns
                .fetch_add(item.launch_cost.as_nanos() as u64, Ordering::Relaxed);
            let t0 = if tracing { kt_trace::now_ns() } else { 0 };
            spin_for(item.launch_cost);
            if tracing {
                let t1 = kt_trace::now_ns();
                kt_trace::record_on(
                    track,
                    kt_trace::SpanKind::VgpuLaunch,
                    t0,
                    t1.saturating_sub(t0),
                    item.stream as u32,
                    0,
                );
            }
        }
        let t0 = if tracing { kt_trace::now_ns() } else { 0 };
        let op_start = std::time::Instant::now();
        match &item.op {
            Op::Kernel(f) | Op::HostFunc(f) => f(),
        }
        shared
            .busy_ns
            .fetch_add(op_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if tracing {
            let kind = match &item.op {
                Op::Kernel(_) => kt_trace::SpanKind::VgpuKernel,
                Op::HostFunc(_) => kt_trace::SpanKind::VgpuHostFunc,
            };
            let t1 = kt_trace::now_ns();
            kt_trace::record_on(track, kind, t0, t1.saturating_sub(t0), item.stream as u32, 0);
        }
        let mut st = shared.state.lock();
        st.completed[item.stream] += 1;
        shared.done_cv.notify_all();
    }
}

/// Busy-waits for `d` (sleep granularity on Linux is too coarse for
/// microsecond launch costs).
fn spin_for(d: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn gpu(cfg: VgpuConfig) -> VirtualGpu {
        VirtualGpu::new(cfg).unwrap()
    }

    #[test]
    fn zero_streams_is_rejected() {
        assert!(VirtualGpu::new(VgpuConfig {
            n_streams: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn stream_order_is_preserved() {
        let g = gpu(VgpuConfig::default());
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let log = Arc::clone(&log);
            g.launch_kernel(0, move || log.lock().push(i));
        }
        g.synchronize(0);
        assert_eq!(*log.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn host_funcs_interleave_in_stream_order() {
        let g = gpu(VgpuConfig::default());
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        let l3 = Arc::clone(&log);
        g.launch_kernel(0, move || l1.lock().push("k1"));
        g.launch_host_func(0, move || l2.lock().push("host"));
        g.launch_kernel(0, move || l3.lock().push("k2"));
        g.synchronize(0);
        assert_eq!(*log.lock(), vec!["k1", "host", "k2"]);
    }

    #[test]
    fn synchronize_blocks_until_done() {
        let g = gpu(VgpuConfig::default());
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        g.launch_kernel(0, move || {
            std::thread::sleep(Duration::from_millis(20));
            f.store(true, Ordering::Release);
        });
        g.synchronize(0);
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn capture_records_without_executing() {
        let g = gpu(VgpuConfig::default());
        let count = Arc::new(AtomicUsize::new(0));
        g.begin_capture().unwrap();
        for _ in 0..5 {
            let c = Arc::clone(&count);
            g.launch_kernel(0, move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let graph = g.end_capture().unwrap();
        assert_eq!(graph.len(), 5);
        g.synchronize(0);
        assert_eq!(count.load(Ordering::Relaxed), 0, "capture must not execute");

        g.launch_graph(0, &graph);
        g.launch_graph(0, &graph);
        g.synchronize(0);
        assert_eq!(count.load(Ordering::Relaxed), 10);
        let stats = g.stats();
        assert_eq!(stats.graph_replays, 2);
        assert_eq!(stats.graph_ops, 10);
        assert_eq!(stats.kernel_launches, 0);
        assert_eq!(stats.total_launches(), 2);
    }

    #[test]
    fn double_capture_is_rejected() {
        let g = gpu(VgpuConfig::default());
        g.begin_capture().unwrap();
        assert!(g.begin_capture().is_err());
        let _ = g.end_capture().unwrap();
        assert!(g.end_capture().is_err());
    }

    #[test]
    fn launch_latency_is_charged_per_kernel_but_once_per_graph() {
        let lat = Duration::from_micros(500);
        let g = gpu(VgpuConfig {
            launch_latency: lat,
            graph_launch_latency: lat,
            n_streams: 1,
        });
        // 10 individual launches charge ~10x latency.
        for _ in 0..10 {
            g.launch_kernel(0, || {});
        }
        g.synchronize(0);
        let individual = g.stats().launch_overhead_ns;
        assert!(individual >= 10 * 500_000, "individual={individual}");

        // The same 10 ops replayed as a graph charge ~1x latency.
        g.reset_stats();
        g.begin_capture().unwrap();
        for _ in 0..10 {
            g.launch_kernel(0, || {});
        }
        let graph = g.end_capture().unwrap();
        g.launch_graph(0, &graph);
        g.synchronize(0);
        let graphed = g.stats().launch_overhead_ns;
        assert!(
            graphed < individual / 5,
            "graphed={graphed} individual={individual}"
        );
    }

    #[test]
    fn two_streams_make_independent_progress() {
        let g = gpu(VgpuConfig::default());
        let hits = Arc::new(AtomicUsize::new(0));
        let h1 = Arc::clone(&hits);
        let h2 = Arc::clone(&hits);
        g.launch_kernel(0, move || {
            h1.fetch_add(1, Ordering::Relaxed);
        });
        g.launch_kernel(1, move || {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        g.synchronize_all();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn spin_kernel_can_wait_on_host_progress() {
        // The §3.3 pattern: a kernel spins on a flag another thread
        // sets — the decode graph's "wait for CPU experts" op.
        let g = gpu(VgpuConfig::default());
        let flag = Arc::new(AtomicBool::new(false));
        let observed = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let o = Arc::clone(&observed);
        g.launch_kernel(0, move || {
            while !f.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            o.store(true, Ordering::Release);
        });
        std::thread::sleep(Duration::from_millis(10));
        flag.store(true, Ordering::Release);
        g.synchronize(0);
        assert!(observed.load(Ordering::Acquire));
    }

    #[test]
    fn stats_reset_works() {
        let g = gpu(VgpuConfig::default());
        g.launch_kernel(0, || {});
        g.launch_host_func(0, || {});
        g.synchronize(0);
        assert_eq!(g.stats().kernel_launches, 1);
        assert_eq!(g.stats().host_funcs, 1);
        g.reset_stats();
        assert_eq!(g.stats(), LaunchStats::default());
    }
}
