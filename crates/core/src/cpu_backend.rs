//! The CPU expert backend: lock-free queue + background workers.
//!
//! §3.3: "A CPU control thread then (i) pushes routed-expert tasks into
//! a lock-free queue and (ii) launches GPU kernels for the shared
//! experts. Background worker threads execute the queued tasks in
//! parallel."
//!
//! Tasks are arbitrary closures; completion is communicated through
//! caller-owned atomic counters so the GPU-side merge kernel can spin
//! on them without any host synchronization (the single-CUDA-Graph
//! requirement).

use crossbeam::queue::SegQueue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::EngineError;

/// A unit of CPU work.
pub type CpuTask = Box<dyn FnOnce() + Send>;

struct Shared {
    queue: SegQueue<CpuTask>,
    shutdown: AtomicBool,
    /// Tasks that panicked (isolated; the worker survives).
    panicked_tasks: AtomicU64,
    /// Nanoseconds workers spent executing tasks (all workers summed).
    busy_ns: AtomicU64,
}

/// Background worker pool fed by a lock-free queue.
pub struct CpuBackend {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl CpuBackend {
    /// Spawns `n_workers` background threads.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] when `n_workers` is zero.
    pub fn new(n_workers: usize) -> Result<Self, EngineError> {
        if n_workers == 0 {
            return Err(EngineError::config("cpu backend requires >= 1 worker"));
        }
        let shared = Arc::new(Shared {
            queue: SegQueue::new(),
            shutdown: AtomicBool::new(false),
            panicked_tasks: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kt-cpu-{i}"))
                    .spawn(move || worker_loop(shared))
                    .map_err(|e| EngineError::config(format!("spawn failed: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CpuBackend { shared, workers })
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a task (non-blocking, lock-free).
    pub fn submit(&self, task: CpuTask) {
        self.shared.queue.push(task);
    }

    /// Tasks currently waiting (approximate).
    pub fn backlog(&self) -> usize {
        self.shared.queue.len()
    }

    /// Number of submitted tasks that panicked. Workers isolate task
    /// panics and keep serving — a poisoned expert computation must not
    /// wedge the whole decode pipeline — but the engine surfaces the
    /// count so callers can fail the affected request.
    pub fn panicked_tasks(&self) -> u64 {
        self.shared.panicked_tasks.load(Ordering::Acquire)
    }

    /// Total nanoseconds workers spent executing tasks (summed across
    /// workers) — the numerator of CPU-backend utilization.
    pub fn busy_ns(&self) -> u64 {
        self.shared.busy_ns.load(Ordering::Acquire)
    }

    /// Resets the busy-time counter (between measurement windows).
    pub fn reset_busy(&self) {
        self.shared.busy_ns.store(0, Ordering::Release);
    }
}

impl Drop for CpuBackend {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for CpuBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuBackend")
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut idle_spins = 0u32;
    loop {
        if let Some(task) = shared.queue.pop() {
            idle_spins = 0;
            // Isolate task panics: the worker must survive to serve the
            // next request (completion counters of the panicking task
            // are the submitter's responsibility to time out on).
            let start = std::time::Instant::now();
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                shared.panicked_tasks.fetch_add(1, Ordering::Release);
            }
            shared
                .busy_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Adaptive back-off: spin briefly (decode-latency critical),
        // then yield to avoid starving co-located threads.
        idle_spins += 1;
        if idle_spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn wait_for(pred: impl Fn() -> bool, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < timeout {
            if pred() {
                return true;
            }
            std::thread::yield_now();
        }
        pred()
    }

    #[test]
    fn zero_workers_is_rejected() {
        assert!(CpuBackend::new(0).is_err());
    }

    #[test]
    fn all_submitted_tasks_run() {
        let backend = CpuBackend::new(3).unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&count);
            backend.submit(Box::new(move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        assert!(wait_for(
            || count.load(Ordering::Relaxed) == 100,
            Duration::from_secs(5)
        ));
    }

    #[test]
    fn counters_enable_spin_waiting() {
        // The engine's merge pattern: submit N tasks that decrement a
        // counter; a consumer spins until it hits zero.
        let backend = CpuBackend::new(2).unwrap();
        let remaining = Arc::new(AtomicUsize::new(8));
        for _ in 0..8 {
            let r = Arc::clone(&remaining);
            backend.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                r.fetch_sub(1, Ordering::AcqRel);
            }));
        }
        assert!(wait_for(
            || remaining.load(Ordering::Acquire) == 0,
            Duration::from_secs(5)
        ));
    }

    #[test]
    fn drop_waits_for_workers_without_losing_running_tasks() {
        let count = Arc::new(AtomicUsize::new(0));
        {
            let backend = CpuBackend::new(2).unwrap();
            for _ in 0..10 {
                let c = Arc::clone(&count);
                backend.submit(Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }));
            }
            // Give workers a moment; drop may race with the tail of the
            // queue, which is fine for shutdown semantics — but nothing
            // already started may be lost.
            assert!(wait_for(
                || count.load(Ordering::Relaxed) == 10,
                Duration::from_secs(5)
            ));
        }
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let backend = CpuBackend::new(1).unwrap();
        backend.submit(Box::new(|| panic!("poisoned expert")));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        backend.submit(Box::new(move || {
            d.store(1, Ordering::Release);
        }));
        assert!(wait_for(
            || done.load(Ordering::Acquire) == 1,
            Duration::from_secs(5)
        ));
        assert_eq!(backend.panicked_tasks(), 1);
    }

    #[test]
    fn backlog_reports_queue_depth() {
        let backend = CpuBackend::new(1).unwrap();
        let gate = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&gate);
        backend.submit(Box::new(move || {
            while g.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        }));
        for _ in 0..5 {
            backend.submit(Box::new(|| {}));
        }
        assert!(backend.backlog() >= 4);
        gate.store(1, Ordering::Release);
        assert!(wait_for(|| backend.backlog() == 0, Duration::from_secs(5)));
    }
}
