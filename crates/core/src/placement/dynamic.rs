//! Cost-model-driven dynamic expert placement (ROADMAP item 1).
//!
//! The static split (§3.1) leaves simulated VRAM idle as expert
//! storage even though gating statistics are heavily skewed. This
//! module treats VRAM as a byte-budgeted [`ExpertCache`] and, per step
//! and per MoE layer, partitions the routed (immediate) token→expert
//! assignment between CPU and vGPU execution by comparing calibrated
//! costs from `kt_hwsim::cost`:
//!
//! - CPU side: the hybrid AMX/AVX-512 roofline (`cpu_moe_time` with one
//!   active expert — tile padding and per-task overhead included),
//! - GPU side: the same host roofline (the harness vGPU executes on
//!   host cores at host speed) plus the calibrated PCIe upload term
//!   when the expert is not resident in the cache.
//!
//! Assignment is greedy makespan scheduling: experts are visited in
//! descending CPU-cost order and each goes to the device with the
//! smaller finish time (accumulated load + own cost), so the two
//! devices overlap rather than one of them hoarding all the work.
//! Ties prefer CPU, which keeps the policy conservative with respect
//! to the static split.
//!
//! Cache admission and eviction are value-driven, not plain LRU: the
//! value of a (layer, expert) slot is an EWMA of its per-step gating
//! mass with recency as the tiebreak, so persistently-hot experts stay
//! resident while one-off activations run on CPU without thrashing.
//!
//! Everything here is pure bookkeeping — execution happens in the
//! engine, which keeps outputs bitwise identical to the all-CPU static
//! split by merging per-expert bucket outputs through the canonical
//! serial scatter-add order (see `kt_kernels::scatter_bucket_outs`).

use std::collections::HashMap;

use kt_hwsim::{Calibration, Platform};
use kt_kernels::MoeRouting;
use kt_trace::{counter_add, CounterKind};

/// Which expert placement policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The paper's static split: all routed experts execute on CPU.
    #[default]
    Static,
    /// Per-step cost-model-driven CPU/vGPU partitioning with a
    /// value-aware VRAM expert cache (`EngineConfig.expert_cache_bytes`).
    Dynamic,
}

/// EWMA smoothing factor for per-expert gating mass. Small enough to
/// remember a few hundred steps of history, large enough to adapt when
/// the routing distribution shifts mid-sequence.
const EWMA_ALPHA: f64 = 0.05;

/// Snapshot of [`ExpertCache`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpertCacheStats {
    /// GPU-placed expert lookups that found the expert resident.
    pub hits: u64,
    /// GPU-placed expert lookups that missed (upload term paid).
    pub misses: u64,
    /// Experts admitted into the cache.
    pub insertions: u64,
    /// Experts evicted to make room.
    pub evictions: u64,
    /// Total bytes evicted.
    pub evicted_bytes: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Entries currently resident.
    pub resident_entries: u64,
}

/// A byte-budgeted cache of experts "resident" in simulated VRAM.
///
/// Residency only affects the cost model (no upload term) and the
/// counters — the vGPU device thread reads the same host memory either
/// way, so this is a faithful model of what a real VRAM expert cache
/// would change about the schedule, without moving bytes.
#[derive(Debug)]
pub struct ExpertCache {
    budget_bytes: usize,
    /// (layer, expert) → weight bytes of the resident copy.
    resident: HashMap<(usize, usize), usize>,
    /// Per-layer, per-expert EWMA of gating mass (sum of routing
    /// weights each step).
    ewma: Vec<Vec<f64>>,
    /// Per-layer, per-expert last step the expert was routed to.
    last_used: Vec<Vec<u64>>,
    /// Monotone step counter, advanced per `record_gating` call.
    step: u64,
    resident_bytes: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl ExpertCache {
    /// A cache with `budget_bytes` of simulated VRAM over a model of
    /// `n_layers` layers with `n_experts` routed experts each.
    pub fn new(budget_bytes: usize, n_layers: usize, n_experts: usize) -> Self {
        ExpertCache {
            budget_bytes,
            resident: HashMap::new(),
            ewma: vec![vec![0.0; n_experts]; n_layers],
            last_used: vec![vec![0; n_experts]; n_layers],
            step: 0,
            resident_bytes: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            evicted_bytes: 0,
        }
    }

    /// Folds one step's routing for `layer` into the EWMA gating-mass
    /// statistics. Every expert of the layer decays; routed experts
    /// additionally gain their step mass and refresh recency.
    pub fn record_gating(&mut self, layer: usize, routing: &MoeRouting) {
        self.step += 1;
        let n_experts = self.ewma[layer].len();
        let mut mass = vec![0.0f64; n_experts];
        for row in &routing.assignments {
            for &(e, w) in row {
                if e < n_experts {
                    mass[e] += w as f64;
                }
            }
        }
        for (e, &m) in mass.iter().enumerate() {
            let v = &mut self.ewma[layer][e];
            *v = (1.0 - EWMA_ALPHA) * *v + EWMA_ALPHA * m;
            if m > 0.0 {
                self.last_used[layer][e] = self.step;
            }
        }
    }

    /// Is this expert resident in simulated VRAM?
    pub fn is_resident(&self, layer: usize, expert: usize) -> bool {
        self.resident.contains_key(&(layer, expert))
    }

    /// Value of a slot: EWMA gating mass with recency as tiebreak.
    fn value(&self, layer: usize, expert: usize) -> (f64, u64) {
        (self.ewma[layer][expert], self.last_used[layer][expert])
    }

    /// Records a GPU-placed execution of a resident expert.
    pub fn touch(&mut self, layer: usize, expert: usize) {
        debug_assert!(self.is_resident(layer, expert));
        self.hits += 1;
        counter_add(CounterKind::ExpertCacheHits, 1);
    }

    /// Records a GPU-placed execution of a non-resident expert (the
    /// upload term was paid) and tries to admit it: residents with
    /// strictly lower value are evicted until the candidate fits; if
    /// the remaining residents are all at least as valuable, admission
    /// is declined and the cache is left untouched.
    pub fn request(&mut self, layer: usize, expert: usize, bytes: usize) {
        self.misses += 1;
        counter_add(CounterKind::ExpertCacheMisses, 1);
        if bytes > self.budget_bytes {
            return;
        }
        let candidate = self.value(layer, expert);
        // Evict strictly-lower-value residents, cheapest first, until
        // the candidate fits or no evictable resident remains.
        while self.resident_bytes + bytes > self.budget_bytes {
            let victim = self
                .resident
                .keys()
                .map(|&(l, e)| (self.value(l, e), l, e))
                .min_by(|a, b| {
                    (a.0 .0)
                        .total_cmp(&b.0 .0)
                        .then(a.0 .1.cmp(&b.0 .1))
                        .then(a.1.cmp(&b.1))
                        .then(a.2.cmp(&b.2))
                })
                .filter(|&((v, r), _, _)| {
                    v < candidate.0 || (v == candidate.0 && r < candidate.1)
                });
            match victim {
                Some((_, l, e)) => self.evict(l, e),
                None => return,
            }
        }
        self.resident.insert((layer, expert), bytes);
        self.resident_bytes += bytes;
        self.insertions += 1;
    }

    fn evict(&mut self, layer: usize, expert: usize) {
        if let Some(bytes) = self.resident.remove(&(layer, expert)) {
            self.resident_bytes -= bytes;
            self.evictions += 1;
            self.evicted_bytes += bytes as u64;
            counter_add(CounterKind::ExpertCacheEvictedBytes, bytes as u64);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ExpertCacheStats {
        ExpertCacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            evicted_bytes: self.evicted_bytes,
            resident_bytes: self.resident_bytes as u64,
            resident_entries: self.resident.len() as u64,
        }
    }
}

/// One expert's placement decision inputs: routed token count plus the
/// calibrated per-device costs.
#[derive(Debug, Clone, Copy)]
pub struct ExpertChoice {
    /// Routed expert index.
    pub expert: usize,
    /// CPU execution time, seconds.
    pub cpu_s: f64,
    /// GPU execution time including the upload term if not resident,
    /// seconds.
    pub gpu_s: f64,
}

/// The outcome of partitioning one layer's immediate routing.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Experts assigned to CPU execution (ascending).
    pub cpu: Vec<usize>,
    /// Experts assigned to vGPU execution (ascending).
    pub gpu: Vec<usize>,
}

/// Greedy makespan partition of one layer's active experts across the
/// two devices. Experts are visited in descending CPU-cost order (LPT)
/// and each goes to the device with the smaller finish time; ties
/// prefer CPU. Deterministic for a given input.
pub fn partition_experts(choices: &[ExpertChoice]) -> Partition {
    let mut order: Vec<&ExpertChoice> = choices.iter().collect();
    order.sort_by(|a, b| {
        b.cpu_s
            .partial_cmp(&a.cpu_s)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.expert.cmp(&b.expert))
    });
    let mut part = Partition::default();
    let (mut cpu_load, mut gpu_load) = (0.0f64, 0.0f64);
    for c in order {
        if gpu_load + c.gpu_s < cpu_load + c.cpu_s {
            gpu_load += c.gpu_s;
            part.gpu.push(c.expert);
        } else {
            cpu_load += c.cpu_s;
            part.cpu.push(c.expert);
        }
    }
    part.cpu.sort_unstable();
    part.gpu.sort_unstable();
    part
}

/// Everything the engine needs to price an expert: the calibration,
/// the simulated platform, and the per-layer expert shape. The expert's
/// stored byte footprint is passed per call — under a quantized
/// precision policy it varies with the expert's dtype, and int4/int8
/// experts are 4-8x cheaper across the PCIe upload term than F32.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Roofline calibration constants.
    pub calibration: Calibration,
    /// Simulated platform (CPU spec, GPU spec, PCIe bandwidth).
    pub platform: Platform,
    /// Useful FLOPs per routed token per expert (2·3·hidden·inter).
    pub flops_per_token: f64,
}

impl CostModel {
    /// Per-expert costs for `tokens` routed rows given residency.
    ///
    /// The vGPU in this harness executes kernels on host cores at host
    /// speed, so a GPU-assigned expert's *service* time is the CPU
    /// roofline, not the calibrated A100 roofline — pricing it at HBM
    /// speed would make every expert look near-free on the device and
    /// the greedy partition would hoard all of them on the single
    /// device thread, serializing the step. The calibrated PCIe upload
    /// term is kept for non-resident experts: it preserves the paper's
    /// decision structure (persistently-hot experts earn residency and
    /// migrate to the device; one-off cold activations stay on CPU).
    pub fn choice(
        &self,
        expert: usize,
        tokens: usize,
        resident: bool,
        expert_bytes: usize,
    ) -> ExpertChoice {
        let cost = self.calibration.expert_placement_cost(
            tokens as f64,
            tokens as f64 * self.flops_per_token,
            expert_bytes as f64,
            &self.platform,
        );
        ExpertChoice {
            expert,
            cpu_s: cost.cpu_s,
            gpu_s: if resident {
                cost.cpu_s
            } else {
                cost.cpu_s + cost.pcie_upload_s
            },
        }
    }
}

/// Splits `routing` by expert assignment: rows keep their position, and
/// each (token, expert, weight) triple goes to the side that owns the
/// expert. `gpu_experts` must be sorted ascending.
pub fn split_routing(routing: &MoeRouting, gpu_experts: &[usize]) -> (MoeRouting, MoeRouting) {
    let on_gpu = |e: usize| gpu_experts.binary_search(&e).is_ok();
    let n = routing.assignments.len();
    let mut cpu = vec![Vec::new(); n];
    let mut gpu = vec![Vec::new(); n];
    for (row, assignments) in routing.assignments.iter().enumerate() {
        for &(e, w) in assignments {
            if on_gpu(e) {
                gpu[row].push((e, w));
            } else {
                cpu[row].push((e, w));
            }
        }
    }
    (MoeRouting::new(cpu), MoeRouting::new(gpu))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing_of(rows: &[&[(usize, f32)]]) -> MoeRouting {
        MoeRouting::new(rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn partition_balances_load_across_devices() {
        // Four equal-cost experts, GPU as fast as CPU: greedy makespan
        // should split 2/2 rather than hoarding.
        let choices: Vec<ExpertChoice> = (0..4)
            .map(|e| ExpertChoice {
                expert: e,
                cpu_s: 1.0,
                gpu_s: 1.0,
            })
            .collect();
        let part = partition_experts(&choices);
        assert_eq!(part.cpu.len(), 2);
        assert_eq!(part.gpu.len(), 2);
    }

    #[test]
    fn partition_keeps_expensive_gpu_experts_on_cpu() {
        // A cold expert whose upload dwarfs everything stays on CPU.
        let choices = vec![
            ExpertChoice {
                expert: 0,
                cpu_s: 1.0,
                gpu_s: 100.0,
            },
            ExpertChoice {
                expert: 1,
                cpu_s: 1.0,
                gpu_s: 0.1,
            },
        ];
        let part = partition_experts(&choices);
        assert_eq!(part.cpu, vec![0]);
        assert_eq!(part.gpu, vec![1]);
    }

    #[test]
    fn partition_ties_prefer_cpu_and_empty_is_empty() {
        let choices = vec![ExpertChoice {
            expert: 7,
            cpu_s: 1.0,
            gpu_s: 1.0,
        }];
        let part = partition_experts(&choices);
        assert_eq!(part.cpu, vec![7]);
        assert!(part.gpu.is_empty());
        assert!(partition_experts(&[]).cpu.is_empty());
    }

    #[test]
    fn cache_admits_within_budget_and_evicts_by_value() {
        let mut cache = ExpertCache::new(200, 1, 4);
        // Make expert 0 hot, expert 1 lukewarm.
        for _ in 0..50 {
            cache.record_gating(0, &routing_of(&[&[(0, 1.0), (1, 0.1)]]));
        }
        cache.request(0, 0, 100);
        cache.request(0, 1, 100);
        assert!(cache.is_resident(0, 0) && cache.is_resident(0, 1));
        assert_eq!(cache.stats().resident_bytes, 200);
        // A zero-value expert cannot displace either resident.
        cache.request(0, 2, 100);
        assert!(!cache.is_resident(0, 2));
        assert_eq!(cache.stats().evictions, 0);
        // Expert 3 becomes the hottest: it displaces the lukewarm
        // expert 1, not the hot expert 0.
        for _ in 0..50 {
            cache.record_gating(0, &routing_of(&[&[(3, 2.0), (0, 1.0)]]));
        }
        cache.request(0, 3, 100);
        assert!(cache.is_resident(0, 3) && cache.is_resident(0, 0));
        assert!(!cache.is_resident(0, 1));
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 100);
        assert_eq!(s.resident_bytes, 200);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.misses, 4);
    }

    #[test]
    fn pcie_upload_term_scales_with_stored_bytes() {
        // Quantized experts must earn their smaller footprint in the
        // transfer pricing: the upload surcharge (gpu_s − cpu_s for a
        // non-resident expert) is linear in the stored byte count, so
        // an int4 expert (8x smaller than F32) pays an 8x smaller term.
        let cost = CostModel {
            calibration: Calibration::default(),
            platform: Platform::a100_dual_xeon(),
            flops_per_token: 1.0e6,
        };
        let f32_bytes = 1_000_000usize;
        let int4_bytes = f32_bytes / 8;
        let f32_choice = cost.choice(0, 4, false, f32_bytes);
        let int4_choice = cost.choice(0, 4, false, int4_bytes);
        let f32_upload = f32_choice.gpu_s - f32_choice.cpu_s;
        let int4_upload = int4_choice.gpu_s - int4_choice.cpu_s;
        assert!(f32_upload > 0.0 && int4_upload > 0.0);
        let ratio = f32_upload / int4_upload;
        assert!((ratio - 8.0).abs() < 1e-6, "upload ratio {ratio}");
        // Residency removes the term entirely, regardless of bytes.
        let resident = cost.choice(0, 4, true, f32_bytes);
        assert_eq!(resident.gpu_s, resident.cpu_s);
    }

    #[test]
    fn cache_rejects_oversized_expert_and_counts_hits() {
        let mut cache = ExpertCache::new(50, 1, 2);
        cache.request(0, 0, 100); // larger than the whole budget
        assert!(!cache.is_resident(0, 0));
        let mut cache = ExpertCache::new(100, 1, 2);
        cache.record_gating(0, &routing_of(&[&[(0, 1.0)]]));
        cache.request(0, 0, 100);
        assert!(cache.is_resident(0, 0));
        cache.touch(0, 0);
        cache.touch(0, 0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert_eq!(s.resident_entries, 1);
    }

    #[test]
    fn ewma_decays_unrouted_experts() {
        let mut cache = ExpertCache::new(0, 1, 2);
        cache.record_gating(0, &routing_of(&[&[(0, 1.0)]]));
        let hot = cache.ewma[0][0];
        assert!(hot > 0.0);
        for _ in 0..100 {
            cache.record_gating(0, &routing_of(&[&[(1, 1.0)]]));
        }
        assert!(cache.ewma[0][0] < hot / 10.0);
        assert!(cache.ewma[0][1] > cache.ewma[0][0]);
    }

    #[test]
    fn split_routing_partitions_by_expert_preserving_rows() {
        let routing = routing_of(&[
            &[(0, 0.5), (2, 0.3), (1, 0.2)],
            &[(2, 1.0)],
            &[],
        ]);
        let (cpu, gpu) = split_routing(&routing, &[1, 2]);
        assert_eq!(cpu.assignments, vec![vec![(0, 0.5)], vec![], vec![]]);
        assert_eq!(
            gpu.assignments,
            vec![vec![(2, 0.3), (1, 0.2)], vec![(2, 1.0)], vec![]]
        );
    }
}
