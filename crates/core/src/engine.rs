//! The hybrid CPU/GPU inference engine.
//!
//! Wires the virtual GPU (attention, router, shared experts, merges,
//! LM head) to the CPU expert backend (routed experts) with the paper's
//! scheduling structure:
//!
//! * The whole decode step is expressed as a fixed op sequence on one
//!   stream: `embed → [attn → submit → shared → merge]* → head`.
//! * `submit` is an in-stream host callback: it routes the token,
//!   arms per-layer completion counters and pushes expert tasks into
//!   the lock-free CPU queue (§3.3).
//! * `merge` is a **spinning kernel**: it waits on the immediate
//!   counter of its own layer and the deferred counter of the previous
//!   MoE layer, then folds both contributions into the residual stream
//!   — no host round-trip, which is what lets the entire token fit in
//!   one captured graph ("CUDA-based spinning").
//! * Under [`SchedMode::Sync`] every op is launched individually (each
//!   paying launch latency) with a stream synchronization per layer —
//!   the baseline the paper's CUDA-Graph optimization is measured
//!   against. Under [`SchedMode::AsyncGraph`] the sequence is captured
//!   once and replayed with a single launch per token.
//! * Expert Deferral (§4.1) splits each layer's routed experts into
//!   immediate and deferred sets; deferred outputs are merged one MoE
//!   layer later, and never at the final MoE layer. Deferral applies
//!   only to single-token (decode) forwards, as in the paper.

use kt_kernels::dispatch::Backend;
use kt_kernels::gemm::gemm_rowwise;
use kt_kernels::moe::{
    scatter_bucket_outs, BucketOut, ExpertWeights, FusedMoE, MoeRouting, MoeWorkspace,
};
use kt_kernels::schedule::{SchedulePolicy, ThreadPool};
use kt_model::config::ModelConfig;
use kt_model::gating::{GateConfig, Router};
use kt_model::kvcache::KvCache;
use kt_model::norm::RmsNorm;
use kt_model::rope::Rope;
use kt_model::attention::Attention;
use kt_tensor::{ArenaStats, Matrix, PackedWeights, PrecisionPolicy, ScratchArena};
use kt_trace::SpanKind;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cpu_backend::CpuBackend;
use crate::error::EngineError;
use crate::placement::dynamic::{
    partition_experts, split_routing, CostModel, ExpertCache, ExpertCacheStats, PlacementPolicy,
};
use crate::profiling::ExpertProfile;
use crate::vgpu::{GraphHandle, LaunchStats, VgpuConfig, VirtualGpu};

/// One schedulable op: `(is_host_func, closure, layer boundary)`.
/// The layer-boundary marker (`usize::MAX` = none) tells sync mode
/// where to break the stream.
type OpEntry = (bool, Arc<dyn Fn() + Send + Sync>, usize);

/// Result payload of the immediate CPU expert task: a scattered sum
/// (static placement) or unscattered bucket outputs (dynamic).
enum ImmOut {
    Scattered(Matrix),
    Buckets(Vec<BucketOut>),
}

/// Measured utilization over a [`HybridEngine::measure_utilization`]
/// window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationReport {
    /// CPU-backend worker utilization (busy time / (wall x workers)).
    pub cpu_util: f64,
    /// Virtual-GPU device utilization (op execution time / wall).
    pub gpu_util: f64,
    /// Fraction of device busy time spent on launch latency.
    pub gpu_overhead_frac: f64,
}

/// Scheduling mode of the decode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Per-op launches with per-layer stream synchronization (the
    /// baseline whose overheads Figure 4 quantifies).
    Sync,
    /// Single captured graph per decode step with in-stream host
    /// callbacks (§3.3).
    AsyncGraph,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// CPU expert workers.
    pub n_cpu_workers: usize,
    /// Virtual GPU configuration (launch latencies, streams).
    pub vgpu: VgpuConfig,
    /// Scheduling mode.
    pub mode: SchedMode,
    /// Deferred experts per MoE layer during decode (0 disables).
    pub n_deferred: usize,
    /// Hot routed experts per layer pinned to the GPU after
    /// [`HybridEngine::refresh_placement`] (0 = shared experts only,
    /// the paper's default for shared-expert models).
    pub n_gpu_experts: usize,
    /// Per-role weight precision (attention, dense FFN, shared experts,
    /// routed experts, LM head). Replaces the old single global
    /// `expert_dtype` knob; use [`PrecisionPolicy::experts`] for the
    /// historical quantize-experts-only behavior or
    /// [`PrecisionPolicy::quantized_serving`] for the serving preset
    /// (routed int4, shared/dense int8, attention + head F32).
    pub precision: PrecisionPolicy,
    /// CPU kernel backend for expert GEMMs. The default hybrid
    /// dispatch picks tiled vs vector kernels by bucket size, which
    /// makes outputs depend (within kernel tolerance) on how many
    /// tokens share an expert in one step; forcing a single class
    /// makes batched and sequential decoding bit-identical.
    pub backend: Backend,
    /// Weight initialization seed.
    pub seed: u64,
    /// Expert placement policy. [`PlacementPolicy::Dynamic`] partitions
    /// each MoE layer's immediate routing per expert between CPU and
    /// vGPU by calibrated cost, with a value-aware VRAM expert cache;
    /// outputs stay bitwise identical to the static all-CPU split.
    pub placement: PlacementPolicy,
    /// Byte budget of the simulated-VRAM expert cache used by the
    /// dynamic placement policy (0 = nothing ever resident: every
    /// GPU-placed expert pays the PCIe upload term).
    pub expert_cache_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_cpu_workers: 2,
            vgpu: VgpuConfig::default(),
            mode: SchedMode::AsyncGraph,
            n_deferred: 0,
            n_gpu_experts: 0,
            precision: PrecisionPolicy::default(),
            backend: Backend::HybridAmxAvx512,
            seed: 0,
            placement: PlacementPolicy::Static,
            expert_cache_bytes: 0,
        }
    }
}

/// Feed-forward flavor of one engine layer.
enum EngineFfn {
    Dense(FusedMoE),
    Moe {
        router: Router,
        shared: Option<FusedMoE>,
        routed: FusedMoE,
    },
}

/// One layer's weights (shared with device/worker threads).
struct EngineLayer {
    attn_norm: RmsNorm,
    attn: Attention,
    ffn_norm: RmsNorm,
    ffn: EngineFfn,
    /// Index of the previous MoE layer (deferred outputs land here).
    prev_moe: Option<usize>,
    /// Whether this is the final MoE layer (never defers).
    last_moe: bool,
}

/// Mutable per-step state shared by control, device and worker threads.
struct StepState {
    /// Tokens for the current forward (set by the control thread):
    /// each sequence's new tokens, concatenated in batch order.
    tokens: Vec<u32>,
    /// Row span `(start, len)` of each sequence in the batch.
    seq_rows: Vec<(usize, usize)>,
    /// Whether each row belongs to a single-token (decode) sequence —
    /// Expert Deferral applies per row, only to decode rows. A
    /// single-token **prefill chunk** is not a decode row: deferral
    /// must never fire mid-prompt, or the chunked prefill would drift
    /// from the monolithic one.
    decode_row: Vec<bool>,
    /// Per sequence (indexed like `seq_rows`): whether the head op
    /// computes logits. Non-final prefill chunks skip the LM head.
    need_logits: Vec<bool>,
    /// Per sequence: request-scoped trace tag (0 = untagged; see
    /// [`BatchSeq::tag`]).
    tags: Vec<u32>,
    /// Residual stream, `tokens x hidden` (checked out of the device
    /// workspace arena each step, restored at the next embed).
    x: Matrix,
    /// Saved FFN inputs per layer (deferred experts read layer k's
    /// input while layer k+1 runs). `Arc` so the submit op hands them
    /// to CPU tasks without a deep copy; the backing buffer returns to
    /// the device arena once the last holder drops its clone.
    ffn_in: Vec<Option<Arc<Matrix>>>,
    /// Immediate routed-expert outputs per layer (from `ws_imm`).
    imm_out: Vec<Option<Matrix>>,
    /// Deferred routed-expert outputs per layer (from `ws_def`).
    def_out: Vec<Option<Matrix>>,
    /// Routing of GPU-pinned hot experts per layer (consumed by the
    /// shared-experts op of the same layer).
    gpu_routing: Vec<Option<MoeRouting>>,
    /// Dynamic placement: the immediate-routing slice assigned to the
    /// vGPU this step, per layer (consumed by the GPU-experts op).
    dyn_routing: Vec<Option<MoeRouting>>,
    /// Dynamic placement: unscattered bucket outputs of the CPU
    /// immediate task, per layer (from `ws_imm`).
    cpu_buckets: Vec<Option<Vec<BucketOut>>>,
    /// Dynamic placement: unscattered bucket outputs of the vGPU
    /// expert op, per layer (from `ws_gpu.moe`).
    gpu_buckets: Vec<Option<Vec<BucketOut>>>,
    /// Per-sequence KV caches, indexed like `seq_rows`. Outside a
    /// batched forward this holds exactly the engine-owned default
    /// cache at index 0 (the single-session legacy path).
    caches: Vec<KvCache>,
    /// Final logits of the step, one matrix per sequence (arena-backed;
    /// callers hand them back via [`HybridEngine::recycle_logits`]).
    logits: Option<Vec<Matrix>>,
    /// First error raised by any op (checked after each step).
    error: Option<String>,
}

/// Device-thread step workspace: an arena for engine temporaries
/// (residual stream, normed activations, per-sequence logits) plus a
/// MoE workspace for device-executed expert GEMMs (dense MLP, shared
/// experts, GPU-pinned hot experts).
struct GpuWorkspace {
    arena: ScratchArena,
    moe: MoeWorkspace,
    /// `ffn_in` Arcs still held by an in-flight deferred task when the
    /// merge op tried to reclaim them; drained at the next embed, by
    /// which point every task of the previous step has finished.
    pending: Vec<Arc<Matrix>>,
}

impl GpuWorkspace {
    fn new() -> Self {
        GpuWorkspace {
            arena: ScratchArena::new(),
            moe: MoeWorkspace::new(),
            pending: Vec::new(),
        }
    }

    /// Restores `ffn_in` buffers whose last task-held clone has since
    /// been dropped.
    fn reclaim_pending(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for arc in pending {
            match Arc::try_unwrap(arc) {
                Ok(m) => self.arena.restore(m),
                Err(arc) => self.pending.push(arc),
            }
        }
    }
}

struct EngineShared {
    state: Mutex<StepState>,
    /// Outstanding immediate CPU tasks per layer.
    imm_pending: Vec<AtomicUsize>,
    /// Outstanding deferred CPU tasks per layer.
    def_pending: Vec<AtomicUsize>,
    /// Expert activation statistics (recorded by every submit).
    profile: Mutex<ExpertProfile>,
    /// Per-layer GPU-pinned expert masks (empty vec = none pinned).
    gpu_masks: Mutex<Vec<Vec<bool>>>,
    /// Optional fault injector consulted on the expert-submission
    /// path; returning `true` for a layer path fails that forward.
    fault: Mutex<Option<FaultHook>>,
    /// Device-thread workspace (embed/attn/shared/head ops).
    ///
    /// Lock discipline: device ops may take `state` then a workspace
    /// lock; CPU expert tasks must DROP their workspace lock before
    /// taking `state` (they publish results under `state` only). This
    /// orders every state+workspace acquisition identically, so the
    /// pairing can never deadlock.
    ws_gpu: Mutex<GpuWorkspace>,
    /// Workspace of the immediate-expert CPU task (one in flight at a
    /// time: layer k+1's submit runs only after layer k's merge).
    ws_imm: Mutex<MoeWorkspace>,
    /// Workspace of the deferred-expert CPU task (may overlap the next
    /// layer's immediate task, hence its own workspace).
    ws_def: Mutex<MoeWorkspace>,
    /// Dynamic-placement state: the value-aware expert cache plus the
    /// calibrated cost model. `None` under the static policy — the
    /// static op sequence and task bodies are then byte-for-byte the
    /// pre-dynamic ones.
    dynamic: Option<DynamicState>,
    /// Optional routing override consulted before the router on every
    /// MoE submit (benchmarks impose synthetic routing skew this way).
    routing_override: Mutex<Option<RoutingHook>>,
}

/// Per-engine dynamic-placement state.
struct DynamicState {
    cache: Mutex<ExpertCache>,
    cost: CostModel,
    /// Stored bytes of one routed expert, per layer (0 for dense
    /// layers). Taken from [`kt_tensor::PackedWeights::stored_bytes`],
    /// so quantized experts earn their smaller footprint in both cache
    /// residency sizing and the PCIe upload pricing term.
    expert_bytes: Vec<usize>,
}

impl EngineShared {
    fn new(
        cfg: &ModelConfig,
        cache_specs: &[(usize, usize)],
        dynamic: Option<DynamicState>,
    ) -> Result<Arc<Self>, EngineError> {
        Ok(Arc::new(EngineShared {
            state: Mutex::new(StepState {
                tokens: Vec::new(),
                seq_rows: Vec::new(),
                decode_row: Vec::new(),
                need_logits: Vec::new(),
                tags: Vec::new(),
                x: Matrix::zeros(1, cfg.hidden)?,
                ffn_in: vec![None; cfg.n_layers],
                imm_out: vec![None; cfg.n_layers],
                def_out: vec![None; cfg.n_layers],
                gpu_routing: vec![None; cfg.n_layers],
                dyn_routing: vec![None; cfg.n_layers],
                cpu_buckets: (0..cfg.n_layers).map(|_| None).collect(),
                gpu_buckets: (0..cfg.n_layers).map(|_| None).collect(),
                caches: vec![KvCache::new(cache_specs, cfg.max_seq)],
                logits: None,
                error: None,
            }),
            imm_pending: (0..cfg.n_layers).map(|_| AtomicUsize::new(0)).collect(),
            def_pending: (0..cfg.n_layers).map(|_| AtomicUsize::new(0)).collect(),
            profile: Mutex::new(ExpertProfile::new(cfg.n_layers, cfg.n_routed_experts)),
            gpu_masks: Mutex::new(vec![Vec::new(); cfg.n_layers]),
            fault: Mutex::new(None),
            ws_gpu: Mutex::new(GpuWorkspace::new()),
            ws_imm: Mutex::new(MoeWorkspace::new()),
            ws_def: Mutex::new(MoeWorkspace::new()),
            dynamic,
            routing_override: Mutex::new(None),
        }))
    }
}

/// A fault-injection hook: given a module path such as
/// `model.layers.3.mlp.experts`, decides whether to inject a failure.
pub type FaultHook = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// A routing-override hook: `(layer, n_tokens) -> Some(routing)`
/// replaces the gate's output for that layer's MoE submit. The routing
/// must be valid for the layer: one assignment row per token, expert
/// indices within range.
pub type RoutingHook = Arc<dyn Fn(usize, usize) -> Option<MoeRouting> + Send + Sync>;

/// Builds the dynamic-placement state (cost model + expert cache) when
/// the policy asks for it and the model has routed experts.
fn dynamic_state(
    cfg: &ModelConfig,
    econfig: &EngineConfig,
    layers: &[Arc<EngineLayer>],
) -> Option<DynamicState> {
    if econfig.placement != PlacementPolicy::Dynamic {
        return None;
    }
    let expert_bytes: Vec<usize> = layers
        .iter()
        .map(|l| match &l.ffn {
            EngineFfn::Moe { routed, .. } => routed.expert(0).stored_bytes(),
            EngineFfn::Dense(_) => 0,
        })
        .collect();
    if !expert_bytes.iter().any(|&b| b > 0) {
        return None;
    }
    Some(DynamicState {
        cache: Mutex::new(ExpertCache::new(
            econfig.expert_cache_bytes,
            cfg.n_layers,
            cfg.n_routed_experts,
        )),
        cost: CostModel {
            calibration: kt_hwsim::Calibration::default(),
            platform: kt_hwsim::Platform::a100_dual_xeon(),
            flops_per_token: 2.0 * 3.0 * cfg.hidden as f64 * cfg.moe_inter as f64,
        },
        expert_bytes,
    })
}

/// One sequence's slot in a batched forward
/// ([`HybridEngine::forward_batch`]): its KV cache plus the new tokens
/// to process this step. `prefill` marks the tokens as prompt
/// positions — chunked prefill feeds a prompt across several steps, and
/// a chunk stays a prefill row even when it holds exactly one token
/// (Expert Deferral is decode-row-only across chunk boundaries).
pub struct BatchSeq {
    /// The sequence's KV cache (from [`HybridEngine::fresh_cache`] or
    /// a cache pool). Moved into the engine during the step and handed
    /// back before `forward_batch` returns.
    pub cache: KvCache,
    /// New tokens to append this step.
    pub tokens: Vec<u32>,
    /// Whether `tokens` are prompt positions. A single-token step is a
    /// decode row only when this is `false`; multi-token steps are
    /// prefill regardless.
    pub prefill: bool,
    /// Whether the step should produce logits for this sequence.
    /// Non-final prefill chunks set this to `false` — nothing samples
    /// mid-prompt, so the per-position LM-head GEMM is skipped and
    /// [`HybridEngine::forward_batch`] returns `None` in this
    /// sequence's slot.
    pub need_logits: bool,
    /// Request-scoped trace tag (`kt_trace::TraceCtx::tag()`; 0 =
    /// untagged). When tracing is on, tagged sequences get a
    /// per-sequence `engine.seq_attention` span labeled
    /// `a = tag, b = layer`, correlating engine work back to the
    /// serving request that caused it.
    pub tag: u32,
}

impl BatchSeq {
    /// A decode row: one sampled token, deferral-eligible, logits
    /// returned.
    pub fn decode(cache: KvCache, token: u32) -> Self {
        BatchSeq {
            cache,
            tokens: vec![token],
            prefill: false,
            need_logits: true,
            tag: 0,
        }
    }

    /// A whole prompt — or the final chunk of one: prefill rows, with
    /// logits returned for every new position.
    pub fn prefill(cache: KvCache, tokens: Vec<u32>) -> Self {
        BatchSeq {
            cache,
            tokens,
            prefill: true,
            need_logits: true,
            tag: 0,
        }
    }

    /// A replayed decode row: deferral-eligible exactly like
    /// [`BatchSeq::decode`] — so it rebuilds the same KV bits the
    /// original decode step wrote — but produces no logits, because
    /// the token it feeds was sampled and reported before its KV rows
    /// were dropped. Preemption recovery re-feeds evicted generations
    /// through this path.
    pub fn replay(cache: KvCache, token: u32) -> Self {
        BatchSeq {
            cache,
            tokens: vec![token],
            prefill: false,
            need_logits: false,
            tag: 0,
        }
    }

    /// A non-final prompt chunk: prefill rows, no logits produced.
    pub fn prefill_chunk(cache: KvCache, tokens: Vec<u32>) -> Self {
        BatchSeq {
            cache,
            tokens,
            prefill: true,
            need_logits: false,
            tag: 0,
        }
    }

    /// Attaches a request-scoped trace tag (builder-style).
    pub fn with_tag(mut self, tag: u32) -> Self {
        self.tag = tag;
        self
    }
}

/// The hybrid engine.
pub struct HybridEngine {
    cfg: ModelConfig,
    econfig: EngineConfig,
    /// Serializes whole forwards: the engine processes one request at a
    /// time (batch-1 local serving, §6.1); concurrent callers queue
    /// here instead of corrupting the shared step state.
    inference_lock: Mutex<()>,
    vgpu: VirtualGpu,
    cpu: Arc<CpuBackend>,
    /// Pool for the panel-parallel LM-head GEMM. Sized like the CPU
    /// backend but clamped to the host's physical parallelism (see
    /// [`head_pool_lanes`]); the head runs after the final merge, when
    /// every expert worker is idle, so the two pools never compete.
    head_pool: Arc<ThreadPool>,
    layers: Vec<Arc<EngineLayer>>,
    embed: Arc<Matrix>,
    lm_head: Arc<PackedWeights>,
    final_norm: Arc<RmsNorm>,
    rope: Arc<Rope>,
    shared: Arc<EngineShared>,
    decode_graph: Mutex<Option<GraphHandle>>,
}

const SPIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Lane count for the LM-head pool: the CPU-backend worker count,
/// clamped to the host's physical parallelism. `n_cpu_workers` models
/// the paper's CPU backend and may legitimately exceed the host cores
/// (tests, CI); the head GEMM gains nothing from oversubscription and
/// would pay cross-thread dispatch latency every decode step. A
/// single-lane pool runs entirely on the calling thread. Outputs are
/// bitwise identical at any lane count.
fn head_pool_lanes(n_cpu_workers: usize) -> usize {
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    n_cpu_workers.clamp(1, host)
}

/// Installs the process-wide trace hooks once per process: the
/// `KT_TRACE` env knob and the bridge that turns arena fresh
/// allocations into `arena.alloc` instant events.
fn install_trace_hooks() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        kt_trace::enable_from_env();
        kt_tensor::set_arena_alloc_hook(|bytes| {
            kt_trace::instant(SpanKind::ArenaAlloc, bytes.min(u32::MAX as u64) as u32, 0);
        });
    });
}

/// Spins until `counter` reaches zero (the graph-resident wait).
///
/// Pure spinning matches the CUDA-kernel semantics, but on hosts with
/// few cores it would starve the CPU workers the wait depends on, so
/// the loop yields periodically after a short hot-spin window.
fn spin_until_zero(counter: &AtomicUsize, what: &str) {
    let start = Instant::now();
    let mut spins = 0u32;
    while counter.load(Ordering::Acquire) != 0 {
        spins += 1;
        if spins < 128 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
        if spins.is_multiple_of(1024) && start.elapsed() > SPIN_TIMEOUT {
            panic!("spin wait on {what} timed out — CPU backend stalled");
        }
    }
}

impl HybridEngine {
    /// Builds an engine with seeded random weights for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on invalid configs and propagates
    /// construction failures.
    pub fn random(cfg: &ModelConfig, econfig: EngineConfig) -> Result<Self, EngineError> {
        install_trace_hooks();
        cfg.validate().map_err(EngineError::config)?;
        econfig
            .precision
            .validate(cfg.hidden, cfg.dense_inter, cfg.moe_inter)
            .map_err(|e| EngineError::config(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(econfig.seed);
        let mut embed = Matrix::zeros(cfg.vocab, cfg.hidden)?;
        kt_tensor::rng::fill_normal(&mut rng, embed.as_mut_slice(), 0.1);

        // Identify MoE layer chain for deferral bookkeeping.
        let mut layers = Vec::with_capacity(cfg.n_layers);
        let moe_layers: Vec<usize> = (cfg.n_dense_layers..cfg.n_layers).collect();
        for layer in 0..cfg.n_layers {
            let attn = Attention::random(
                cfg.hidden,
                cfg.n_heads,
                cfg.head_dim,
                cfg.attention,
                econfig.precision.attention,
                &mut rng,
            )?;
            let ffn = if layer < cfg.n_dense_layers {
                let dense = ExpertWeights::random(
                    cfg.hidden,
                    cfg.dense_inter,
                    econfig.precision.dense,
                    &mut rng,
                )?;
                EngineFfn::Dense(FusedMoE::new(vec![dense], econfig.backend)?)
            } else {
                let gate_cfg = GateConfig {
                    n_experts: cfg.n_routed_experts,
                    top_k: cfg.top_k,
                    n_groups: cfg.n_groups,
                    topk_groups: cfg.topk_groups,
                    score: cfg.score,
                    routed_scaling: cfg.routed_scaling,
                    norm_topk_prob: cfg.norm_topk_prob,
                };
                let router = Router::random(gate_cfg, cfg.hidden, &mut rng)?;
                let shared = if cfg.n_shared_experts > 0 {
                    let experts = (0..cfg.n_shared_experts)
                        .map(|_| {
                            ExpertWeights::random(
                                cfg.hidden,
                                cfg.moe_inter,
                                econfig.precision.shared,
                                &mut rng,
                            )
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    Some(FusedMoE::new(experts, econfig.backend)?)
                } else {
                    None
                };
                let experts = (0..cfg.n_routed_experts)
                    .map(|_| {
                        ExpertWeights::random(
                            cfg.hidden,
                            cfg.moe_inter,
                            econfig.precision.routed,
                            &mut rng,
                        )
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                EngineFfn::Moe {
                    router,
                    shared,
                    routed: FusedMoE::new(experts, econfig.backend)?,
                }
            };
            let my_moe_pos = moe_layers.iter().position(|&l| l == layer);
            let prev_moe = my_moe_pos.and_then(|p| p.checked_sub(1)).map(|p| moe_layers[p]);
            let last_moe = my_moe_pos == Some(moe_layers.len().saturating_sub(1));
            layers.push(Arc::new(EngineLayer {
                attn_norm: RmsNorm::random(cfg.hidden, &mut rng),
                attn,
                ffn_norm: RmsNorm::random(cfg.hidden, &mut rng),
                ffn,
                prev_moe,
                last_moe,
            }));
        }

        let mut head = Matrix::zeros(cfg.vocab, cfg.hidden)?;
        kt_tensor::rng::fill_normal(&mut rng, head.as_mut_slice(), 0.05);
        let lm_head = Arc::new(PackedWeights::pack(&head, econfig.precision.lm_head)?);
        let rope = Arc::new(Rope::new(cfg.head_dim, cfg.max_seq, cfg.rope_theta));

        let cache_specs: Vec<(usize, usize)> =
            layers.iter().map(|l| l.attn.cache_spec()).collect();
        let shared = EngineShared::new(cfg, &cache_specs, dynamic_state(cfg, &econfig, &layers))?;

        Ok(HybridEngine {
            cfg: cfg.clone(),
            inference_lock: Mutex::new(()),
            vgpu: VirtualGpu::new(econfig.vgpu)?,
            cpu: Arc::new(CpuBackend::new(econfig.n_cpu_workers)?),
            head_pool: Arc::new(ThreadPool::new(head_pool_lanes(econfig.n_cpu_workers))?),
            layers,
            embed: Arc::new(embed),
            lm_head,
            final_norm: Arc::new(RmsNorm::ones(cfg.hidden)),
            rope,
            shared,
            decode_graph: Mutex::new(None),
            econfig,
        })
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Engine configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.econfig
    }

    /// Launch accounting from the virtual GPU.
    pub fn launch_stats(&self) -> LaunchStats {
        self.vgpu.stats()
    }

    /// Serializes the engine's weights (config + layers + head) — the
    /// deployment checkpoint. Engine *settings* (scheduling mode,
    /// deferral, workers) are not stored; they are supplied at load.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, w: &mut impl std::io::Write) -> Result<(), EngineError> {
        kt_tensor::serial::write_magic(w, b"KTENG")?;
        self.cfg.write_to(w)?;
        self.embed.write_to(w)?;
        for layer in &self.layers {
            layer.attn_norm.write_to(w)?;
            layer.attn.write_to(w)?;
            layer.ffn_norm.write_to(w)?;
            match &layer.ffn {
                EngineFfn::Dense(mlp) => {
                    kt_tensor::serial::write_u64(w, 0)?;
                    mlp.write_to(w)?;
                }
                EngineFfn::Moe {
                    router,
                    shared,
                    routed,
                } => {
                    kt_tensor::serial::write_u64(w, 1)?;
                    router.write_to(w)?;
                    kt_tensor::serial::write_u64(w, shared.is_some() as u64)?;
                    if let Some(sh) = shared {
                        sh.write_to(w)?;
                    }
                    routed.write_to(w)?;
                }
            }
        }
        self.final_norm.write_to(w)?;
        self.lm_head.write_to(w).map_err(EngineError::from)
    }

    /// Loads an engine from a checkpoint written by
    /// [`HybridEngine::save`], with fresh runtime settings. Each packed
    /// weight carries its own dtype in the checkpoint, so per-role
    /// precision round-trips as saved; `econfig.precision` is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] on corrupt checkpoints.
    pub fn load(r: &mut impl std::io::Read, econfig: EngineConfig) -> Result<Self, EngineError> {
        install_trace_hooks();
        kt_tensor::serial::expect_magic(r, b"KTENG").map_err(kt_model::ModelError::from)?;
        let cfg = ModelConfig::read_from(r).map_err(kt_model::ModelError::from)?;
        let embed = Matrix::read_from(r).map_err(kt_model::ModelError::from)?;
        let moe_layers: Vec<usize> = (cfg.n_dense_layers..cfg.n_layers).collect();
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for layer in 0..cfg.n_layers {
            let attn_norm = RmsNorm::read_from(r)?;
            let attn = Attention::read_from(r)?;
            let ffn_norm = RmsNorm::read_from(r)?;
            let ffn = match kt_tensor::serial::read_u64(r).map_err(kt_model::ModelError::from)? {
                0 => EngineFfn::Dense(FusedMoE::read_from(r)?),
                1 => {
                    let router = Router::read_from(r)?;
                    let shared =
                        if kt_tensor::serial::read_u64(r).map_err(kt_model::ModelError::from)? != 0 {
                            Some(FusedMoE::read_from(r)?)
                        } else {
                            None
                        };
                    EngineFfn::Moe {
                        router,
                        shared,
                        routed: FusedMoE::read_from(r)?,
                    }
                }
                other => return Err(EngineError::exec(format!("unknown ffn tag {other}"))),
            };
            let my_moe_pos = moe_layers.iter().position(|&l| l == layer);
            let prev_moe = my_moe_pos.and_then(|p| p.checked_sub(1)).map(|p| moe_layers[p]);
            let last_moe = my_moe_pos == Some(moe_layers.len().saturating_sub(1));
            layers.push(Arc::new(EngineLayer {
                attn_norm,
                attn,
                ffn_norm,
                ffn,
                prev_moe,
                last_moe,
            }));
        }
        let final_norm = Arc::new(RmsNorm::read_from(r)?);
        let lm_head =
            Arc::new(PackedWeights::read_from(r).map_err(kt_model::ModelError::from)?);
        let rope = Arc::new(Rope::new(cfg.head_dim, cfg.max_seq, cfg.rope_theta));
        let cache_specs: Vec<(usize, usize)> =
            layers.iter().map(|l| l.attn.cache_spec()).collect();
        let shared =
            EngineShared::new(&cfg, &cache_specs, dynamic_state(&cfg, &econfig, &layers))?;
        Ok(HybridEngine {
            inference_lock: Mutex::new(()),
            vgpu: VirtualGpu::new(econfig.vgpu)?,
            cpu: Arc::new(CpuBackend::new(econfig.n_cpu_workers)?),
            head_pool: Arc::new(ThreadPool::new(head_pool_lanes(econfig.n_cpu_workers))?),
            layers,
            embed: Arc::new(embed),
            lm_head,
            final_norm,
            rope,
            shared,
            decode_graph: Mutex::new(None),
            cfg,
            econfig,
        })
    }

    /// Creates a fresh, empty KV cache sized for this engine (one per
    /// conversation in a multi-session server).
    pub fn fresh_cache(&self) -> KvCache {
        let specs: Vec<(usize, usize)> =
            self.layers.iter().map(|l| l.attn.cache_spec()).collect();
        KvCache::new(&specs, self.cfg.max_seq)
    }

    /// Checks that `cache` matches this engine's layout and holds a
    /// self-consistent sequence: layer count, per-layer row widths and
    /// capacity, uniform length across layers, and a decoded-row memo
    /// that never runs ahead of the cached positions. The serving
    /// layer calls this after seeding a lease from a prefix snapshot,
    /// before trusting the seeded state in a batch.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] naming the first violated
    /// invariant.
    pub fn validate_cache(&self, cache: &KvCache) -> Result<(), EngineError> {
        if cache.n_layers() != self.layers.len() {
            return Err(EngineError::exec(format!(
                "cache has {} layers, engine has {}",
                cache.n_layers(),
                self.layers.len()
            )));
        }
        let len = cache.seq_len();
        for (i, l) in self.layers.iter().enumerate() {
            let (kw, vw) = l.attn.cache_spec();
            let lc = cache.layer(i);
            if lc.k_width() != kw || lc.v_width() != vw {
                return Err(EngineError::exec(format!(
                    "layer {i} cache widths {}/{} do not match {kw}/{vw}",
                    lc.k_width(),
                    lc.v_width()
                )));
            }
            if lc.capacity() != self.cfg.max_seq {
                return Err(EngineError::exec(format!(
                    "layer {i} cache capacity {} does not match max_seq {}",
                    lc.capacity(),
                    self.cfg.max_seq
                )));
            }
            if lc.len() != len {
                return Err(EngineError::exec(format!(
                    "layer {i} holds {} positions, layer 0 holds {len}",
                    lc.len()
                )));
            }
            if lc.memo_len() > lc.len() {
                return Err(EngineError::exec(format!(
                    "layer {i} memo runs ahead of the cache ({} > {})",
                    lc.memo_len(),
                    lc.len()
                )));
            }
        }
        Ok(())
    }

    /// Swaps the engine's active KV cache with `cache`, returning the
    /// previously active one. This is the session-switch primitive of a
    /// multi-conversation server: check a session's cache in, decode,
    /// check it back out.
    pub fn swap_cache(&self, cache: &mut KvCache) {
        let mut st = self.shared.state.lock();
        std::mem::swap(&mut st.caches[0], cache);
    }

    /// Resets the KV cache and launch stats (new conversation).
    pub fn reset(&self) {
        let logits = {
            let mut st = self.shared.state.lock();
            for cache in &mut st.caches {
                cache.reset();
            }
            st.error = None;
            st.logits.take()
        };
        if let Some(v) = logits {
            let mut ws = self.shared.ws_gpu.lock();
            for m in v {
                ws.arena.restore(m);
            }
        }
        self.vgpu.reset_stats();
    }

    /// Current cached sequence length.
    pub fn seq_len(&self) -> usize {
        self.shared.state.lock().caches[0].seq_len()
    }

    /// Installs a fault injector consulted on the expert-submission
    /// path. The hook receives a module path (e.g.
    /// `model.layers.3.mlp.experts`) once per MoE layer per forward;
    /// returning `true` fails that forward with an injected error
    /// before any expert task is queued. Test harnesses pair this with
    /// `kt-inject` fault patterns to exercise error propagation.
    pub fn set_fault_injector(
        &self,
        hook: impl Fn(&str) -> bool + Send + Sync + 'static,
    ) {
        *self.shared.fault.lock() = Some(Arc::new(hook));
    }

    /// Removes any installed fault injector.
    pub fn clear_fault_injector(&self) {
        *self.shared.fault.lock() = None;
    }

    /// Measures real CPU-backend and device utilization over a closure
    /// (the live-engine analog of Figure 10's accounting): fraction of
    /// wall time the CPU workers / virtual GPU spent executing.
    ///
    /// # Errors
    ///
    /// Propagates errors from `work`.
    pub fn measure_utilization(
        &self,
        work: impl FnOnce() -> Result<(), EngineError>,
    ) -> Result<UtilizationReport, EngineError> {
        self.cpu.reset_busy();
        self.vgpu.reset_stats();
        let start = Instant::now();
        work()?;
        let wall = start.elapsed().as_nanos().max(1) as f64;
        let stats = self.vgpu.stats();
        Ok(UtilizationReport {
            cpu_util: self.cpu.busy_ns() as f64 / (wall * self.cpu.n_workers() as f64),
            gpu_util: stats.busy_ns as f64 / wall,
            gpu_overhead_frac: if stats.busy_ns + stats.launch_overhead_ns > 0 {
                stats.launch_overhead_ns as f64
                    / (stats.busy_ns + stats.launch_overhead_ns) as f64
            } else {
                0.0
            },
        })
    }

    /// Snapshot of the recorded expert-activation profile.
    pub fn expert_profile(&self) -> ExpertProfile {
        self.shared.profile.lock().clone()
    }

    /// Recomputes the hot-expert GPU placement from the recorded
    /// profile: the `n_gpu_experts` most-activated routed experts of
    /// every MoE layer move to the GPU op. Returns the number of
    /// pinned experts. Placement is pure scheduling — outputs do not
    /// change.
    pub fn refresh_placement(&self) -> usize {
        let n = self.econfig.n_gpu_experts;
        let masks = self.shared.profile.lock().placement_masks(n);
        let pinned = masks
            .iter()
            .map(|m| m.iter().filter(|&&b| b).count())
            .sum();
        *self.shared.gpu_masks.lock() = masks;
        pinned
    }

    /// Clears any hot-expert placement (all routed experts back to the
    /// CPU backend).
    pub fn clear_placement(&self) {
        let n_layers = self.cfg.n_layers;
        *self.shared.gpu_masks.lock() = vec![Vec::new(); n_layers];
    }

    /// Stored weight bytes of one routed expert — the minimum viable
    /// `expert_cache_bytes`. Read from the packed weights themselves,
    /// so quantized experts report their post-quantization footprint.
    /// `None` for models without routed experts.
    pub fn expert_weight_bytes(&self) -> Option<usize> {
        self.layers.iter().find_map(|l| match &l.ffn {
            EngineFfn::Moe { routed, .. } => Some(routed.expert(0).stored_bytes()),
            EngineFfn::Dense(_) => None,
        })
    }

    /// Storage dtype of the routed expert weights, read from the packed
    /// weights (reliable even after a checkpoint load, where
    /// `econfig.precision` is ignored). `None` for models without
    /// routed experts.
    pub fn expert_weight_dtype(&self) -> Option<kt_tensor::WeightDtype> {
        self.layers.iter().find_map(|l| match &l.ffn {
            EngineFfn::Moe { routed, .. } => Some(routed.expert(0).gate.dtype()),
            EngineFfn::Dense(_) => None,
        })
    }

    /// Snapshot of the dynamic-placement expert-cache counters; `None`
    /// under the static policy.
    pub fn expert_cache_stats(&self) -> Option<ExpertCacheStats> {
        self.shared
            .dynamic
            .as_ref()
            .map(|d| d.cache.lock().stats())
    }

    /// Installs a routing override consulted before the router on every
    /// MoE submit: `hook(layer, n_tokens)` returning `Some(routing)`
    /// replaces the gate's output for that layer (benchmarks impose
    /// synthetic routing skew this way). The routing must be valid for
    /// the layer: one assignment row per token, expert indices within
    /// range.
    pub fn set_routing_override(
        &self,
        hook: impl Fn(usize, usize) -> Option<MoeRouting> + Send + Sync + 'static,
    ) {
        *self.shared.routing_override.lock() = Some(Arc::new(hook));
    }

    /// Removes any installed routing override.
    pub fn clear_routing_override(&self) {
        *self.shared.routing_override.lock() = None;
    }

    /// Builds the per-forward op list. Each op is a `Fn` closure over
    /// the shared state, so the identical list can be launched op-by-op
    /// (sync mode) or captured once and replayed (graph mode).
    ///
    /// Ops are batch-shape-agnostic: they read `seq_rows`/`decode_row`
    /// from the step state, so one captured graph serves every
    /// all-decode batch and Expert Deferral gates itself per row.
    fn build_ops(&self) -> Vec<OpEntry> {
        let mut ops: Vec<OpEntry> = Vec::new();
        let shared = Arc::clone(&self.shared);
        let embed = Arc::clone(&self.embed);
        let hidden = self.cfg.hidden;

        // Op: embedding lookup. Also the step's workspace turnover
        // point: last step's residual stream (and any unclaimed logits)
        // go back to the arena, and `ffn_in` buffers whose deferred
        // task outlived its merge are reclaimed — every task of the
        // previous step has drained by now.
        ops.push((
            false,
            Arc::new(move || {
                let _span = kt_trace::span(SpanKind::Embed);
                let mut st = shared.state.lock();
                if st.error.is_some() {
                    return;
                }
                let t_new = st.tokens.len();
                let mut ws = shared.ws_gpu.lock();
                ws.reclaim_pending();
                if let Some(v) = st.logits.take() {
                    for m in v {
                        ws.arena.restore(m);
                    }
                }
                match ws.arena.checkout(t_new, hidden) {
                    Ok(x) => {
                        let old = std::mem::replace(&mut st.x, x);
                        ws.arena.restore(old);
                        drop(ws);
                        let st = &mut *st;
                        for (i, &t) in st.tokens.iter().enumerate() {
                            st.x.row_mut(i).copy_from_slice(embed.row(t as usize));
                        }
                    }
                    Err(e) => st.error = Some(e.to_string()),
                }
            }),
            usize::MAX,
        ));

        for (li, layer) in self.layers.iter().enumerate() {
            let n_def = if !layer.last_moe {
                self.econfig.n_deferred.min(self.cfg.top_k.saturating_sub(1))
            } else {
                0
            };

            // Op: attention (+ dense MLP for dense layers) on the GPU.
            {
                let shared = Arc::clone(&self.shared);
                let layer = Arc::clone(layer);
                let rope = Arc::clone(&self.rope);
                ops.push((
                    false,
                    Arc::new(move || {
                        let _span = kt_trace::span_ab(SpanKind::Attention, li as u32, 0);
                        let mut guard = shared.state.lock();
                        if guard.error.is_some() {
                            return;
                        }
                        let mut ws = shared.ws_gpu.lock();
                        let mut normed =
                            match ws.arena.checkout(guard.x.rows(), guard.x.cols()) {
                                Ok(m) => m,
                                Err(e) => {
                                    guard.error = Some(e.to_string());
                                    return;
                                }
                            };
                        layer.attn_norm.forward_into(&guard.x, &mut normed);
                        let cols = normed.cols();
                        // Field-level split borrow: each sequence's rows
                        // attend against its own KV cache.
                        let st = &mut *guard;
                        for (s, &(start, len)) in st.seq_rows.iter().enumerate() {
                            // Request-scoped causal trace: tagged
                            // sequences get their own span so a
                            // request's attention time is separable
                            // from the rest of the batch.
                            let tag = st.tags.get(s).copied().unwrap_or(0);
                            let _seq_span = (tag != 0)
                                .then(|| kt_trace::span_ab(SpanKind::SeqAttention, tag, li as u32));
                            let mut sub = match ws.arena.checkout(len, cols) {
                                Ok(m) => m,
                                Err(e) => {
                                    st.error = Some(e.to_string());
                                    break;
                                }
                            };
                            sub.as_mut_slice().copy_from_slice(
                                &normed.as_slice()[start * cols..(start + len) * cols],
                            );
                            let cache = st.caches[s].layer_mut(li);
                            let r = layer.attn.forward(&sub, cache, &rope, None);
                            ws.arena.restore(sub);
                            match r {
                                Ok(attn_out) => {
                                    let dst = &mut st.x.as_mut_slice()
                                        [start * cols..(start + len) * cols];
                                    for (o, a) in dst.iter_mut().zip(attn_out.as_slice()) {
                                        *o += a;
                                    }
                                }
                                Err(e) => {
                                    st.error = Some(e.to_string());
                                    break;
                                }
                            }
                        }
                        if st.error.is_some() {
                            ws.arena.restore(normed);
                            return;
                        }
                        // Reuse the normed buffer for the FFN input: the
                        // attention residual is already folded into x.
                        let mut ffn_in = normed;
                        layer.ffn_norm.forward_into(&st.x, &mut ffn_in);
                        if let EngineFfn::Dense(mlp) = &layer.ffn {
                            let t_new = ffn_in.rows();
                            let all = MoeRouting::new(vec![vec![(0, 1.0)]; t_new]);
                            let r = mlp.forward_accumulate_with(
                                &ffn_in,
                                &all,
                                &mut st.x,
                                None,
                                SchedulePolicy::Dynamic,
                                &mut ws.moe,
                            );
                            ws.arena.restore(ffn_in);
                            if let Err(e) = r {
                                st.error = Some(e.to_string());
                            }
                        } else {
                            st.ffn_in[li] = Some(Arc::new(ffn_in));
                        }
                    }),
                    usize::MAX,
                ));
            }

            if layer.ffn.as_moe().is_none() {
                continue;
            }

            // Op: submit — a host callback inside the stream. Routes the
            // token(s), arms counters, enqueues CPU expert tasks.
            {
                let shared = Arc::clone(&self.shared);
                let layer = Arc::clone(layer);
                let cpu = Arc::clone(&self.cpu);
                ops.push((
                    true,
                    Arc::new(move || {
                        let _span = kt_trace::span_ab(SpanKind::ExpertDispatch, li as u32, 0);
                        let (ffn_in, routing, decode_row) = {
                            let st = shared.state.lock();
                            if st.error.is_some() {
                                return;
                            }
                            // Arc clone: the expert tasks share the
                            // saved FFN input, no deep copy.
                            let ffn_in = match &st.ffn_in[li] {
                                Some(m) => Arc::clone(m),
                                None => return,
                            };
                            let EngineFfn::Moe { router, .. } = &layer.ffn else {
                                return;
                            };
                            let routing = {
                                let _span =
                                    kt_trace::span_ab(SpanKind::Gating, li as u32, 0);
                                let hook = shared.routing_override.lock().clone();
                                hook.and_then(|h| h(li, ffn_in.rows()))
                                    .unwrap_or_else(|| router.route(&ffn_in))
                            };
                            (ffn_in, routing, st.decode_row.clone())
                        };
                        // Fault-injection hook (test harness): a
                        // registered injector can fail this layer's
                        // expert submission before any task is queued.
                        let hook = shared.fault.lock().clone();
                        if let Some(h) = hook {
                            let path = format!("model.layers.{li}.mlp.experts");
                            if h(&path) {
                                shared.state.lock().error =
                                    Some(format!("injected fault at {path}"));
                                return;
                            }
                        }
                        // Record activation statistics for popularity
                        // profiling (§1's Fiddler-style placement path)
                        // and, under dynamic placement, fold this step's
                        // gating mass into the cache's EWMA value model.
                        shared.profile.lock().record(li, &routing);
                        if let Some(dy) = &shared.dynamic {
                            dy.cache.lock().record_gating(li, &routing);
                        }

                        // Partition off GPU-pinned hot experts; they run
                        // in this layer's shared-experts op instead of
                        // the CPU queue.
                        let routing = {
                            let masks = shared.gpu_masks.lock();
                            if masks[li].is_empty() {
                                routing
                            } else {
                                let mask = &masks[li];
                                let mut cpu = Vec::with_capacity(routing.assignments.len());
                                let mut gpu = Vec::with_capacity(routing.assignments.len());
                                for a in &routing.assignments {
                                    let (g, c): (Vec<_>, Vec<_>) =
                                        a.iter().partition(|&&(e, _)| mask.get(e).copied().unwrap_or(false));
                                    cpu.push(c);
                                    gpu.push(g);
                                }
                                shared.state.lock().gpu_routing[li] =
                                    Some(MoeRouting::new(gpu));
                                MoeRouting::new(cpu)
                            }
                        };

                        // Expert Deferral gates per ROW: only decode
                        // rows defer (§4.1 — decode-only), so a
                        // mixed prefill/decode batch keeps every
                        // sequence's deferral semantics independent.
                        // Decode rows split exactly like
                        // `split_deferred` (weight-sorted, top experts
                        // immediate); prefill rows pass through
                        // untouched in routing order.
                        let any_defer =
                            n_def > 0 && decode_row.iter().any(|&d| d);
                        let (imm, def) = if any_defer {
                            let mut imm_rows =
                                Vec::with_capacity(routing.assignments.len());
                            let mut def_rows =
                                Vec::with_capacity(routing.assignments.len());
                            for (r, a) in routing.assignments.iter().enumerate() {
                                if decode_row.get(r).copied().unwrap_or(false) {
                                    let mut sorted = a.clone();
                                    sorted.sort_by(|x, y| y.1.total_cmp(&x.1));
                                    let split =
                                        a.len().saturating_sub(n_def).min(sorted.len());
                                    def_rows.push(sorted.split_off(split));
                                    imm_rows.push(sorted);
                                } else {
                                    imm_rows.push(a.clone());
                                    def_rows.push(Vec::new());
                                }
                            }
                            (MoeRouting::new(imm_rows), MoeRouting::new(def_rows))
                        } else {
                            (routing, MoeRouting::new(Vec::new()))
                        };
                        let has_def = def.n_activations() > 0;

                        // Dynamic placement: partition the IMMEDIATE
                        // routing per expert by calibrated cost — CPU
                        // roofline vs vGPU compute plus a PCIe upload
                        // term when the expert is not cache-resident —
                        // via greedy makespan assignment, so the two
                        // devices overlap. Deferred routing always
                        // stays on CPU (it merges a layer later and
                        // never gates this layer's critical path).
                        let (imm, use_buckets) = if let Some(dy) = &shared.dynamic {
                            let mut dyn_gpu = None;
                            let mut imm = imm;
                            let mut tokens: std::collections::BTreeMap<usize, usize> =
                                std::collections::BTreeMap::new();
                            for row in &imm.assignments {
                                for &(e, _) in row {
                                    *tokens.entry(e).or_insert(0) += 1;
                                }
                            }
                            if !tokens.is_empty() {
                                let mut cache = dy.cache.lock();
                                let bytes = dy.expert_bytes[li];
                                let choices: Vec<_> = tokens
                                    .iter()
                                    .map(|(&e, &t)| {
                                        dy.cost.choice(e, t, cache.is_resident(li, e), bytes)
                                    })
                                    .collect();
                                let part = partition_experts(&choices);
                                if !part.gpu.is_empty() {
                                    // The residency/admission pass is
                                    // where non-resident experts pay
                                    // the (modeled) PCIe upload; the
                                    // span carries its real wall time
                                    // and the miss count so request
                                    // breakdowns can attribute it.
                                    let mut up_span =
                                        kt_trace::span_ab(SpanKind::PcieUpload, li as u32, 0);
                                    let mut misses = 0u32;
                                    for &e in &part.gpu {
                                        if cache.is_resident(li, e) {
                                            cache.touch(li, e);
                                        } else {
                                            misses += 1;
                                            cache.request(li, e, bytes);
                                        }
                                    }
                                    let (c, g) = split_routing(&imm, &part.gpu);
                                    up_span.set_labels(li as u32, misses);
                                    drop(up_span);
                                    imm = c;
                                    dyn_gpu = Some(g);
                                }
                            }
                            // When the partition sends nothing to the
                            // device this step, fall back to the static
                            // scattered fast path — no bucket machinery,
                            // no merge overhead.
                            let use_buckets = dyn_gpu.is_some();
                            shared.state.lock().dyn_routing[li] = dyn_gpu;
                            (imm, use_buckets)
                        } else {
                            (imm, false)
                        };

                        // Arm counters BEFORE submitting so the merge
                        // kernel can never observe a stale zero.
                        shared.imm_pending[li].store(1, Ordering::Release);
                        if has_def {
                            shared.def_pending[li].store(1, Ordering::Release);
                        }

                        // Immediate experts. The counter clears even if
                        // the expert computation panics — a poisoned
                        // request must fail, not wedge the merge spin.
                        // When dynamic placement sent experts to the
                        // device this step, the task produces
                        // unscattered bucket outputs (the merge op
                        // scatters both devices' buckets in canonical
                        // expert order); otherwise — static policy OR a
                        // step whose partition kept everything on CPU —
                        // the scattered-sum fast path runs untouched.
                        {
                            let shared = Arc::clone(&shared);
                            let layer = Arc::clone(&layer);
                            let ffn_in = Arc::clone(&ffn_in);
                            cpu.submit(Box::new(move || {
                                let result = {
                                    let _span = kt_trace::span_ab(
                                        SpanKind::CpuExpertImmediate,
                                        li as u32,
                                        0,
                                    );
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                        || {
                                            let EngineFfn::Moe { routed, .. } = &layer.ffn
                                            else {
                                                return Err(
                                                    kt_kernels::KernelError::config(
                                                        "not a MoE layer",
                                                    ),
                                                );
                                            };
                                            // Workspace lock is DROPPED
                                            // before the state lock below
                                            // (see `EngineShared::ws_gpu`
                                            // lock discipline).
                                            let mut ws = shared.ws_imm.lock();
                                            if use_buckets {
                                                routed
                                                    .forward_buckets(
                                                        &ffn_in,
                                                        &imm,
                                                        None,
                                                        SchedulePolicy::Dynamic,
                                                        &mut ws,
                                                    )
                                                    .map(ImmOut::Buckets)
                                            } else {
                                                routed
                                                    .forward_with(
                                                        &ffn_in,
                                                        &imm,
                                                        None,
                                                        SchedulePolicy::Dynamic,
                                                        &mut ws,
                                                    )
                                                    .map(ImmOut::Scattered)
                                            }
                                        },
                                    ))
                                };
                                // Release the shared FFN input before
                                // signalling completion, so the merge
                                // op can usually reclaim it right away.
                                drop(ffn_in);
                                let mut st = shared.state.lock();
                                match result {
                                    Ok(Ok(ImmOut::Scattered(m))) => st.imm_out[li] = Some(m),
                                    Ok(Ok(ImmOut::Buckets(b))) => {
                                        st.cpu_buckets[li] = Some(b)
                                    }
                                    Ok(Err(e)) => st.error = Some(e.to_string()),
                                    Err(_) => {
                                        st.error = Some("expert task panicked".into())
                                    }
                                }
                                drop(st);
                                shared.imm_pending[li].store(0, Ordering::Release);
                            }));
                        }

                        // Deferred experts (same input, merged one MoE
                        // layer later); same panic discipline.
                        if has_def {
                            let shared = Arc::clone(&shared);
                            let layer = Arc::clone(&layer);
                            cpu.submit(Box::new(move || {
                                let result = {
                                    let _span = kt_trace::span_ab(
                                        SpanKind::CpuExpertDeferred,
                                        li as u32,
                                        0,
                                    );
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                        || {
                                            let EngineFfn::Moe { routed, .. } = &layer.ffn
                                            else {
                                                return Err(
                                                    kt_kernels::KernelError::config(
                                                        "not a MoE layer",
                                                    ),
                                                );
                                            };
                                            let mut ws = shared.ws_def.lock();
                                            routed.forward_with(
                                                &ffn_in,
                                                &def,
                                                None,
                                                SchedulePolicy::Dynamic,
                                                &mut ws,
                                            )
                                        },
                                    ))
                                };
                                drop(ffn_in);
                                let mut st = shared.state.lock();
                                match result {
                                    Ok(Ok(m)) => st.def_out[li] = Some(m),
                                    Ok(Err(e)) => st.error = Some(e.to_string()),
                                    Err(_) => {
                                        st.error = Some("expert task panicked".into())
                                    }
                                }
                                drop(st);
                                shared.def_pending[li].store(0, Ordering::Release);
                            }));
                        }
                    }),
                    usize::MAX,
                ));
            }

            // Op: cache-resident routed experts on the vGPU (dynamic
            // placement only). Runs right after submit, so it overlaps
            // the CPU immediate task exactly like the shared experts
            // do; results stay as unscattered bucket outputs until the
            // merge op folds both devices' buckets in canonical expert
            // order. Elided entirely under the static policy — the op
            // sequence (and captured graph) is then unchanged.
            if self.shared.dynamic.is_some() {
                let shared = Arc::clone(&self.shared);
                let layer = Arc::clone(layer);
                ops.push((
                    false,
                    Arc::new(move || {
                        let mut guard = shared.state.lock();
                        if guard.error.is_some() {
                            return;
                        }
                        let Some(gr) = guard.dyn_routing[li].take() else {
                            return;
                        };
                        let Some(ffn_in) = guard.ffn_in[li].clone() else {
                            return;
                        };
                        let EngineFfn::Moe { routed, .. } = &layer.ffn else {
                            return;
                        };
                        let _span = kt_trace::span_ab(SpanKind::GpuExperts, li as u32, 0);
                        let mut ws = shared.ws_gpu.lock();
                        let st = &mut *guard;
                        match routed.forward_buckets(
                            &ffn_in,
                            &gr,
                            None,
                            SchedulePolicy::Dynamic,
                            &mut ws.moe,
                        ) {
                            Ok(b) => st.gpu_buckets[li] = Some(b),
                            Err(e) => st.error = Some(e.to_string()),
                        }
                    }),
                    usize::MAX,
                ));
            }

            // Op: shared experts on the GPU, overlapping the CPU work.
            {
                let shared = Arc::clone(&self.shared);
                let layer = Arc::clone(layer);
                ops.push((
                    false,
                    Arc::new(move || {
                        let _span = kt_trace::span_ab(SpanKind::SharedExperts, li as u32, 0);
                        let mut guard = shared.state.lock();
                        if guard.error.is_some() {
                            return;
                        }
                        let EngineFfn::Moe {
                            shared: sh,
                            routed,
                            ..
                        } = &layer.ffn
                        else {
                            return;
                        };
                        // Arc clone — shares the buffer with the CPU
                        // expert tasks, no copy.
                        let Some(ffn_in) = guard.ffn_in[li].clone() else {
                            return;
                        };
                        let t_new = ffn_in.rows();
                        let gpu_routing = guard.gpu_routing[li].take();
                        let mut ws = shared.ws_gpu.lock();
                        let st = &mut *guard;
                        let mut result = Ok(());
                        if let Some(sh) = sh {
                            let all: Vec<(usize, f32)> =
                                (0..sh.n_experts()).map(|e| (e, 1.0)).collect();
                            let all = MoeRouting::new(vec![all; t_new]);
                            result = sh.forward_accumulate_with(
                                &ffn_in,
                                &all,
                                &mut st.x,
                                None,
                                SchedulePolicy::Dynamic,
                                &mut ws.moe,
                            );
                        }
                        // GPU-pinned hot routed experts execute here,
                        // overlapping the CPU backend like the shared
                        // experts do.
                        if result.is_ok() {
                            if let Some(gr) = gpu_routing {
                                result = routed.forward_accumulate_with(
                                    &ffn_in,
                                    &gr,
                                    &mut st.x,
                                    None,
                                    SchedulePolicy::Dynamic,
                                    &mut ws.moe,
                                );
                            }
                        }
                        if let Err(e) = result {
                            st.error = Some(e.to_string());
                        }
                    }),
                    usize::MAX,
                ));
            }

            // Op: merge — the spinning kernel. Waits for this layer's
            // immediate experts and the previous MoE layer's deferred
            // experts, then folds both into the residual stream.
            {
                let shared = Arc::clone(&self.shared);
                let prev_moe = layer.prev_moe;
                ops.push((
                    false,
                    Arc::new(move || {
                        {
                            let st = shared.state.lock();
                            if st.error.is_some() {
                                return;
                            }
                        }
                        // Spin WITHOUT holding the state lock (workers
                        // need it to publish their results).
                        {
                            let _span = kt_trace::span_ab(SpanKind::MergeSpin, li as u32, 0);
                            spin_until_zero(&shared.imm_pending[li], "immediate experts");
                            if let Some(p) = prev_moe {
                                spin_until_zero(&shared.def_pending[p], "deferred experts");
                            }
                        }
                        let mut st = shared.state.lock();
                        let imm = st.imm_out[li].take();
                        if let Some(m) = &imm {
                            let _span = kt_trace::span_ab(SpanKind::ScatterAdd, li as u32, 0);
                            for (o, v) in st.x.as_mut_slice().iter_mut().zip(m.as_slice()) {
                                *o += v;
                            }
                        }
                        // Dynamic placement: scatter both devices'
                        // bucket outputs in ascending expert order into
                        // a zeroed scratch buffer — the identical
                        // serial order the static path uses inside
                        // `forward_with` — then fold elementwise,
                        // keeping outputs bitwise equal to the all-CPU
                        // split.
                        let mut buckets: Option<(
                            Vec<BucketOut>,
                            Vec<BucketOut>,
                            Option<Matrix>,
                        )> = None;
                        if shared.dynamic.is_some() {
                            let cpu_b = st.cpu_buckets[li].take().unwrap_or_default();
                            let gpu_b = st.gpu_buckets[li].take().unwrap_or_default();
                            if !(cpu_b.is_empty() && gpu_b.is_empty()) {
                                let _span =
                                    kt_trace::span_ab(SpanKind::ScatterAdd, li as u32, 0);
                                // Device ops may take a workspace lock
                                // under `state` (see `ws_gpu` lock
                                // discipline); this layer's CPU task
                                // has already dropped `ws_imm` — its
                                // counter reached zero above.
                                let checkout =
                                    shared.ws_imm.lock().checkout(st.x.rows(), st.x.cols());
                                match checkout {
                                    Ok(mut buf) => {
                                        // Two-pointer merge of the two
                                        // ascending, disjoint expert
                                        // streams.
                                        let (mut i, mut j) = (0, 0);
                                        let mut err = None;
                                        while i < cpu_b.len() || j < gpu_b.len() {
                                            let from_cpu =
                                                match (cpu_b.get(i), gpu_b.get(j)) {
                                                    (Some(c), Some(g)) => {
                                                        c.expert < g.expert
                                                    }
                                                    (Some(_), None) => true,
                                                    _ => false,
                                                };
                                            let b = if from_cpu {
                                                i += 1;
                                                &cpu_b[i - 1]
                                            } else {
                                                j += 1;
                                                &gpu_b[j - 1]
                                            };
                                            if let Err(e) = scatter_bucket_outs(
                                                std::slice::from_ref(b),
                                                &mut buf,
                                            ) {
                                                err = Some(e.to_string());
                                                break;
                                            }
                                        }
                                        match err {
                                            None => {
                                                for (o, v) in st
                                                    .x
                                                    .as_mut_slice()
                                                    .iter_mut()
                                                    .zip(buf.as_slice())
                                                {
                                                    *o += v;
                                                }
                                            }
                                            Some(e) => st.error = Some(e),
                                        }
                                        buckets = Some((cpu_b, gpu_b, Some(buf)));
                                    }
                                    Err(e) => {
                                        st.error = Some(e.to_string());
                                        buckets = Some((cpu_b, gpu_b, None));
                                    }
                                }
                            }
                        }
                        let def_m = prev_moe.and_then(|p| st.def_out[p].take());
                        if let Some(m) = &def_m {
                            let _span = kt_trace::span_ab(
                                SpanKind::DeferralFlush,
                                prev_moe.unwrap_or(0) as u32,
                                0,
                            );
                            for (o, v) in st.x.as_mut_slice().iter_mut().zip(m.as_slice()) {
                                *o += v;
                            }
                        }
                        let ffn_arc = st.ffn_in[li].take();
                        // Return scratch buffers OUTSIDE the state lock:
                        // a CPU task of the next layer may hold its
                        // workspace lock while waiting for `state`.
                        drop(st);
                        if let Some(m) = imm {
                            shared.ws_imm.lock().restore(m);
                        }
                        // Buckets retire to the workspace whose arena
                        // backs them (CPU → ws_imm, GPU → ws_gpu.moe),
                        // preserving the zero-allocation steady state.
                        if let Some((cpu_b, gpu_b, buf)) = buckets {
                            {
                                let mut ws = shared.ws_imm.lock();
                                if let Some(b) = buf {
                                    ws.restore(b);
                                }
                                for b in cpu_b {
                                    ws.retire_bucket_out(b);
                                }
                            }
                            let mut ws = shared.ws_gpu.lock();
                            for b in gpu_b {
                                ws.moe.retire_bucket_out(b);
                            }
                        }
                        if let Some(m) = def_m {
                            shared.ws_def.lock().restore(m);
                        }
                        if let Some(arc) = ffn_arc {
                            let mut ws = shared.ws_gpu.lock();
                            match Arc::try_unwrap(arc) {
                                Ok(m) => ws.arena.restore(m),
                                // This layer's own deferred task may
                                // still hold a clone; reclaimed at the
                                // next embed.
                                Err(arc) => ws.pending.push(arc),
                            }
                        }
                    }),
                    li,
                ));
            }
        }

        // Op: final norm + LM head. Also absorbs any deferred output of
        // the last MoE layer (none is produced there by construction).
        {
            let shared = Arc::clone(&self.shared);
            let final_norm = Arc::clone(&self.final_norm);
            let lm_head = Arc::clone(&self.lm_head);
            let head_pool = Arc::clone(&self.head_pool);
            let vocab = self.cfg.vocab;
            ops.push((
                false,
                Arc::new(move || {
                    let mut head_span = kt_trace::span(SpanKind::LmHead);
                    let mut guard = shared.state.lock();
                    if guard.error.is_some() {
                        return;
                    }
                    // The CPU expert backend is idle here (final merge
                    // already ran), so the head pool has the machine to
                    // itself. Panel-parallel execution is bitwise
                    // identical to serial — each worker owns disjoint
                    // output columns.
                    let mut ws = shared.ws_gpu.lock();
                    let st = &mut *guard;
                    let per_seq = (|| -> Result<Vec<Matrix>, String> {
                        let mut normed = ws
                            .arena
                            .checkout(st.x.rows(), st.x.cols())
                            .map_err(|e| e.to_string())?;
                        final_norm.forward_into(&st.x, &mut normed);
                        let cols = normed.cols();
                        // The head GEMM runs per sequence through the
                        // row-stable kernel: every position's logits
                        // row is a function of its residual row only,
                        // so sequential decode, batched decode, and any
                        // chunking of a prefill all produce the same
                        // bits. Sequences that don't sample this step
                        // (non-final prefill chunks) skip the head GEMM
                        // entirely.
                        let mut out_seqs = Vec::with_capacity(st.seq_rows.len());
                        let mut result = Ok(());
                        for (s, &(start, len)) in st.seq_rows.iter().enumerate() {
                            if !st.need_logits.get(s).copied().unwrap_or(true) {
                                continue;
                            }
                            let r = (|| -> Result<Matrix, String> {
                                let mut sub = ws
                                    .arena
                                    .checkout(len, cols)
                                    .map_err(|e| e.to_string())?;
                                sub.as_mut_slice().copy_from_slice(
                                    &normed.as_slice()
                                        [start * cols..(start + len) * cols],
                                );
                                let mut out = ws
                                    .arena
                                    .checkout(len, vocab)
                                    .map_err(|e| e.to_string())?;
                                let r = gemm_rowwise(
                                    &sub,
                                    &lm_head,
                                    &mut out,
                                    Some(&head_pool),
                                );
                                ws.arena.restore(sub);
                                r.map_err(|e| e.to_string())?;
                                Ok(out)
                            })();
                            match r {
                                Ok(out) => out_seqs.push(out),
                                Err(e) => {
                                    result = Err(e);
                                    break;
                                }
                            }
                        }
                        ws.arena.restore(normed);
                        if let Err(e) = result {
                            for m in out_seqs {
                                ws.arena.restore(m);
                            }
                            return Err(e);
                        }
                        Ok(out_seqs)
                    })();
                    match per_seq {
                        Ok(logits) => {
                            let rows: usize = logits.iter().map(Matrix::rows).sum();
                            head_span.set_labels(rows as u32, 0);
                            st.logits = Some(logits);
                        }
                        Err(e) => {
                            st.error = Some(e);
                        }
                    }
                }),
                usize::MAX,
            ));
        }
        ops
    }

    /// Runs one forward over `tokens` (appended to the cache) and
    /// returns logits for every new position.
    ///
    /// Deferral applies only to single-token forwards (decode), as in
    /// the paper.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] on invalid tokens or any failure
    /// raised by device/worker ops.
    pub fn forward(&self, tokens: &[u32]) -> Result<Matrix, EngineError> {
        self.validate_tokens(tokens)?;
        // One forward at a time: the step state is per-request.
        let _serialized = self.inference_lock.lock();
        let decode = tokens.len() == 1;
        {
            let mut st = self.shared.state.lock();
            st.tokens = tokens.to_vec();
            st.seq_rows = vec![(0, tokens.len())];
            st.decode_row = vec![decode; tokens.len()];
            st.need_logits = vec![true];
            st.tags = vec![0];
        }
        let mut per_seq = self.run_step(decode)?;
        per_seq
            .pop()
            .ok_or_else(|| EngineError::exec("forward produced no logits"))
    }

    /// Runs one continuously-batched forward: every sequence's new
    /// tokens are appended to its own KV cache and processed in a
    /// single step — attention per sequence, expert FFNs across the
    /// whole batch. Single-token non-prefill sequences are decode rows
    /// (Expert Deferral applies per row); prefill sequences append
    /// prompt positions — a whole prompt, or one chunk of it per step
    /// (see [`BatchSeq::prefill_chunk`]). Chunking is invariant: any
    /// split of a prompt into chunks produces bitwise-identical KV
    /// state and logits to a monolithic prefill.
    ///
    /// The returned logits are split per sequence, one matrix each with
    /// one row per new token — `None` for sequences that declined
    /// logits (non-final prefill chunks).
    ///
    /// Caches are moved into the engine for the step and handed back
    /// before returning — including on error, but a failed step may
    /// leave caches partially advanced; callers must `reset` a cache
    /// before reusing it after an error.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Exec`] on an empty batch, invalid
    /// tokens, or any failure raised by device/worker ops.
    pub fn forward_batch(
        &self,
        seqs: &mut [BatchSeq],
    ) -> Result<Vec<Option<Matrix>>, EngineError> {
        if seqs.is_empty() {
            return Err(EngineError::exec("forward_batch requires at least one sequence"));
        }
        for s in seqs.iter() {
            self.validate_tokens(&s.tokens)?;
        }
        let _serialized = self.inference_lock.lock();
        let mut seq_rows = Vec::with_capacity(seqs.len());
        let mut decode_row = Vec::new();
        let mut tokens = Vec::new();
        let need: Vec<bool> = seqs.iter().map(|s| s.need_logits).collect();
        for s in seqs.iter() {
            seq_rows.push((tokens.len(), s.tokens.len()));
            let is_decode = !s.prefill && s.tokens.len() == 1;
            decode_row.extend(std::iter::repeat_n(is_decode, s.tokens.len()));
            tokens.extend_from_slice(&s.tokens);
        }
        let all_decode = decode_row.iter().all(|&d| d);

        // Move the batch's caches into the step state, stashing the
        // engine-owned single-session cache meanwhile.
        let stashed = {
            let mut st = self.shared.state.lock();
            st.tokens = tokens;
            st.seq_rows = seq_rows;
            st.decode_row = decode_row;
            st.need_logits = need.clone();
            st.tags = seqs.iter().map(|s| s.tag).collect();
            let incoming: Vec<KvCache> = seqs
                .iter_mut()
                .map(|s| std::mem::replace(&mut s.cache, KvCache::new(&[], 0)))
                .collect();
            std::mem::replace(&mut st.caches, incoming)
        };
        let result = self.run_step(all_decode);
        // Hand caches back BEFORE propagating any error: a failed step
        // must not eat the batch's caches.
        {
            let mut st = self.shared.state.lock();
            let outgoing = std::mem::replace(&mut st.caches, stashed);
            for (slot, cache) in seqs.iter_mut().zip(outgoing) {
                slot.cache = cache;
            }
        }
        // The head op produced one logits matrix per logits-requesting
        // sequence, in batch order; re-align with the skipped slots.
        result.map(|dense| {
            let mut it = dense.into_iter();
            need.iter().map(|&n| if n { it.next() } else { None }).collect()
        })
    }

    fn validate_tokens(&self, tokens: &[u32]) -> Result<(), EngineError> {
        if tokens.is_empty() {
            return Err(EngineError::exec("forward requires at least one token"));
        }
        for &t in tokens {
            if t as usize >= self.cfg.vocab {
                return Err(EngineError::exec(format!(
                    "token {t} outside vocab {}",
                    self.cfg.vocab
                )));
            }
        }
        Ok(())
    }

    /// Executes one step over the tokens/spans already staged in the
    /// step state. Callers must hold the inference lock. Returns one
    /// logits matrix per sequence (in `seq_rows` order); callers should
    /// hand them back via [`HybridEngine::recycle_logits`] once sampled
    /// so the arena can reuse them.
    fn run_step(&self, all_decode: bool) -> Result<Vec<Matrix>, EngineError> {
        let mut step_span = kt_trace::span(SpanKind::EngineStep);
        if kt_trace::enabled() {
            let st = self.shared.state.lock();
            step_span.set_labels(st.tokens.len() as u32, st.seq_rows.len() as u32);
        }
        let use_graph = all_decode && self.econfig.mode == SchedMode::AsyncGraph;
        if use_graph {
            // Capture once, replay every decode step. Ops read the
            // batch shape from the step state, so the same graph
            // serves any all-decode batch.
            let mut graph_slot = self.decode_graph.lock();
            if graph_slot.is_none() {
                let ops = self.build_ops();
                self.vgpu.begin_capture()?;
                for (is_host, f, _) in &ops {
                    let f = Arc::clone(f);
                    if *is_host {
                        self.vgpu.launch_host_func(0, move || f());
                    } else {
                        self.vgpu.launch_kernel(0, move || f());
                    }
                }
                *graph_slot = Some(self.vgpu.end_capture()?);
            }
            let graph = graph_slot.as_ref().expect("captured above").clone();
            drop(graph_slot);
            self.vgpu.launch_graph(0, &graph);
            self.vgpu.synchronize(0);
        } else {
            // Per-op launches with per-layer synchronization (prefill,
            // or the sync-mode decode baseline).
            let ops = self.build_ops();
            for (is_host, f, layer_boundary) in &ops {
                let f = Arc::clone(f);
                if *is_host {
                    self.vgpu.launch_host_func(0, move || f());
                } else {
                    self.vgpu.launch_kernel(0, move || f());
                }
                if *layer_boundary != usize::MAX && self.econfig.mode == SchedMode::Sync {
                    // The baseline breaks the stream at every layer.
                    self.vgpu.synchronize(0);
                }
            }
            self.vgpu.synchronize(0);
        }

        // Drain: if an op errored mid-stream, the merge kernels skipped
        // their spin-waits and CPU expert tasks may still be in flight.
        // Their late counter stores must not release the NEXT forward's
        // freshly armed counters, so wait them out here.
        for counter in self.shared.imm_pending.iter().chain(&self.shared.def_pending) {
            spin_until_zero(counter, "in-flight expert tasks at forward exit");
        }

        let mut st = self.shared.state.lock();
        if let Some(e) = st.error.take() {
            // Clear any partial per-layer state left by the failed
            // pass, returning its buffers to their workspaces (outside
            // the state lock — see the ws_gpu lock discipline).
            let ffn: Vec<_> = st.ffn_in.iter_mut().filter_map(Option::take).collect();
            let imm: Vec<_> = st.imm_out.iter_mut().filter_map(Option::take).collect();
            let def: Vec<_> = st.def_out.iter_mut().filter_map(Option::take).collect();
            let cpu_b: Vec<_> = st
                .cpu_buckets
                .iter_mut()
                .filter_map(Option::take)
                .flatten()
                .collect();
            let gpu_b: Vec<_> = st
                .gpu_buckets
                .iter_mut()
                .filter_map(Option::take)
                .flatten()
                .collect();
            let logits = st.logits.take();
            st.gpu_routing.iter_mut().for_each(|s| *s = None);
            st.dyn_routing.iter_mut().for_each(|s| *s = None);
            drop(st);
            {
                let mut ws = self.shared.ws_imm.lock();
                for m in imm {
                    ws.restore(m);
                }
                for b in cpu_b {
                    ws.retire_bucket_out(b);
                }
            }
            {
                let mut ws = self.shared.ws_def.lock();
                for m in def {
                    ws.restore(m);
                }
            }
            let mut ws = self.shared.ws_gpu.lock();
            for b in gpu_b {
                ws.moe.retire_bucket_out(b);
            }
            for arc in ffn {
                match Arc::try_unwrap(arc) {
                    Ok(m) => ws.arena.restore(m),
                    Err(arc) => ws.pending.push(arc),
                }
            }
            for m in logits.into_iter().flatten() {
                ws.arena.restore(m);
            }
            return Err(EngineError::exec(e));
        }
        st.logits
            .take()
            .ok_or_else(|| EngineError::exec("forward produced no logits"))
    }

    /// Returns a sampled-from logits matrix to the engine's scratch
    /// arena for reuse by a later step. Purely an optimization — any
    /// matrix (or none at all) is accepted.
    pub fn recycle_logits(&self, m: Matrix) {
        self.shared.ws_gpu.lock().arena.restore(m);
    }

    /// Merged allocation counters across every step workspace (device
    /// arena plus the immediate/deferred CPU expert workspaces).
    /// `allocations` staying flat across steady-state decode steps is
    /// the zero-allocation hot-path invariant.
    pub fn workspace_stats(&self) -> ArenaStats {
        let gpu = {
            let ws = self.shared.ws_gpu.lock();
            let mut s = ws.arena.stats();
            s.merge(&ws.moe.arena_stats());
            s
        };
        let imm = self.shared.ws_imm.lock().arena_stats();
        let def = self.shared.ws_def.lock().arena_stats();
        let mut all = gpu;
        all.merge(&imm);
        all.merge(&def);
        all
    }

    /// Prefills a prompt then greedily decodes `n_new` tokens.
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn generate_greedy(&self, prompt: &[u32], n_new: usize) -> Result<Vec<u32>, EngineError> {
        let mut rng = StdRng::seed_from_u64(0);
        self.generate(prompt, n_new, kt_model::sampler::Sampler::Greedy, &mut rng, |_| true)
    }

    /// Prefills a prompt, then decodes up to `max_new` tokens with the
    /// given sampler, invoking `on_token` after every generated token
    /// (streaming); generation stops early when `on_token` returns
    /// `false` (client disconnect, stop token, length policy).
    ///
    /// # Errors
    ///
    /// Propagates forward errors.
    pub fn generate(
        &self,
        prompt: &[u32],
        max_new: usize,
        sampler: kt_model::sampler::Sampler,
        rng: &mut StdRng,
        mut on_token: impl FnMut(u32) -> bool,
    ) -> Result<Vec<u32>, EngineError> {
        let logits = self.forward(prompt)?;
        let mut out = Vec::with_capacity(max_new);
        let mut next = sampler.sample(logits.row(logits.rows() - 1), rng);
        self.recycle_logits(logits);
        for step in 0..max_new {
            out.push(next);
            if !on_token(next) || step + 1 == max_new {
                break;
            }
            let logits = self.forward(&[next])?;
            next = sampler.sample(logits.row(0), rng);
            self.recycle_logits(logits);
        }
        Ok(out)
    }
}

impl EngineFfn {
    fn as_moe(&self) -> Option<()> {
        match self {
            EngineFfn::Moe { .. } => Some(()),
            EngineFfn::Dense(_) => None,
        }
    }
}

impl std::fmt::Debug for HybridEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridEngine")
            .field("model", &self.cfg.name)
            .field("mode", &self.econfig.mode)
            .field("n_deferred", &self.econfig.n_deferred)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    fn engine(mode: SchedMode, n_deferred: usize, seed: u64) -> HybridEngine {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode,
                n_deferred,
                seed,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn invalid_tokens_are_rejected() {
        let e = engine(SchedMode::Sync, 0, 1);
        assert!(e.forward(&[]).is_err());
        assert!(e.forward(&[70_000]).is_err());
    }

    #[test]
    fn validate_cache_checks_layout_and_consistency() {
        let e = engine(SchedMode::Sync, 0, 1);
        let mut ok = e.fresh_cache();
        e.validate_cache(&ok).unwrap();

        // A cache the engine has actually advanced still validates.
        e.swap_cache(&mut ok);
        let _ = e.forward(&[1, 2, 3]).unwrap();
        e.swap_cache(&mut ok);
        e.validate_cache(&ok).unwrap();

        // Wrong layer count.
        let wrong_layers = KvCache::new(&[(4, 4)], e.config().max_seq);
        assert!(e.validate_cache(&wrong_layers).is_err());

        // Wrong widths (same layer count).
        let n = ok.n_layers();
        let wrong_widths = KvCache::new(&vec![(1, 1); n], e.config().max_seq);
        assert!(e.validate_cache(&wrong_widths).is_err());

        // Wrong capacity.
        let specs: Vec<(usize, usize)> = (0..n)
            .map(|i| (ok.layer(i).k_width(), ok.layer(i).v_width()))
            .collect();
        let wrong_cap = KvCache::new(&specs, e.config().max_seq + 1);
        assert!(e.validate_cache(&wrong_cap).is_err());

        // Ragged lengths across layers.
        let mut ragged = e.fresh_cache();
        let kw = ragged.layer(0).k_width();
        let vw = ragged.layer(0).v_width();
        ragged
            .layer_mut(0)
            .push(&vec![0.0; kw], &vec![0.0; vw])
            .unwrap();
        assert!(e.validate_cache(&ragged).is_err());
    }

    #[test]
    fn forward_produces_finite_logits() {
        let e = engine(SchedMode::Sync, 0, 2);
        let logits = e.forward(&[1, 2, 3]).unwrap();
        assert_eq!(logits.rows(), 3);
        assert_eq!(logits.cols(), 256);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sync_and_graph_modes_agree_exactly() {
        let a = engine(SchedMode::Sync, 0, 7);
        let b = engine(SchedMode::AsyncGraph, 0, 7);
        let ga = a.generate_greedy(&[5, 9, 13], 6).unwrap();
        let gb = b.generate_greedy(&[5, 9, 13], 6).unwrap();
        assert_eq!(ga, gb, "scheduling must not change the math");
    }

    #[test]
    fn graph_mode_replays_a_single_graph() {
        let e = engine(SchedMode::AsyncGraph, 0, 3);
        let _ = e.generate_greedy(&[1, 2], 5).unwrap();
        let stats = e.launch_stats();
        // 4 decode steps after the first generated token use the graph.
        assert!(stats.graph_replays >= 4, "{stats:?}");
        // Per-token launches: graph mode should launch FAR fewer than
        // ops-per-token times tokens.
        assert!(
            stats.graph_replays < stats.graph_ops / 5,
            "graph replay amortizes launches: {stats:?}"
        );
    }

    #[test]
    fn sync_mode_launches_every_op() {
        let e = engine(SchedMode::Sync, 0, 3);
        let _ = e.generate_greedy(&[1, 2], 3).unwrap();
        let stats = e.launch_stats();
        assert_eq!(stats.graph_replays, 0);
        // 5 tiny-config layers -> tens of ops per forward.
        assert!(stats.kernel_launches > 30, "{stats:?}");
    }

    #[test]
    fn deferral_zero_matches_standard() {
        // n_deferred = 0 must be bit-identical to the standard path.
        let a = engine(SchedMode::AsyncGraph, 0, 11);
        let b = engine(SchedMode::Sync, 0, 11);
        let la = a.forward(&[3, 4, 5]).unwrap();
        let lb = b.forward(&[3, 4, 5]).unwrap();
        let da = a.forward(&[7]).unwrap();
        let db = b.forward(&[7]).unwrap();
        assert_eq!(la.as_slice(), lb.as_slice());
        assert_eq!(da.as_slice(), db.as_slice());
    }

    #[test]
    fn deferral_changes_decode_but_preserves_shape() {
        let std_e = engine(SchedMode::AsyncGraph, 0, 13);
        let def_e = engine(SchedMode::AsyncGraph, 3, 13);
        // Same prefill (deferral is decode-only).
        let lp_std = std_e.forward(&[2, 4, 6]).unwrap();
        let lp_def = def_e.forward(&[2, 4, 6]).unwrap();
        assert_eq!(lp_std.as_slice(), lp_def.as_slice(), "prefill unaffected");
        // Decode logits differ (deferred contributions land later) but
        // stay close.
        let d_std = std_e.forward(&[8]).unwrap();
        let d_def = def_e.forward(&[8]).unwrap();
        assert_ne!(d_std.as_slice(), d_def.as_slice());
        let err = d_std.relative_error(&d_def);
        assert!(err < 0.5, "deferral divergence too large: {err}");
    }

    #[test]
    fn deferral_in_graph_mode_matches_sync_mode() {
        // The scheduling machinery (spin merges, counters, graph
        // capture) must not change deferred-math results.
        let a = engine(SchedMode::AsyncGraph, 2, 17);
        let b = engine(SchedMode::Sync, 2, 17);
        let ga = a.generate_greedy(&[1, 2, 3], 6).unwrap();
        let gb = b.generate_greedy(&[1, 2, 3], 6).unwrap();
        assert_eq!(ga, gb);
    }

    #[test]
    fn incremental_decode_matches_model_semantics() {
        // Full prefill vs prefill + step-by-step decode consistency.
        let e = engine(SchedMode::AsyncGraph, 0, 19);
        let full = e.forward(&[5, 6, 7, 8]).unwrap();
        e.reset();
        let _ = e.forward(&[5, 6, 7]).unwrap();
        let last = e.forward(&[8]).unwrap();
        for (a, b) in full.row(3).iter().zip(last.row(0)) {
            assert!((a - b).abs() < 2e-3, "full={a} inc={b}");
        }
    }

    #[test]
    fn reset_clears_cache() {
        let e = engine(SchedMode::Sync, 0, 23);
        let _ = e.forward(&[1, 2, 3]).unwrap();
        assert_eq!(e.seq_len(), 3);
        e.reset();
        assert_eq!(e.seq_len(), 0);
        let a = e.forward(&[1, 2, 3]).unwrap();
        e.reset();
        let b = e.forward(&[1, 2, 3]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "reset gives a clean slate");
    }

    #[test]
    fn utilization_report_is_sane() {
        let e = engine(SchedMode::AsyncGraph, 2, 61);
        let _ = e.forward(&[1, 2, 3]).unwrap(); // warm up / capture
        let rep = e
            .measure_utilization(|| {
                for _ in 0..8 {
                    e.forward(&[5])?;
                }
                Ok(())
            })
            .unwrap();
        assert!(rep.cpu_util > 0.0 && rep.cpu_util <= 1.0 + 1e-6, "{rep:?}");
        assert!(rep.gpu_util > 0.0 && rep.gpu_util <= 1.0 + 1e-6, "{rep:?}");
        assert!((0.0..=1.0).contains(&rep.gpu_overhead_frac));
    }

    #[test]
    fn sampled_generation_is_seed_deterministic() {
        use kt_model::sampler::Sampler;
        use rand::SeedableRng;
        let e = engine(SchedMode::AsyncGraph, 0, 31);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let a = e
            .generate(&[1, 2], 6, Sampler::Temperature(0.8), &mut r1, |_| true)
            .unwrap();
        e.reset();
        let b = e
            .generate(&[1, 2], 6, Sampler::Temperature(0.8), &mut r2, |_| true)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn streaming_callback_can_stop_generation() {
        use kt_model::sampler::Sampler;
        use rand::SeedableRng;
        let e = engine(SchedMode::AsyncGraph, 0, 37);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut streamed = Vec::new();
        let out = e
            .generate(&[1, 2, 3], 10, Sampler::Greedy, &mut rng, |t| {
                streamed.push(t);
                streamed.len() < 3
            })
            .unwrap();
        assert_eq!(out.len(), 3, "stopped by callback");
        assert_eq!(out, streamed);
    }

    #[test]
    fn concurrent_forwards_are_serialized_safely() {
        // Two threads hammering the same engine must not corrupt state;
        // the inference lock serializes whole forwards.
        let e = std::sync::Arc::new(engine(SchedMode::AsyncGraph, 2, 91));
        let _ = e.forward(&[1, 2]).unwrap();
        std::thread::scope(|scope| {
            for t in 0..2u32 {
                let e = std::sync::Arc::clone(&e);
                scope.spawn(move || {
                    for i in 0..4u32 {
                        let logits = e.forward(&[(t * 40 + i) % 256]).unwrap();
                        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
                    }
                });
            }
        });
    }

    #[test]
    fn engine_checkpoint_round_trips() {
        let e = engine(SchedMode::AsyncGraph, 2, 83);
        let expect = e.generate_greedy(&[4, 5, 6], 8).unwrap();
        let mut buf = Vec::new();
        e.save(&mut buf).unwrap();
        let loaded = HybridEngine::load(
            &mut buf.as_slice(),
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::Sync, // different runtime settings
                n_deferred: 2,
                seed: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let got = loaded.generate_greedy(&[4, 5, 6], 8).unwrap();
        assert_eq!(expect, got, "checkpointed weights decode identically");
        // Corrupt checkpoints fail loudly.
        buf[2] ^= 0xFF;
        assert!(HybridEngine::load(&mut buf.as_slice(), EngineConfig::default()).is_err());
    }

    #[test]
    fn cache_swapping_supports_multiple_sessions() {
        // Two interleaved conversations must produce exactly what two
        // sequential conversations produce.
        let e = engine(SchedMode::AsyncGraph, 0, 71);
        let prompts: [&[u32]; 2] = [&[1, 2, 3], &[9, 8, 7, 6]];

        // Sequential reference.
        let mut reference = Vec::new();
        for p in prompts {
            e.reset();
            reference.push(e.generate_greedy(p, 6).unwrap());
        }

        // Interleaved: swap caches between every decode step.
        e.reset();
        let mut caches: Vec<_> = (0..2).map(|_| e.fresh_cache()).collect();
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new(); 2];
        let mut next: Vec<u32> = Vec::new();
        for (s, p) in prompts.iter().enumerate() {
            e.swap_cache(&mut caches[s]);
            let logits = e.forward(p).unwrap();
            next.push(kt_model::model::argmax(logits.row(logits.rows() - 1)));
            e.swap_cache(&mut caches[s]);
        }
        for _ in 0..6 {
            for s in 0..2 {
                e.swap_cache(&mut caches[s]);
                outputs[s].push(next[s]);
                let logits = e.forward(&[next[s]]).unwrap();
                next[s] = kt_model::model::argmax(logits.row(0));
                e.swap_cache(&mut caches[s]);
            }
        }
        for s in 0..2 {
            assert_eq!(outputs[s], reference[s], "session {s}");
        }
    }

    #[test]
    fn batched_decode_matches_sequential_bitwise() {
        // Continuous batching is pure scheduling: N sequences decoded
        // in one batch must emit exactly the tokens each would emit
        // alone. `TiledOnly` pins the kernel class so bucket sizes
        // (which vary with batch occupancy) cannot change the math.
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let e = HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                backend: Backend::TiledOnly,
                seed: 101,
                ..Default::default()
            },
        )
        .unwrap();
        let prompts: [&[u32]; 3] = [&[1, 2, 3], &[9, 8], &[4, 5, 6, 7]];

        let mut reference = Vec::new();
        for p in prompts {
            e.reset();
            reference.push(e.generate_greedy(p, 5).unwrap());
        }

        e.reset();
        let mut seqs: Vec<BatchSeq> = prompts
            .iter()
            .map(|p| BatchSeq::prefill(e.fresh_cache(), p.to_vec()))
            .collect();
        // Batched prefill (mixed lengths), then batched decode steps.
        let logits = e.forward_batch(&mut seqs).unwrap();
        let mut next: Vec<u32> = logits
            .iter()
            .map(|l| {
                let l = l.as_ref().expect("prefill returns logits");
                kt_model::model::argmax(l.row(l.rows() - 1))
            })
            .collect();
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new(); prompts.len()];
        for step in 0..5 {
            for (s, seq) in seqs.iter_mut().enumerate() {
                outputs[s].push(next[s]);
                seq.tokens = vec![next[s]];
                seq.prefill = false;
            }
            if step + 1 == 5 {
                break;
            }
            let logits = e.forward_batch(&mut seqs).unwrap();
            for (s, l) in logits.iter().enumerate() {
                next[s] = kt_model::model::argmax(l.as_ref().unwrap().row(0));
            }
        }
        for s in 0..prompts.len() {
            assert_eq!(outputs[s], reference[s], "sequence {s}");
        }
    }

    #[test]
    fn chunked_prefill_is_bitwise_identical_to_monolithic() {
        // Deferral ON: the 1-token chunks exercise the decode-row /
        // prefill-chunk distinction — a chunk of one token must NOT
        // defer experts, or its logits would drift from the monolithic
        // prefill's. One kernel class pins the expert GEMMs (attention
        // and the head are row-stable by construction); see the serve
        // equivalence tests for the same convention.
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let e = HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::Sync,
                n_deferred: 2,
                backend: Backend::TiledOnly,
                seed: 61,
                ..Default::default()
            },
        )
        .unwrap();
        let prompt: Vec<u32> = (0..13).map(|i| (i * 7 + 1) % 250).collect();

        // Monolithic reference on the engine-owned cache: per-position
        // logits plus one greedy decode step.
        e.reset();
        let mono = e.forward(&prompt).unwrap();
        let next = kt_model::model::argmax(mono.row(mono.rows() - 1));
        let mono_next = {
            let l = e.forward(&[next]).unwrap();
            kt_model::model::argmax(l.row(0))
        };

        // Chunk splits that include 1-token mid and final chunks.
        for splits in [vec![4, 4, 4, 1], vec![1, 11, 1], vec![13], vec![6, 7]] {
            assert_eq!(splits.iter().sum::<usize>(), prompt.len());
            let mut batch = vec![BatchSeq::prefill(e.fresh_cache(), Vec::new())];
            let mut row = 0;
            let mut off = 0;
            for &n in &splits {
                batch[0].tokens = prompt[off..off + n].to_vec();
                off += n;
                let logits = e.forward_batch(&mut batch).unwrap();
                // Concatenated per-chunk logits == monolithic logits,
                // bit for bit, at every prompt position.
                let l = logits[0].as_ref().expect("logits requested");
                for r in 0..l.rows() {
                    assert_eq!(
                        l.row(r),
                        mono.row(row),
                        "splits {splits:?}, position {row}"
                    );
                    row += 1;
                }
            }
            assert_eq!(row, prompt.len());
            // The chunk-built cache decodes exactly like the
            // monolithic one: greedy continuations agree.
            batch[0].tokens = vec![next];
            batch[0].prefill = false;
            let l = e.forward_batch(&mut batch).unwrap();
            let chunk_next =
                kt_model::model::argmax(l[0].as_ref().unwrap().row(0));
            assert_eq!(chunk_next, mono_next, "splits {splits:?} decode");
        }
    }

    #[test]
    fn mid_prefill_chunks_skip_logits() {
        let e = engine(SchedMode::Sync, 0, 67);
        let mut batch = vec![
            BatchSeq::prefill_chunk(e.fresh_cache(), vec![1, 2, 3]),
            BatchSeq::decode(e.fresh_cache(), 4),
        ];
        let logits = e.forward_batch(&mut batch).unwrap();
        assert!(logits[0].is_none(), "mid-chunk produces no logits");
        let l = logits[1].as_ref().expect("decode row produces logits");
        assert_eq!(l.rows(), 1);
        // The chunk still advanced its KV cache.
        assert_eq!(batch[0].cache.seq_len(), 3);
    }

    #[test]
    fn forward_batch_rejects_bad_input() {
        let e = engine(SchedMode::Sync, 0, 5);
        assert!(e.forward_batch(&mut []).is_err());
        let mut seqs = vec![BatchSeq::prefill(e.fresh_cache(), vec![])];
        assert!(e.forward_batch(&mut seqs).is_err());
        seqs[0].tokens = vec![70_000];
        assert!(e.forward_batch(&mut seqs).is_err());
    }

    #[test]
    fn fault_injector_fails_forward_then_recovers() {
        let e = engine(SchedMode::Sync, 0, 3);
        e.set_fault_injector(|path| path.contains("layers.3"));
        let err = e.forward(&[1, 2]).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        e.clear_fault_injector();
        e.reset();
        assert!(e.forward(&[1, 2]).is_ok(), "engine recovers after fault");
    }

    #[test]
    fn fault_during_batch_returns_caches() {
        // A failed batched step must hand every cache back (possibly
        // partially advanced) rather than leaking them into the engine.
        let e = engine(SchedMode::Sync, 0, 7);
        e.set_fault_injector(|path| path.contains("layers.2"));
        let mut seqs = vec![
            BatchSeq::prefill(e.fresh_cache(), vec![1, 2]),
            BatchSeq::decode(e.fresh_cache(), 3),
        ];
        assert!(e.forward_batch(&mut seqs).is_err());
        e.clear_fault_injector();
        for seq in &mut seqs {
            assert_eq!(seq.cache.n_layers(), e.config().n_layers);
            seq.cache.reset();
        }
        // The returned caches are usable again after a reset.
        assert!(e.forward_batch(&mut seqs).is_ok());
    }

    #[test]
    fn works_for_all_model_presets() {
        for preset in ModelPreset::all() {
            let cfg = preset.tiny_config();
            let e = HybridEngine::random(
                &cfg,
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    n_deferred: 2,
                    seed: 29,
                    ..Default::default()
                },
            )
            .unwrap();
            let out = e.generate_greedy(&[1, 2, 3], 4).unwrap();
            assert_eq!(out.len(), 4, "{preset:?}");
        }
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;
    use kt_model::ModelPreset;

    fn engine_with_gpu_experts(n_gpu: usize, seed: u64) -> HybridEngine {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_gpu_experts: n_gpu,
                seed,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn profile_records_activations() {
        let e = engine_with_gpu_experts(0, 41);
        let _ = e.forward(&[1, 2, 3, 4]).unwrap();
        let profile = e.expert_profile();
        let cfg = e.config().clone();
        // Every MoE layer saw tokens * top_k activations; dense layers none.
        for layer in 0..cfg.n_layers {
            let expect = if layer < cfg.n_dense_layers {
                0
            } else {
                4 * cfg.top_k as u64
            };
            assert_eq!(profile.total(layer), expect, "layer {layer}");
        }
    }

    #[test]
    fn placement_does_not_change_outputs() {
        // Hot-expert pinning is pure scheduling: generation must be
        // bit-identical with and without it.
        let baseline = engine_with_gpu_experts(0, 43);
        let expect = baseline.generate_greedy(&[5, 6, 7], 8).unwrap();

        let pinned = engine_with_gpu_experts(4, 43);
        // Profile on some traffic, then pin the hottest experts.
        let _ = pinned.generate_greedy(&[5, 6, 7], 4).unwrap();
        let n = pinned.refresh_placement();
        assert!(n > 0, "some experts must be pinned");
        pinned.reset();
        let got = pinned.generate_greedy(&[5, 6, 7], 8).unwrap();
        assert_eq!(expect, got);

        // And clearing the placement also preserves outputs.
        pinned.clear_placement();
        pinned.reset();
        let cleared = pinned.generate_greedy(&[5, 6, 7], 8).unwrap();
        assert_eq!(expect, cleared);
    }

    #[test]
    fn placement_combines_with_deferral() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let mk = |n_gpu: usize| {
            HybridEngine::random(
                &cfg,
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    n_gpu_experts: n_gpu,
                    n_deferred: 2,
                    seed: 47,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let plain = mk(0);
        let expect = plain.generate_greedy(&[9, 8], 6).unwrap();

        let pinned = mk(3);
        let _ = pinned.forward(&[9, 8]).unwrap();
        pinned.refresh_placement();
        pinned.reset();
        let got = pinned.generate_greedy(&[9, 8], 6).unwrap();
        // Deferral splits only the CPU-resident routing, so moving
        // experts to the GPU changes WHICH experts defer — outputs stay
        // finite and close but need not be identical.
        assert_eq!(got.len(), expect.len());
    }

    #[test]
    fn refresh_placement_picks_hottest() {
        let e = engine_with_gpu_experts(2, 53);
        let _ = e.forward(&[1, 2, 3, 4, 5, 6]).unwrap();
        e.refresh_placement();
        let profile = e.expert_profile();
        let cfg = e.config().clone();
        let layer = cfg.n_dense_layers; // first MoE layer
        let hottest = profile.hottest(layer, 2);
        assert_eq!(hottest.len(), 2);
        assert!(profile.count(layer, hottest[0]) >= profile.count(layer, hottest[1]));
    }
}

#[cfg(test)]
mod dynamic_placement_tests {
    use super::*;
    use kt_model::ModelPreset;

    fn build(
        preset: ModelPreset,
        policy: PlacementPolicy,
        cache_bytes: usize,
        seed: u64,
    ) -> HybridEngine {
        let cfg = preset.tiny_config();
        HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                placement: policy,
                expert_cache_bytes: cache_bytes,
                seed,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Prefill + `steps` greedy decode steps; every logits matrix as
    /// raw bits so equality below means bitwise identity, not float
    /// equality (which would conflate +0.0 and -0.0).
    fn run_trace(e: &HybridEngine, prompt: &[u32], steps: usize) -> Vec<Vec<u32>> {
        e.reset();
        let mut out = Vec::new();
        let l = e.forward(prompt).unwrap();
        let mut next = kt_model::model::argmax(l.row(l.rows() - 1));
        out.push(bits(&l));
        for _ in 0..steps {
            let l = e.forward(&[next]).unwrap();
            next = kt_model::model::argmax(l.row(0));
            out.push(bits(&l));
        }
        out
    }

    #[test]
    fn dynamic_placement_is_bitwise_identical_for_all_presets() {
        // Dynamic placement is pure scheduling: partitioning the
        // immediate routing by whole expert keeps every per-expert
        // token count (hence kernel class) identical, and the merge
        // folds buckets in the same serial expert order the CPU path
        // uses. Logits must match the static split bit for bit.
        for preset in ModelPreset::all() {
            let st = build(preset, PlacementPolicy::Static, 0, 71);
            let dy = build(preset, PlacementPolicy::Dynamic, 64 << 20, 71);
            let want = run_trace(&st, &[1, 2, 3], 6);
            let got = run_trace(&dy, &[1, 2, 3], 6);
            assert_eq!(want, got, "{preset:?}");
            assert!(st.expert_cache_stats().is_none(), "{preset:?}");
            let stats = dy.expert_cache_stats().expect("dynamic engine has a cache");
            assert!(stats.hits + stats.misses > 0, "{preset:?}: cache consulted");
        }
    }

    #[test]
    fn tiny_cache_budget_churns_without_changing_outputs() {
        // A budget of exactly one expert forces constant
        // admission-decline / eviction churn mid-sequence; outputs
        // must not care which experts happen to be resident.
        let st = build(ModelPreset::DeepSeekV3, PlacementPolicy::Static, 0, 73);
        let bytes = st.expert_weight_bytes().expect("model has routed experts");
        let dy = build(ModelPreset::DeepSeekV3, PlacementPolicy::Dynamic, bytes, 73);
        let want = run_trace(&st, &[4, 5, 6, 7], 8);
        let got = run_trace(&dy, &[4, 5, 6, 7], 8);
        assert_eq!(want, got);
        let stats = dy.expert_cache_stats().unwrap();
        assert!(stats.misses > 0, "tiny budget must miss");
        assert!(stats.resident_bytes <= bytes as u64);
        assert!(stats.resident_entries <= 1);
    }

    #[test]
    fn quantized_expert_bytes_drive_cache_accounting() {
        // The placement path must price and size experts by their
        // *stored* (post-quantization) bytes: an int4 expert is ~8x
        // smaller than F32, so a byte budget far below one F32 expert
        // still admits quantized experts — and outputs stay bitwise
        // identical to the static split at the same precision.
        let build_q = |policy: PlacementPolicy, cache_bytes: usize| {
            HybridEngine::random(
                &ModelPreset::DeepSeekV3.tiny_config(),
                EngineConfig {
                    n_cpu_workers: 2,
                    mode: SchedMode::AsyncGraph,
                    n_deferred: 2,
                    precision: PrecisionPolicy::experts(kt_tensor::WeightDtype::Int4 {
                        group: 8,
                    }),
                    placement: policy,
                    expert_cache_bytes: cache_bytes,
                    seed: 91,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let f32_engine = build(ModelPreset::DeepSeekV3, PlacementPolicy::Static, 0, 91);
        let f32_bytes = f32_engine.expert_weight_bytes().unwrap();
        let st = build_q(PlacementPolicy::Static, 0);
        let q_bytes = st.expert_weight_bytes().unwrap();
        // Group 8 is the largest group dividing the tiny dims, so the
        // scale overhead is maximal: 4 code bits + 4 scale bits per
        // weight = exactly a quarter of F32's 32.
        assert!(
            q_bytes * 4 <= f32_bytes,
            "int4 expert ({q_bytes} B) must be at most a quarter of F32 ({f32_bytes} B)"
        );
        assert_eq!(st.expert_weight_dtype().unwrap().name(), "int4");

        // Two quantized experts fit; not even one F32 expert would.
        let budget = 2 * q_bytes;
        assert!(budget < f32_bytes);
        let dy = build_q(PlacementPolicy::Dynamic, budget);
        let want = run_trace(&st, &[4, 5, 6], 8);
        let got = run_trace(&dy, &[4, 5, 6], 8);
        assert_eq!(want, got);
        let stats = dy.expert_cache_stats().unwrap();
        assert!(
            stats.insertions > 0,
            "quantized experts must be admitted under a sub-F32 budget"
        );
        assert_eq!(
            stats.resident_bytes % q_bytes as u64,
            0,
            "residency must be counted in stored (quantized) expert bytes"
        );
        assert!(stats.resident_bytes <= budget as u64);
    }

    #[test]
    fn dynamic_batched_decode_is_bitwise_identical() {
        // Concurrent decode rows share one MoE dispatch per layer, so
        // the dynamic partition sees multi-row routings here.
        let prompts: [&[u32]; 2] = [&[1, 2, 3], &[9, 8, 7, 6]];
        let run = |e: &HybridEngine| -> Vec<Vec<u32>> {
            e.reset();
            let mut seqs: Vec<BatchSeq> = prompts
                .iter()
                .map(|p| BatchSeq::prefill(e.fresh_cache(), p.to_vec()))
                .collect();
            let mut out = Vec::new();
            let logits = e.forward_batch(&mut seqs).unwrap();
            let mut next: Vec<u32> = logits
                .iter()
                .map(|l| {
                    let l = l.as_ref().expect("prefill returns logits");
                    out.push(bits(l));
                    kt_model::model::argmax(l.row(l.rows() - 1))
                })
                .collect();
            for _ in 0..5 {
                for (s, seq) in seqs.iter_mut().enumerate() {
                    seq.tokens = vec![next[s]];
                    seq.prefill = false;
                }
                let logits = e.forward_batch(&mut seqs).unwrap();
                for (s, l) in logits.iter().enumerate() {
                    let l = l.as_ref().unwrap();
                    out.push(bits(l));
                    next[s] = kt_model::model::argmax(l.row(0));
                }
            }
            out
        };
        for preset in [ModelPreset::DeepSeekV3, ModelPreset::Qwen2Moe] {
            let st = build(preset, PlacementPolicy::Static, 0, 79);
            let dy = build(preset, PlacementPolicy::Dynamic, 48 << 20, 79);
            assert_eq!(run(&st), run(&dy), "{preset:?}");
        }
    }

    #[test]
    fn routing_override_redirects_gating() {
        // The override hook (used by the placement bench to impose
        // skew) replaces the router's decision wholesale.
        let e = build(ModelPreset::DeepSeekV3, PlacementPolicy::Dynamic, 64 << 20, 83);
        let cfg = e.config().clone();
        let top_k = cfg.top_k;
        e.set_routing_override(move |_, rows| {
            Some(MoeRouting::new(
                (0..rows)
                    .map(|_| (0..top_k).map(|k| (k, 1.0 / top_k as f32)).collect())
                    .collect(),
            ))
        });
        let _ = e.forward(&[1, 2, 3]).unwrap();
        let profile = e.expert_profile();
        let layer = cfg.n_dense_layers; // first MoE layer
        assert!(profile.count(layer, 0) > 0, "forced expert 0 must be hit");
        for ex in top_k..cfg.n_routed_experts {
            assert_eq!(profile.count(layer, ex), 0, "expert {ex} not routed");
        }
        e.clear_routing_override();
        e.reset();
        assert!(e.forward(&[1, 2, 3]).is_ok(), "normal routing restored");
    }
}
