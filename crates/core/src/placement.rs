//! Placement plans: which module runs on which device.
//!
//! Mirrors §3.1's split: attention (highest arithmetic intensity),
//! shared experts, router, embeddings and the LM head live on the GPU;
//! routed experts live in CPU DRAM and execute on the CPU.

use std::collections::HashMap;

use kt_model::ModelConfig;

pub mod dynamic;

/// Execution device of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// GPU-resident (virtual GPU in this reproduction).
    Gpu,
    /// CPU-resident with CPU compute (computation offloading).
    Cpu,
}

/// A module placement plan.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// `(module path, device)` entries, one per placed module class.
    pub entries: Vec<(String, DeviceKind)>,
    /// Path → device index so `device_of` is O(1) on the hot path.
    index: HashMap<String, DeviceKind>,
}

impl PartialEq for PlacementPlan {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for PlacementPlan {}

impl PlacementPlan {
    /// Builds a plan from explicit entries. On duplicate paths the
    /// first entry wins, preserving the semantics of the old linear
    /// `find` scan.
    pub fn new(entries: Vec<(String, DeviceKind)>) -> Self {
        let mut index = HashMap::with_capacity(entries.len());
        for (p, d) in &entries {
            index.entry(p.clone()).or_insert(*d);
        }
        PlacementPlan { entries, index }
    }

    /// Builds the paper's default plan for a model config.
    pub fn for_model(cfg: &ModelConfig) -> Self {
        let mut entries = vec![
            ("model.embed_tokens".to_string(), DeviceKind::Gpu),
            ("lm_head".to_string(), DeviceKind::Gpu),
            ("model.norm".to_string(), DeviceKind::Gpu),
        ];
        for layer in 0..cfg.n_layers {
            entries.push((format!("model.layers.{layer}.self_attn"), DeviceKind::Gpu));
            if layer < cfg.n_dense_layers {
                entries.push((format!("model.layers.{layer}.mlp"), DeviceKind::Gpu));
            } else {
                entries.push((format!("model.layers.{layer}.mlp.gate"), DeviceKind::Gpu));
                if cfg.n_shared_experts > 0 {
                    entries.push((
                        format!("model.layers.{layer}.mlp.shared_experts"),
                        DeviceKind::Gpu,
                    ));
                }
                entries.push((format!("model.layers.{layer}.mlp.experts"), DeviceKind::Cpu));
            }
        }
        PlacementPlan::new(entries)
    }

    /// Device for a module path, if placed. O(1) via the index.
    pub fn device_of(&self, path: &str) -> Option<DeviceKind> {
        self.index.get(path).copied()
    }

    /// Count of modules placed on a device.
    pub fn count(&self, device: DeviceKind) -> usize {
        self.entries.iter().filter(|&&(_, d)| d == device).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    #[test]
    fn routed_experts_go_to_cpu_everything_else_gpu() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let plan = PlacementPlan::for_model(&cfg);
        assert_eq!(
            plan.device_of("model.layers.1.mlp.experts"),
            Some(DeviceKind::Cpu)
        );
        assert_eq!(
            plan.device_of("model.layers.1.self_attn"),
            Some(DeviceKind::Gpu)
        );
        assert_eq!(
            plan.device_of("model.layers.1.mlp.shared_experts"),
            Some(DeviceKind::Gpu)
        );
        assert_eq!(plan.device_of("lm_head"), Some(DeviceKind::Gpu));
        assert_eq!(plan.device_of("nonexistent"), None);
        // Exactly one CPU entry per MoE layer.
        assert_eq!(plan.count(DeviceKind::Cpu), cfg.n_moe_layers());
    }

    #[test]
    fn dense_layers_have_gpu_mlp() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config(); // 1 dense layer
        let plan = PlacementPlan::for_model(&cfg);
        assert_eq!(plan.device_of("model.layers.0.mlp"), Some(DeviceKind::Gpu));
        assert_eq!(plan.device_of("model.layers.0.mlp.experts"), None);
    }

    #[test]
    fn index_matches_entries_and_first_duplicate_wins() {
        let plan = PlacementPlan::new(vec![
            ("a".to_string(), DeviceKind::Cpu),
            ("a".to_string(), DeviceKind::Gpu),
            ("b".to_string(), DeviceKind::Gpu),
        ]);
        assert_eq!(plan.device_of("a"), Some(DeviceKind::Cpu));
        assert_eq!(plan.device_of("b"), Some(DeviceKind::Gpu));
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let plan = PlacementPlan::for_model(&cfg);
        for (p, d) in &plan.entries {
            assert_eq!(plan.device_of(p), Some(*d));
        }
    }

    #[test]
    fn qwen_has_no_dense_layers() {
        let cfg = ModelPreset::Qwen2Moe.tiny_config();
        let plan = PlacementPlan::for_model(&cfg);
        assert_eq!(plan.device_of("model.layers.0.mlp.experts"), Some(DeviceKind::Cpu));
    }
}
