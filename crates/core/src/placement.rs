//! Placement plans: which module runs on which device.
//!
//! Mirrors §3.1's split: attention (highest arithmetic intensity),
//! shared experts, router, embeddings and the LM head live on the GPU;
//! routed experts live in CPU DRAM and execute on the CPU.

use kt_model::ModelConfig;

/// Execution device of a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// GPU-resident (virtual GPU in this reproduction).
    Gpu,
    /// CPU-resident with CPU compute (computation offloading).
    Cpu,
}

/// A module placement plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// `(module path, device)` entries, one per placed module class.
    pub entries: Vec<(String, DeviceKind)>,
}

impl PlacementPlan {
    /// Builds the paper's default plan for a model config.
    pub fn for_model(cfg: &ModelConfig) -> Self {
        let mut entries = vec![
            ("model.embed_tokens".to_string(), DeviceKind::Gpu),
            ("lm_head".to_string(), DeviceKind::Gpu),
            ("model.norm".to_string(), DeviceKind::Gpu),
        ];
        for layer in 0..cfg.n_layers {
            entries.push((format!("model.layers.{layer}.self_attn"), DeviceKind::Gpu));
            if layer < cfg.n_dense_layers {
                entries.push((format!("model.layers.{layer}.mlp"), DeviceKind::Gpu));
            } else {
                entries.push((format!("model.layers.{layer}.mlp.gate"), DeviceKind::Gpu));
                if cfg.n_shared_experts > 0 {
                    entries.push((
                        format!("model.layers.{layer}.mlp.shared_experts"),
                        DeviceKind::Gpu,
                    ));
                }
                entries.push((format!("model.layers.{layer}.mlp.experts"), DeviceKind::Cpu));
            }
        }
        PlacementPlan { entries }
    }

    /// Device for a module path, if placed.
    pub fn device_of(&self, path: &str) -> Option<DeviceKind> {
        self.entries
            .iter()
            .find(|(p, _)| p == path)
            .map(|&(_, d)| d)
    }

    /// Count of modules placed on a device.
    pub fn count(&self, device: DeviceKind) -> usize {
        self.entries.iter().filter(|&&(_, d)| d == device).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_model::ModelPreset;

    #[test]
    fn routed_experts_go_to_cpu_everything_else_gpu() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config();
        let plan = PlacementPlan::for_model(&cfg);
        assert_eq!(
            plan.device_of("model.layers.1.mlp.experts"),
            Some(DeviceKind::Cpu)
        );
        assert_eq!(
            plan.device_of("model.layers.1.self_attn"),
            Some(DeviceKind::Gpu)
        );
        assert_eq!(
            plan.device_of("model.layers.1.mlp.shared_experts"),
            Some(DeviceKind::Gpu)
        );
        assert_eq!(plan.device_of("lm_head"), Some(DeviceKind::Gpu));
        assert_eq!(plan.device_of("nonexistent"), None);
        // Exactly one CPU entry per MoE layer.
        assert_eq!(plan.count(DeviceKind::Cpu), cfg.n_moe_layers());
    }

    #[test]
    fn dense_layers_have_gpu_mlp() {
        let cfg = ModelPreset::DeepSeekV3.tiny_config(); // 1 dense layer
        let plan = PlacementPlan::for_model(&cfg);
        assert_eq!(plan.device_of("model.layers.0.mlp"), Some(DeviceKind::Gpu));
        assert_eq!(plan.device_of("model.layers.0.mlp.experts"), None);
    }

    #[test]
    fn qwen_has_no_dense_layers() {
        let cfg = ModelPreset::Qwen2Moe.tiny_config();
        let plan = PlacementPlan::for_model(&cfg);
        assert_eq!(plan.device_of("model.layers.0.mlp.experts"), Some(DeviceKind::Cpu));
    }
}
