//! Expert-popularity profiling and hot-expert placement.
//!
//! §1: "for models without shared experts, popular experts can still be
//! identified via offline profiling, as done in Fiddler". The engine
//! records which routed experts each layer activates; a placement pass
//! then pins the hottest experts of every layer to the GPU, where they
//! execute alongside the shared experts instead of travelling to the
//! CPU backend. Placement is a pure scheduling decision — outputs are
//! bit-identical regardless of where an expert runs.

use kt_kernels::moe::MoeRouting;

/// Per-layer expert activation counts.
#[derive(Debug, Clone)]
pub struct ExpertProfile {
    counts: Vec<Vec<u64>>,
}

impl ExpertProfile {
    /// Creates an empty profile for `n_layers` layers of `n_experts`.
    pub fn new(n_layers: usize, n_experts: usize) -> Self {
        ExpertProfile {
            counts: vec![vec![0; n_experts]; n_layers],
        }
    }

    /// Number of layers tracked.
    pub fn n_layers(&self) -> usize {
        self.counts.len()
    }

    /// Records one routing decision for `layer`.
    pub fn record(&mut self, layer: usize, routing: &MoeRouting) {
        for assignment in &routing.assignments {
            for &(e, _) in assignment {
                if let Some(c) = self.counts.get_mut(layer).and_then(|l| l.get_mut(e)) {
                    *c += 1;
                }
            }
        }
    }

    /// Raw activation count of `(layer, expert)`.
    pub fn count(&self, layer: usize, expert: usize) -> u64 {
        self.counts[layer][expert]
    }

    /// Total activations recorded for `layer`.
    pub fn total(&self, layer: usize) -> u64 {
        self.counts[layer].iter().sum()
    }

    /// The `n` most-activated experts of `layer`, hottest first (ties
    /// broken by expert index for determinism).
    pub fn hottest(&self, layer: usize, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.counts[layer].len()).collect();
        idx.sort_by_key(|&e| (std::cmp::Reverse(self.counts[layer][e]), e));
        idx.truncate(n);
        idx
    }

    /// Herfindahl index of `layer`'s activation distribution: 1/E for a
    /// perfectly balanced router, approaching 1 under collapse. Useful
    /// for deciding whether popularity pinning is worthwhile.
    pub fn concentration(&self, layer: usize) -> f64 {
        let total = self.total(layer) as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.counts[layer]
            .iter()
            .map(|&c| {
                let f = c as f64 / total;
                f * f
            })
            .sum()
    }

    /// Merges another profile (e.g. from a second profiling shard).
    ///
    /// # Panics
    ///
    /// Panics on mismatched shapes (programming error).
    pub fn merge(&mut self, other: &ExpertProfile) {
        assert_eq!(self.counts.len(), other.counts.len(), "layer count");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            assert_eq!(a.len(), b.len(), "expert count");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Builds a per-layer hot-expert placement: the `n_gpu` hottest
    /// experts of each layer, as membership masks.
    pub fn placement_masks(&self, n_gpu: usize) -> Vec<Vec<bool>> {
        (0..self.counts.len())
            .map(|layer| {
                let mut mask = vec![false; self.counts[layer].len()];
                for e in self.hottest(layer, n_gpu) {
                    mask[e] = true;
                }
                mask
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing(pairs: &[usize]) -> MoeRouting {
        MoeRouting::new(vec![pairs.iter().map(|&e| (e, 1.0)).collect()])
    }

    #[test]
    fn records_and_counts() {
        let mut p = ExpertProfile::new(2, 4);
        p.record(0, &routing(&[0, 2]));
        p.record(0, &routing(&[2, 3]));
        p.record(1, &routing(&[1]));
        assert_eq!(p.count(0, 2), 2);
        assert_eq!(p.count(0, 1), 0);
        assert_eq!(p.total(0), 4);
        assert_eq!(p.total(1), 1);
    }

    #[test]
    fn out_of_range_records_are_ignored() {
        let mut p = ExpertProfile::new(1, 2);
        p.record(0, &routing(&[7]));
        p.record(5, &routing(&[0]));
        assert_eq!(p.total(0), 0);
    }

    #[test]
    fn hottest_orders_by_count_then_index() {
        let mut p = ExpertProfile::new(1, 4);
        p.record(0, &routing(&[3, 3, 1, 2]));
        p.record(0, &routing(&[3, 1]));
        assert_eq!(p.hottest(0, 2), vec![3, 1]);
        // Ties (experts 0 and 2 after another record) break by index.
        let mut q = ExpertProfile::new(1, 3);
        q.record(0, &routing(&[2, 0]));
        assert_eq!(q.hottest(0, 3), vec![0, 2, 1]);
    }

    #[test]
    fn concentration_detects_skew() {
        let mut balanced = ExpertProfile::new(1, 4);
        balanced.record(0, &routing(&[0, 1, 2, 3]));
        let mut skewed = ExpertProfile::new(1, 4);
        for _ in 0..4 {
            skewed.record(0, &routing(&[0]));
        }
        assert!((balanced.concentration(0) - 0.25).abs() < 1e-9);
        assert!((skewed.concentration(0) - 1.0).abs() < 1e-9);
        assert_eq!(ExpertProfile::new(1, 4).concentration(0), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ExpertProfile::new(1, 3);
        a.record(0, &routing(&[0]));
        let mut b = ExpertProfile::new(1, 3);
        b.record(0, &routing(&[0, 1]));
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    fn placement_masks_mark_hot_experts() {
        let mut p = ExpertProfile::new(2, 4);
        p.record(0, &routing(&[1, 1, 3]));
        p.record(1, &routing(&[0]));
        let masks = p.placement_masks(1);
        assert_eq!(masks[0], vec![false, true, false, false]);
        assert_eq!(masks[1], vec![true, false, false, false]);
        let none = p.placement_masks(0);
        assert!(none.iter().all(|m| m.iter().all(|&b| !b)));
    }
}
