//! Expert-popularity profiling, hot-expert placement, and serving
//! metrics.
//!
//! §1: "for models without shared experts, popular experts can still be
//! identified via offline profiling, as done in Fiddler". The engine
//! records which routed experts each layer activates; a placement pass
//! then pins the hottest experts of every layer to the GPU, where they
//! execute alongside the shared experts instead of travelling to the
//! CPU backend. Placement is a pure scheduling decision — outputs are
//! bit-identical regardless of where an expert runs.
//!
//! The serving layer records per-request latency ([`RequestMetrics`]:
//! queue wait, TTFT, inter-token gaps) and aggregate scheduler
//! behavior ([`ServeStats`]: request outcomes, queue depth, batch
//! occupancy) with the same plain-data style as [`ExpertProfile`].

use kt_kernels::moe::MoeRouting;

/// Per-request latency metrics recorded by the serving layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestMetrics {
    /// Time spent queued before the scheduler admitted the request
    /// (nanoseconds).
    pub queue_wait_ns: u64,
    /// Time from admission to the first emitted token (time to first
    /// token, nanoseconds). `None` when the request ended before
    /// producing a token.
    pub ttft_ns: Option<u64>,
    /// Inter-token latencies of every token after the first
    /// (nanoseconds).
    pub token_latencies_ns: Vec<u64>,
}

impl RequestMetrics {
    /// Tokens the request emitted.
    pub fn n_tokens(&self) -> usize {
        match self.ttft_ns {
            Some(_) => 1 + self.token_latencies_ns.len(),
            None => 0,
        }
    }

    /// Mean inter-token latency in nanoseconds (`None` with fewer than
    /// two tokens).
    pub fn mean_token_latency_ns(&self) -> Option<f64> {
        if self.token_latencies_ns.is_empty() {
            return None;
        }
        let sum: u64 = self.token_latencies_ns.iter().sum();
        Some(sum as f64 / self.token_latencies_ns.len() as f64)
    }

    /// Worst single inter-token latency in nanoseconds.
    pub fn max_token_latency_ns(&self) -> Option<u64> {
        self.token_latencies_ns.iter().copied().max()
    }
}

/// Aggregate scheduler statistics over a serving session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests cancelled by their client.
    pub cancelled: u64,
    /// Requests that failed with an engine error.
    pub failed: u64,
    /// Requests shed by the admission controller (negative predicted
    /// SLO slack; see `kt_serve::SloPolicy`).
    pub shed: u64,
    /// Resolved requests that missed their class's TTFT target (only
    /// counted when the server runs an SLO policy).
    pub slo_ttft_violations: u64,
    /// Resolved requests with at least one inter-token gap over their
    /// class's ITL target.
    pub slo_itl_violations: u64,
    /// Completed requests that met both their TTFT and ITL targets.
    pub slo_met: u64,
    /// Total tokens emitted across all requests.
    pub tokens_generated: u64,
    /// Continuous-batching steps executed.
    pub steps: u64,
    /// Sum over steps of the number of active sequences (mean batch
    /// occupancy = this / `steps`).
    pub occupancy_sum: u64,
    /// Sum over steps of the admission-queue depth observed at the
    /// start of the step (mean queue depth = this / `steps`).
    pub queue_depth_sum: u64,
    /// Deepest admission queue observed.
    pub peak_queue_depth: u64,
    /// Prefill chunks executed (a monolithic prefill counts as one
    /// chunk; a prompt split across steps counts once per step).
    pub prefill_chunks: u64,
    /// Prompt tokens fed through prefill chunks.
    pub prefill_tokens: u64,
    /// Scratch-arena bytes requested by step-workspace checkouts
    /// (engine hot path; see `HybridEngine::workspace_stats`).
    pub arena_bytes_requested: u64,
    /// Bytes served by reusing an existing arena buffer.
    pub arena_bytes_served: u64,
    /// Bytes served by fresh heap allocations. Flat across steady-state
    /// decode steps ⇒ the zero-allocation hot path is holding.
    pub arena_bytes_allocated: u64,
    /// Fresh heap allocations performed by the arenas.
    pub arena_allocations: u64,
    /// High-water mark of bytes held across all step arenas.
    pub arena_high_water_bytes: u64,
    /// Kernels launched individually on the virtual GPU (snapshot of
    /// `LaunchStats::kernel_launches`; see `ServeStats::set_launch`).
    pub gpu_kernel_launches: u64,
    /// Host-function callbacks executed in-stream.
    pub gpu_host_funcs: u64,
    /// Graph replays (each is one launch regardless of graph size).
    pub gpu_graph_replays: u64,
    /// Ops executed via graph replay (launch-free).
    pub gpu_graph_ops: u64,
    /// Simulated launch-latency nanoseconds charged on the device.
    pub gpu_launch_overhead_ns: u64,
    /// Nanoseconds the device spent executing ops.
    pub gpu_busy_ns: u64,
    /// KV-cache leases currently out (snapshot of pool occupancy; see
    /// [`ServeStats::set_pool`]).
    pub kv_leases_in_use: u64,
    /// Reset KV caches parked in the pool's free list.
    pub kv_leases_free: u64,
    /// High-water mark of concurrent KV-cache leases.
    pub kv_leases_peak: u64,
    /// Heap bytes retained by parked pool caches.
    pub kv_pooled_bytes: u64,
    /// KV pages the block allocator can hand out in total (snapshot of
    /// the paged pool; see [`ServeStats::set_pages`]). All zero when
    /// the server runs monolithic (flat) leases.
    pub kv_pages_total: u64,
    /// KV pages currently free in the allocator.
    pub kv_pages_free: u64,
    /// Allocated pages referenced by more than one holder (prefix
    /// sharing between the index and leases, or between leases).
    pub kv_pages_shared: u64,
    /// Pages' worth of KV rows currently swapped out to the host tier
    /// by preemption (maintained by the scheduler, not snapshotted:
    /// swapped rows live outside the allocator).
    pub kv_pages_swapped: u64,
    /// Sequences preempted with their pages swapped to the host tier.
    pub preempt_swap: u64,
    /// Sequences preempted with their pages dropped for recompute.
    pub preempt_recompute: u64,
    /// Prefix-cache lookups at admission (snapshot of the prefix
    /// cache's counters; see [`ServeStats::set_prefix`]).
    pub prefix_lookups: u64,
    /// Lookups that matched at least `min_prefix_len` tokens.
    pub prefix_hits: u64,
    /// Lookups that matched nothing reusable.
    pub prefix_misses: u64,
    /// Prompt tokens served from cached prefixes instead of prefill.
    pub prefix_hit_tokens: u64,
    /// Prefix segments frozen into the index.
    pub prefix_insertions: u64,
    /// Prefix segments evicted by the byte budget.
    pub prefix_evictions: u64,
    /// Bytes freed by prefix eviction.
    pub prefix_evicted_bytes: u64,
    /// Bytes currently resident in frozen prefix segments.
    pub prefix_resident_bytes: u64,
    /// Prefix segments currently resident.
    pub prefix_entries: u64,
    /// Expert-cache lookups that found the expert resident in vGPU
    /// memory (snapshot of the dynamic-placement expert cache; see
    /// [`ServeStats::set_expert_cache`]). All zero when the engine
    /// runs the static placement policy.
    pub expert_cache_hits: u64,
    /// Lookups for experts not resident (cold or evicted).
    pub expert_cache_misses: u64,
    /// Experts admitted into the cache.
    pub expert_cache_insertions: u64,
    /// Experts evicted to make room for higher-value ones.
    pub expert_cache_evictions: u64,
    /// Bytes freed by expert eviction.
    pub expert_cache_evicted_bytes: u64,
    /// Bytes currently held by resident experts.
    pub expert_cache_resident_bytes: u64,
    /// Experts currently resident.
    pub expert_cache_entries: u64,
    /// Stored bytes of one routed expert's packed weights (gauge; see
    /// [`ServeStats::set_weight_precision`]). Quantized experts show
    /// their post-quantization footprint — the bytes each decode-step
    /// GEMV streams and each PCIe upload pays. Zero for models without
    /// routed experts.
    pub expert_weight_bytes: u64,
    /// Short name of the routed experts' storage dtype ("f32", "bf16",
    /// "int8", "int4"); empty before the first snapshot.
    pub expert_weight_dtype: String,
}

impl ServeStats {
    /// Mean number of active sequences per step.
    pub fn mean_occupancy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.steps as f64
        }
    }

    /// Mean admission-queue depth per step.
    pub fn mean_queue_depth(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.steps as f64
        }
    }

    /// Requests resolved one way or another (completion, cancellation,
    /// failure, or shed — every submitted request ends in exactly one).
    pub fn resolved(&self) -> u64 {
        self.completed + self.cancelled + self.failed + self.shed
    }

    /// Overwrites the arena counters from an engine snapshot (the
    /// engine's counters are cumulative, so the snapshot replaces
    /// rather than accumulates).
    pub fn set_arena(&mut self, s: &kt_tensor::ArenaStats) {
        self.arena_bytes_requested = s.bytes_requested;
        self.arena_bytes_served = s.bytes_served;
        self.arena_bytes_allocated = s.bytes_allocated;
        self.arena_allocations = s.allocations;
        self.arena_high_water_bytes = s.high_water_bytes;
    }

    /// Overwrites the GPU launch counters from an engine snapshot
    /// (cumulative on the engine side, so replace, same as
    /// [`ServeStats::set_arena`]).
    pub fn set_launch(&mut self, s: &crate::vgpu::LaunchStats) {
        self.gpu_kernel_launches = s.kernel_launches;
        self.gpu_host_funcs = s.host_funcs;
        self.gpu_graph_replays = s.graph_replays;
        self.gpu_graph_ops = s.graph_ops;
        self.gpu_launch_overhead_ns = s.launch_overhead_ns;
        self.gpu_busy_ns = s.busy_ns;
    }

    /// Overwrites the KV-pool occupancy gauges from a pool snapshot
    /// (replace, not accumulate, same as [`ServeStats::set_arena`]).
    pub fn set_pool(&mut self, o: &kt_model::pool::PoolOccupancy) {
        self.kv_leases_in_use = o.in_use as u64;
        self.kv_leases_free = o.free as u64;
        self.kv_leases_peak = o.peak as u64;
        self.kv_pooled_bytes = o.pooled_bytes as u64;
    }

    /// Overwrites the page-allocator gauges from a paged-pool snapshot
    /// (replace, not accumulate, same as [`ServeStats::set_arena`]).
    /// `kv_pages_swapped` is *not* touched: swapped rows live outside
    /// the allocator, so the scheduler maintains that gauge directly.
    pub fn set_pages(&mut self, s: &kt_model::paged::PageStats) {
        self.kv_pages_total = s.total as u64;
        self.kv_pages_free = s.free as u64;
        self.kv_pages_shared = s.shared as u64;
    }

    /// Overwrites the prefix-cache counters from a cache snapshot
    /// (replace, not accumulate, same as [`ServeStats::set_arena`]).
    pub fn set_prefix(&mut self, s: &kt_model::prefix::PrefixStats) {
        self.prefix_lookups = s.lookups;
        self.prefix_hits = s.hits;
        self.prefix_misses = s.misses;
        self.prefix_hit_tokens = s.hit_tokens;
        self.prefix_insertions = s.insertions;
        self.prefix_evictions = s.evictions;
        self.prefix_evicted_bytes = s.evicted_bytes;
        self.prefix_resident_bytes = s.resident_bytes;
        self.prefix_entries = s.entries;
    }

    /// Overwrites the expert-cache counters from an engine snapshot
    /// (replace, not accumulate, same as [`ServeStats::set_arena`]).
    pub fn set_expert_cache(&mut self, s: &crate::placement::dynamic::ExpertCacheStats) {
        self.expert_cache_hits = s.hits;
        self.expert_cache_misses = s.misses;
        self.expert_cache_insertions = s.insertions;
        self.expert_cache_evictions = s.evictions;
        self.expert_cache_evicted_bytes = s.evicted_bytes;
        self.expert_cache_resident_bytes = s.resident_bytes;
        self.expert_cache_entries = s.resident_entries;
    }

    /// Overwrites the weight-precision gauges from an engine snapshot
    /// (replace, not accumulate, same as [`ServeStats::set_arena`]).
    pub fn set_weight_precision(&mut self, bytes: u64, dtype: &str) {
        self.expert_weight_bytes = bytes;
        self.expert_weight_dtype = dtype.to_string();
    }
}

/// Percentile of a latency sample set by the nearest-rank method
/// (p in [0, 100]; p=50 is the median, p=100 the maximum). Returns
/// `None` on an empty sample. Sorts a copy, so callers can pass raw
/// per-request samples straight from [`RequestMetrics`].
///
/// This is the *exact* path: use it when the full sample vector is
/// already in hand. Streaming aggregation goes through
/// `kt_trace::LogHistogram`, whose percentile answers within one log₂
/// bucket of this function's (asserted by a cross-check test below).
pub fn percentile_ns(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Per-layer expert activation counts.
#[derive(Debug, Clone)]
pub struct ExpertProfile {
    counts: Vec<Vec<u64>>,
}

impl ExpertProfile {
    /// Creates an empty profile for `n_layers` layers of `n_experts`.
    pub fn new(n_layers: usize, n_experts: usize) -> Self {
        ExpertProfile {
            counts: vec![vec![0; n_experts]; n_layers],
        }
    }

    /// Number of layers tracked.
    pub fn n_layers(&self) -> usize {
        self.counts.len()
    }

    /// Experts tracked per layer (0 for an empty profile).
    pub fn n_experts(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// Records one routing decision for `layer`.
    pub fn record(&mut self, layer: usize, routing: &MoeRouting) {
        for assignment in &routing.assignments {
            for &(e, _) in assignment {
                if let Some(c) = self.counts.get_mut(layer).and_then(|l| l.get_mut(e)) {
                    *c += 1;
                }
            }
        }
    }

    /// Raw activation count of `(layer, expert)`.
    pub fn count(&self, layer: usize, expert: usize) -> u64 {
        self.counts[layer][expert]
    }

    /// Total activations recorded for `layer`.
    pub fn total(&self, layer: usize) -> u64 {
        self.counts[layer].iter().sum()
    }

    /// The `n` most-activated experts of `layer`, hottest first (ties
    /// broken by expert index for determinism).
    pub fn hottest(&self, layer: usize, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.counts[layer].len()).collect();
        idx.sort_by_key(|&e| (std::cmp::Reverse(self.counts[layer][e]), e));
        idx.truncate(n);
        idx
    }

    /// Herfindahl index of `layer`'s activation distribution: 1/E for a
    /// perfectly balanced router, approaching 1 under collapse. Useful
    /// for deciding whether popularity pinning is worthwhile.
    pub fn concentration(&self, layer: usize) -> f64 {
        let total = self.total(layer) as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.counts[layer]
            .iter()
            .map(|&c| {
                let f = c as f64 / total;
                f * f
            })
            .sum()
    }

    /// Merges another profile (e.g. from a second profiling shard).
    ///
    /// # Panics
    ///
    /// Panics on mismatched shapes (programming error).
    pub fn merge(&mut self, other: &ExpertProfile) {
        assert_eq!(self.counts.len(), other.counts.len(), "layer count");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            assert_eq!(a.len(), b.len(), "expert count");
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
    }

    /// Builds a per-layer hot-expert placement: the `n_gpu` hottest
    /// experts of each layer, as membership masks.
    pub fn placement_masks(&self, n_gpu: usize) -> Vec<Vec<bool>> {
        (0..self.counts.len())
            .map(|layer| {
                let mut mask = vec![false; self.counts[layer].len()];
                for e in self.hottest(layer, n_gpu) {
                    mask[e] = true;
                }
                mask
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing(pairs: &[usize]) -> MoeRouting {
        MoeRouting::new(vec![pairs.iter().map(|&e| (e, 1.0)).collect()])
    }

    #[test]
    fn records_and_counts() {
        let mut p = ExpertProfile::new(2, 4);
        p.record(0, &routing(&[0, 2]));
        p.record(0, &routing(&[2, 3]));
        p.record(1, &routing(&[1]));
        assert_eq!(p.count(0, 2), 2);
        assert_eq!(p.count(0, 1), 0);
        assert_eq!(p.total(0), 4);
        assert_eq!(p.total(1), 1);
    }

    #[test]
    fn out_of_range_records_are_ignored() {
        let mut p = ExpertProfile::new(1, 2);
        p.record(0, &routing(&[7]));
        p.record(5, &routing(&[0]));
        assert_eq!(p.total(0), 0);
    }

    #[test]
    fn hottest_orders_by_count_then_index() {
        let mut p = ExpertProfile::new(1, 4);
        p.record(0, &routing(&[3, 3, 1, 2]));
        p.record(0, &routing(&[3, 1]));
        assert_eq!(p.hottest(0, 2), vec![3, 1]);
        // Ties (experts 0 and 2 after another record) break by index.
        let mut q = ExpertProfile::new(1, 3);
        q.record(0, &routing(&[2, 0]));
        assert_eq!(q.hottest(0, 3), vec![0, 2, 1]);
    }

    #[test]
    fn concentration_detects_skew() {
        let mut balanced = ExpertProfile::new(1, 4);
        balanced.record(0, &routing(&[0, 1, 2, 3]));
        let mut skewed = ExpertProfile::new(1, 4);
        for _ in 0..4 {
            skewed.record(0, &routing(&[0]));
        }
        assert!((balanced.concentration(0) - 0.25).abs() < 1e-9);
        assert!((skewed.concentration(0) - 1.0).abs() < 1e-9);
        assert_eq!(ExpertProfile::new(1, 4).concentration(0), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ExpertProfile::new(1, 3);
        a.record(0, &routing(&[0]));
        let mut b = ExpertProfile::new(1, 3);
        b.record(0, &routing(&[0, 1]));
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.count(0, 1), 1);
    }

    #[test]
    fn request_metrics_token_accounting() {
        let none = RequestMetrics::default();
        assert_eq!(none.n_tokens(), 0);
        assert_eq!(none.mean_token_latency_ns(), None);

        let m = RequestMetrics {
            queue_wait_ns: 10,
            ttft_ns: Some(100),
            token_latencies_ns: vec![20, 40, 60],
        };
        assert_eq!(m.n_tokens(), 4);
        assert_eq!(m.mean_token_latency_ns(), Some(40.0));
        assert_eq!(m.max_token_latency_ns(), Some(60));
    }

    #[test]
    fn serve_stats_means() {
        let mut s = ServeStats::default();
        assert_eq!(s.mean_occupancy(), 0.0);
        s.steps = 4;
        s.occupancy_sum = 10;
        s.queue_depth_sum = 2;
        s.completed = 2;
        s.failed = 1;
        s.shed = 2;
        assert!((s.mean_occupancy() - 2.5).abs() < 1e-12);
        assert!((s.mean_queue_depth() - 0.5).abs() < 1e-12);
        assert_eq!(s.resolved(), 5, "shed requests count as resolved");
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile_ns(&[], 50.0), None);
        assert_eq!(percentile_ns(&[7], 50.0), Some(7));
        let s = [50, 10, 40, 20, 30];
        assert_eq!(percentile_ns(&s, 0.0), Some(10));
        assert_eq!(percentile_ns(&s, 50.0), Some(30));
        assert_eq!(percentile_ns(&s, 90.0), Some(50));
        assert_eq!(percentile_ns(&s, 100.0), Some(50));
        // p99 over 200 samples picks the 198th order statistic.
        let big: Vec<u64> = (1..=200).collect();
        assert_eq!(percentile_ns(&big, 99.0), Some(198));
    }

    #[test]
    fn histogram_percentile_within_one_bucket_of_exact() {
        use kt_trace::LogHistogram;
        // Deterministic pseudo-random latencies spanning ~6 decades.
        let mut samples: Vec<u64> = Vec::with_capacity(500);
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x % (10u64.pow((i % 6) as u32 + 3)));
        }
        let mut h = LogHistogram::new();
        h.record_all(samples.iter().copied());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = percentile_ns(&samples, p).unwrap();
            let approx = h.percentile(p).unwrap();
            assert_eq!(
                LogHistogram::bucket_index(approx),
                LogHistogram::bucket_index(exact),
                "p={p}: histogram {approx} vs exact {exact}"
            );
        }
        assert_eq!(
            h.percentile(100.0),
            percentile_ns(&samples, 100.0),
            "the maximum is exact"
        );
    }

    #[test]
    fn set_launch_overwrites_gpu_counters() {
        let mut s = ServeStats::default();
        let launch = crate::vgpu::LaunchStats {
            kernel_launches: 3,
            host_funcs: 4,
            graph_replays: 5,
            graph_ops: 60,
            launch_overhead_ns: 700,
            busy_ns: 800,
        };
        s.set_launch(&launch);
        s.set_launch(&launch); // replace, not accumulate
        assert_eq!(s.gpu_kernel_launches, 3);
        assert_eq!(s.gpu_host_funcs, 4);
        assert_eq!(s.gpu_graph_replays, 5);
        assert_eq!(s.gpu_graph_ops, 60);
        assert_eq!(s.gpu_launch_overhead_ns, 700);
        assert_eq!(s.gpu_busy_ns, 800);
    }

    #[test]
    fn set_pool_and_set_prefix_overwrite_snapshots() {
        let mut s = ServeStats::default();
        let occ = kt_model::pool::PoolOccupancy {
            in_use: 2,
            free: 3,
            peak: 4,
            constructed: 5,
            pooled_bytes: 4096,
        };
        s.set_pool(&occ);
        s.set_pool(&occ); // replace, not accumulate
        assert_eq!(s.kv_leases_in_use, 2);
        assert_eq!(s.kv_leases_free, 3);
        assert_eq!(s.kv_leases_peak, 4);
        assert_eq!(s.kv_pooled_bytes, 4096);

        let px = kt_model::prefix::PrefixStats {
            lookups: 10,
            hits: 7,
            misses: 3,
            hit_tokens: 700,
            insertions: 5,
            evictions: 2,
            evicted_bytes: 160,
            resident_bytes: 240,
            entries: 3,
        };
        s.set_prefix(&px);
        s.set_prefix(&px);
        assert_eq!(s.prefix_lookups, 10);
        assert_eq!(s.prefix_hits, 7);
        assert_eq!(s.prefix_misses, 3);
        assert_eq!(s.prefix_hit_tokens, 700);
        assert_eq!(s.prefix_insertions, 5);
        assert_eq!(s.prefix_evictions, 2);
        assert_eq!(s.prefix_evicted_bytes, 160);
        assert_eq!(s.prefix_resident_bytes, 240);
        assert_eq!(s.prefix_entries, 3);
    }

    #[test]
    fn set_pages_overwrites_allocator_gauges_but_not_swapped() {
        let mut s = ServeStats { kv_pages_swapped: 7, ..Default::default() };
        let ps = kt_model::paged::PageStats {
            total: 64,
            allocated: 40,
            free: 24,
            peak: 48,
            shared: 6,
            alloc_total: 100,
            freed_total: 60,
            exhausted_total: 2,
        };
        s.set_pages(&ps);
        s.set_pages(&ps); // replace, not accumulate
        assert_eq!(s.kv_pages_total, 64);
        assert_eq!(s.kv_pages_free, 24);
        assert_eq!(s.kv_pages_shared, 6);
        assert_eq!(s.kv_pages_swapped, 7, "scheduler-owned gauge untouched");
    }

    #[test]
    fn set_expert_cache_overwrites_snapshot() {
        let mut s = ServeStats::default();
        let st = crate::placement::dynamic::ExpertCacheStats {
            hits: 9,
            misses: 4,
            insertions: 6,
            evictions: 2,
            evicted_bytes: 512,
            resident_bytes: 1024,
            resident_entries: 4,
        };
        s.set_expert_cache(&st);
        s.set_expert_cache(&st); // replace, not accumulate
        assert_eq!(s.expert_cache_hits, 9);
        assert_eq!(s.expert_cache_misses, 4);
        assert_eq!(s.expert_cache_insertions, 6);
        assert_eq!(s.expert_cache_evictions, 2);
        assert_eq!(s.expert_cache_evicted_bytes, 512);
        assert_eq!(s.expert_cache_resident_bytes, 1024);
        assert_eq!(s.expert_cache_entries, 4);
    }

    #[test]
    fn placement_masks_mark_hot_experts() {
        let mut p = ExpertProfile::new(2, 4);
        p.record(0, &routing(&[1, 1, 3]));
        p.record(1, &routing(&[0]));
        let masks = p.placement_masks(1);
        assert_eq!(masks[0], vec![false, true, false, false]);
        assert_eq!(masks[1], vec![true, false, false, false]);
        let none = p.placement_masks(0);
        assert!(none.iter().all(|m| m.iter().all(|&b| !b)));
    }
}
