//! Engine-level property test for shared-prefix KV reuse: a batch that
//! prefills only the *uncached suffix* of a prompt on a prefix-seeded
//! cache must produce **bitwise** the same logits and final cache state
//! (including the MLA decoded-row memo) as a batch that cold-prefills
//! the whole prompt — while a concurrent decode row rides in both
//! batches, pinning that seeding one sequence cannot perturb another.
//!
//! This is the end-to-end contract the serving layer's warm-admission
//! path stands on. The model-layer proptests next door in `kt-model`
//! cover every store flavor (flat and offloaded) per attention kind;
//! here the full engine runs — routing, shared/routed experts, expert
//! deferral, the LM head — over both tiny presets (MLA and GQA) and
//! every expert weight dtype, with `Backend::TiledOnly` so expert
//! GEMMs are invariant to batch composition.

use kt_core::{BatchSeq, EngineConfig, HybridEngine, SchedMode};
use kt_kernels::dispatch::Backend;
use kt_model::prefix::{PrefixCache, PrefixCacheConfig};
use kt_model::{KvCache, ModelPreset};
use kt_tensor::{PrecisionPolicy, WeightDtype};
use proptest::prelude::*;

fn dtype_strategy() -> impl Strategy<Value = WeightDtype> {
    prop_oneof![
        Just(WeightDtype::F32),
        Just(WeightDtype::Bf16),
        Just(WeightDtype::Int8 { group: 8 }),
        Just(WeightDtype::Int4 { group: 8 }),
    ]
}

/// Asserts two multi-layer caches are bitwise identical, memo included.
fn assert_same_cache(a: &KvCache, b: &KvCache) {
    assert_eq!(a.n_layers(), b.n_layers());
    for i in 0..a.n_layers() {
        let (la, lb) = (a.layer(i), b.layer(i));
        assert_eq!(la.len(), lb.len(), "layer {i} length diverged");
        for pos in 0..la.len() {
            assert_eq!(la.k_row(pos), lb.k_row(pos), "layer {i} k row {pos}");
            assert_eq!(la.v_row(pos), lb.v_row(pos), "layer {i} v row {pos}");
        }
        assert_eq!(la.memo_len(), lb.memo_len(), "layer {i} memo length");
        for pos in 0..la.memo_len() {
            assert_eq!(la.memo_row(pos), lb.memo_row(pos), "layer {i} memo row {pos}");
        }
    }
}

proptest! {
    // Each case builds a full (tiny) engine; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn prefix_seeded_batch_logits_are_bitwise_identical_to_cold_prefill(
        seed in 0u64..100,
        prompt_len in 4usize..14,
        split_raw in 1usize..64,
        dtype in dtype_strategy(),
        mla in any::<bool>(),
    ) {
        let preset = if mla { ModelPreset::DeepSeekV3 } else { ModelPreset::Qwen2Moe };
        let cfg = preset.tiny_config();
        let engine = HybridEngine::random(
            &cfg,
            EngineConfig {
                n_cpu_workers: 2,
                mode: SchedMode::AsyncGraph,
                n_deferred: 2,
                precision: PrecisionPolicy::experts(dtype),
                backend: Backend::TiledOnly,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        let m = 1 + split_raw % (prompt_len - 1); // seeded prefix, 1..prompt_len
        let prompt: Vec<u32> =
            (0..prompt_len).map(|i| ((i as u64 * 31 + seed * 7) % 256) as u32).collect();

        // The concurrent decode row's own history, shared bitwise by
        // both runs (KvCache is a deep clone).
        let mut setup = vec![BatchSeq::prefill(engine.fresh_cache(), vec![9, 17, 23])];
        engine.forward_batch(&mut setup).unwrap();
        let d_cache = setup.remove(0).cache;

        // Cold: whole prompt in one prefill, decode row alongside.
        let mut cold_batch = vec![
            BatchSeq::prefill(engine.fresh_cache(), prompt.clone()),
            BatchSeq::decode(d_cache.clone(), 7),
        ];
        let cold = engine.forward_batch(&mut cold_batch).unwrap();
        let cold_prefill = cold[0].as_ref().unwrap();
        let cold_decode = cold[1].as_ref().unwrap();
        let cold_cache = std::mem::replace(&mut cold_batch[0].cache, KvCache::new(&[], 0));
        let cold_d_cache = std::mem::replace(&mut cold_batch[1].cache, KvCache::new(&[], 0));

        // Freeze the first m positions of the cold cache and seed a
        // fresh lease-alike from the index, exactly as admission does.
        let px = PrefixCache::new(PrefixCacheConfig {
            capacity_bytes: 32 << 20,
            min_prefix_len: 1,
        });
        px.insert(&prompt[..m], &cold_cache);
        let mat = px.lookup(&prompt).expect("inserted prefix must hit");
        prop_assert_eq!(mat.len(), m);
        let mut warm_cache = engine.fresh_cache();
        mat.seed_into(&mut warm_cache).unwrap();
        // The engine's cache invariant check accepts the seeded cache
        // as a legal partially-prefilled one.
        engine.validate_cache(&warm_cache).unwrap();

        // Warm: only the uncached suffix prefills; same decode row.
        let mut warm_batch = vec![
            BatchSeq::prefill(warm_cache, prompt[m..].to_vec()),
            BatchSeq::decode(d_cache.clone(), 7),
        ];
        let warm = engine.forward_batch(&mut warm_batch).unwrap();
        let warm_prefill = warm[0].as_ref().unwrap();
        let warm_decode = warm[1].as_ref().unwrap();

        // Suffix logits match the cold run's suffix rows bit for bit.
        prop_assert_eq!(warm_prefill.rows(), prompt_len - m);
        for t in 0..prompt_len - m {
            prop_assert_eq!(
                warm_prefill.row(t),
                cold_prefill.row(m + t),
                "suffix logits row {} diverged (split {}/{}, {})",
                t, m, prompt_len, cfg.name
            );
        }
        // The concurrent decode row is untouched by how its batchmate
        // was seeded.
        prop_assert_eq!(warm_decode.as_slice(), cold_decode.as_slice());

        // Final KV state (rows and memo) is bitwise identical, for the
        // seeded sequence and the decode row alike.
        assert_same_cache(&cold_cache, &warm_batch[0].cache);
        assert_same_cache(&cold_d_cache, &warm_batch[1].cache);
    }
}
