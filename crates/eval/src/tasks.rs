//! Synthetic benchmark tasks.
//!
//! Four seeded task families stand in for the paper's four benchmark
//! families (code generation, program synthesis, math reasoning,
//! commonsense reasoning). Each is a classification problem hard enough
//! that an MoE net must actually use its experts, and each is fully
//! deterministic given its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Task family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Gaussian clusters (linear-ish decision regions).
    Blobs,
    /// XOR of sign quadrants in random 2D subspaces (non-linear).
    Xor,
    /// Classify `(a + b) mod C` from two one-hot encoded operands.
    ModSum,
    /// Concentric radial bands (requires norm-like features).
    Bands,
}

impl TaskKind {
    /// All task families.
    pub fn all() -> [TaskKind; 4] {
        [TaskKind::Blobs, TaskKind::Xor, TaskKind::ModSum, TaskKind::Bands]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Blobs => "blobs",
            TaskKind::Xor => "xor",
            TaskKind::ModSum => "modsum",
            TaskKind::Bands => "bands",
        }
    }
}

/// A dataset: feature vectors with integer labels.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task family.
    pub kind: TaskKind,
    /// Input dimensionality.
    pub dim: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Training examples.
    pub train: Vec<(Vec<f32>, usize)>,
    /// Held-out test examples.
    pub test: Vec<(Vec<f32>, usize)>,
}

impl Task {
    /// Generates a task with `n_train`/`n_test` examples.
    pub fn generate(kind: TaskKind, dim: usize, n_train: usize, n_test: usize, seed: u64) -> Task {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_classes = match kind {
            TaskKind::Blobs => 6,
            TaskKind::Xor => 2,
            TaskKind::ModSum => 8,
            TaskKind::Bands => 4,
        };
        let gen = |rng: &mut StdRng, n: usize| -> Vec<(Vec<f32>, usize)> {
            (0..n).map(|_| sample(kind, dim, n_classes, rng)).collect()
        };
        // Fixed task structure (centers, subspaces) must be shared by
        // train and test: derive it from a child RNG inside `sample`
        // via deterministic per-kind construction below.
        let train = gen(&mut rng, n_train);
        let test = gen(&mut rng, n_test);
        Task {
            kind,
            dim,
            n_classes,
            train,
            test,
        }
    }
}

/// Deterministic class center for (kind-specific) structure: a fixed
/// pseudo-random unit-ish vector per (class, dim) independent of the
/// sampling RNG.
fn center(class: usize, dim: usize) -> Vec<f32> {
    let mut h = 0x9E3779B97F4A7C15u64 ^ (class as u64).wrapping_mul(0xD1B54A32D192ED03);
    (0..dim)
        .map(|i| {
            h ^= (i as u64).wrapping_mul(0x2545F4914F6CDD1D);
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (((h >> 33) as f32 / (1u64 << 31) as f32) - 1.0) * 2.0
        })
        .collect()
}

fn sample(kind: TaskKind, dim: usize, n_classes: usize, rng: &mut StdRng) -> (Vec<f32>, usize) {
    match kind {
        TaskKind::Blobs => {
            let class = rng.gen_range(0..n_classes);
            let c = center(class, dim);
            let x = c
                .iter()
                .map(|&v| v + rng.gen_range(-0.6f32..0.6))
                .collect();
            (x, class)
        }
        TaskKind::Xor => {
            // Label = XOR of the signs of two fixed random directions.
            let d1 = center(101, dim);
            let d2 = center(202, dim);
            let mut x: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            // Re-scale along the two key directions to sharpen signal.
            let p1: f32 = x.iter().zip(&d1).map(|(a, b)| a * b).sum();
            let p2: f32 = x.iter().zip(&d2).map(|(a, b)| a * b).sum();
            let label = usize::from((p1 > 0.0) ^ (p2 > 0.0));
            for (xi, (a, b)) in x.iter_mut().zip(d1.iter().zip(&d2)) {
                *xi += 0.3 * p1.signum() * a + 0.3 * p2.signum() * b;
            }
            (x, label)
        }
        TaskKind::ModSum => {
            let half = dim / 2;
            let a = rng.gen_range(0..n_classes);
            let b = rng.gen_range(0..n_classes);
            let mut x = vec![0.0f32; dim];
            // One-hot-ish encodings with noise.
            x[a % half] = 1.0;
            x[half + (b % half)] = 1.0;
            for v in x.iter_mut() {
                *v += rng.gen_range(-0.1f32..0.1);
            }
            ((x), (a + b) % n_classes)
        }
        TaskKind::Bands => {
            // Radius determines the class band.
            let class = rng.gen_range(0..n_classes);
            let target_r = 0.5 + class as f32;
            let mut x: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            let scale = (target_r + rng.gen_range(-0.2f32..0.2)) / norm;
            for v in x.iter_mut() {
                *v *= scale;
            }
            (x, class)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Task::generate(TaskKind::Blobs, 16, 50, 20, 7);
        let b = Task::generate(TaskKind::Blobs, 16, 50, 20, 7);
        assert_eq!(a.train[0].0, b.train[0].0);
        assert_eq!(a.test[19].1, b.test[19].1);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Task::generate(TaskKind::Xor, 16, 50, 20, 1);
        let b = Task::generate(TaskKind::Xor, 16, 50, 20, 2);
        assert_ne!(a.train[0].0, b.train[0].0);
    }

    #[test]
    fn shapes_and_labels_are_valid() {
        for kind in TaskKind::all() {
            let t = Task::generate(kind, 16, 100, 40, 3);
            assert_eq!(t.train.len(), 100);
            assert_eq!(t.test.len(), 40);
            for (x, y) in t.train.iter().chain(&t.test) {
                assert_eq!(x.len(), 16, "{kind:?}");
                assert!(*y < t.n_classes, "{kind:?}");
                assert!(x.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn all_classes_are_represented() {
        for kind in TaskKind::all() {
            let t = Task::generate(kind, 16, 400, 100, 5);
            let mut seen = vec![false; t.n_classes];
            for (_, y) in &t.train {
                seen[*y] = true;
            }
            assert!(seen.iter().all(|&s| s), "{kind:?}: missing classes");
        }
    }

    #[test]
    fn blobs_are_roughly_separable() {
        // Nearest-centroid should already do much better than chance,
        // confirming the labels carry signal.
        let t = Task::generate(TaskKind::Blobs, 16, 200, 200, 9);
        let mut correct = 0;
        for (x, y) in &t.test {
            let mut best = (f32::INFINITY, 0usize);
            for c in 0..t.n_classes {
                let cen = center(c, 16);
                let d: f32 = x.iter().zip(&cen).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 == *y {
                correct += 1;
            }
        }
        let acc = correct as f32 / t.test.len() as f32;
        assert!(acc > 0.7, "nearest-centroid acc={acc}");
    }
}
