//! Evaluation metrics.

use crate::net::{EvalMode, MoeNet};

/// Classification accuracy of `net` on `data` under `mode`.
pub fn accuracy(net: &MoeNet, data: &[(Vec<f32>, usize)], mode: EvalMode) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .iter()
        .filter(|(x, y)| net.predict(x, mode) == *y)
        .count();
    correct as f64 / data.len() as f64
}

/// Softmax of logits (f64 accumulation).
fn softmax64(logits: &[f32]) -> Vec<f64> {
    let max = logits.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v)) as f64;
    let exps: Vec<f64> = logits.iter().map(|&v| ((v as f64) - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// KL divergence `KL(p || q)` between the softmax distributions of two
/// logit vectors — the distributional distance used for the
/// logit-divergence study.
pub fn kl_divergence(p_logits: &[f32], q_logits: &[f32]) -> f64 {
    assert_eq!(p_logits.len(), q_logits.len());
    let p = softmax64(p_logits);
    let q = softmax64(q_logits);
    p.iter()
        .zip(&q)
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi.max(1e-12)).ln()
            }
        })
        .sum()
}

/// Whether two logit vectors agree on the argmax (greedy-decoding
/// agreement).
pub fn top1_agreement(a: &[f32], b: &[f32]) -> bool {
    let am = a
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(y.1))
        .map(|(i, _)| i);
    let bm = b
        .iter()
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(y.1))
        .map(|(i, _)| i);
    am == bm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetConfig;

    #[test]
    fn kl_of_identical_is_zero() {
        let l = vec![0.5f32, -1.0, 2.0];
        assert!(kl_divergence(&l, &l).abs() < 1e-12);
    }

    #[test]
    fn kl_grows_with_perturbation() {
        let l = vec![0.5f32, -1.0, 2.0];
        let small = vec![0.6f32, -1.0, 2.0];
        let big = vec![2.5f32, -1.0, 0.0];
        assert!(kl_divergence(&l, &small) < kl_divergence(&l, &big));
        assert!(kl_divergence(&l, &big) > 0.0);
    }

    #[test]
    fn top1_agreement_checks_argmax() {
        assert!(top1_agreement(&[1.0, 3.0], &[0.0, 10.0]));
        assert!(!top1_agreement(&[1.0, 3.0], &[5.0, 3.0]));
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let net = MoeNet::random(
            NetConfig {
                input_dim: 4,
                dim: 6,
                hidden: 4,
                n_blocks: 1,
                n_experts: 4,
                top_k: 2,
                n_classes: 2,
            },
            1,
        );
        let x = vec![0.5f32; 4];
        let predicted = net.predict(&x, EvalMode::Standard);
        let data = vec![(x.clone(), predicted), (x, 1 - predicted)];
        assert!((accuracy(&net, &data, EvalMode::Standard) - 0.5).abs() < 1e-9);
        assert_eq!(accuracy(&net, &[], EvalMode::Standard), 0.0);
    }
}
