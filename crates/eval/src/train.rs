//! Minibatch SGD training with manual backprop through top-k routing.
//!
//! Gradients flow through the selected experts and the gate softmax
//! (straight-through on the discrete top-k selection, the standard MoE
//! training recipe), with an importance-regularization term pushing the
//! gate toward balanced expert usage — small MoEs otherwise collapse
//! onto a couple of experts and the deferral study becomes degenerate.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::net::{matvec_acc, matvec_t_acc, rms_norm, rms_norm_backward, softmax, topk_indices, MoeNet};
use crate::tasks::Task;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Passes over the training set.
    pub epochs: usize,
    /// Minibatch size (gradients are averaged).
    pub batch: usize,
    /// Importance-regularization coefficient (0 disables).
    pub balance_coef: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 0.05,
            epochs: 20,
            batch: 16,
            balance_coef: 0.01,
            seed: 0,
        }
    }
}

/// Per-parameter gradient buffers (same shapes as the net).
struct Grads {
    input_w: Vec<f32>,
    gate: Vec<Vec<f32>>,
    w1: Vec<Vec<Vec<f32>>>,
    w2: Vec<Vec<Vec<f32>>>,
    head_w: Vec<f32>,
}

impl Grads {
    fn zeros(net: &MoeNet) -> Self {
        Grads {
            input_w: vec![0.0; net.input_w.len()],
            gate: net.blocks.iter().map(|b| vec![0.0; b.gate.len()]).collect(),
            w1: net
                .blocks
                .iter()
                .map(|b| b.w1.iter().map(|m| vec![0.0; m.len()]).collect())
                .collect(),
            w2: net
                .blocks
                .iter()
                .map(|b| b.w2.iter().map(|m| vec![0.0; m.len()]).collect())
                .collect(),
            head_w: vec![0.0; net.head_w.len()],
        }
    }
}

/// Forward caches for one example.
struct Caches {
    /// Block inputs (`n_blocks + 1` entries; last is the head input).
    xs: Vec<Vec<f32>>,
    /// Normalized block inputs and their rms values.
    norms: Vec<(Vec<f32>, f32)>,
    /// Gate probabilities per block.
    probs: Vec<Vec<f32>>,
    /// Selected experts per block.
    sel: Vec<Vec<usize>>,
    /// Pre-activation hidden vectors per (block, selected expert).
    pre: Vec<Vec<Vec<f32>>>,
    /// Expert outputs per (block, selected expert).
    eout: Vec<Vec<Vec<f32>>>,
    /// Class probabilities.
    class_probs: Vec<f32>,
}

/// Forward in Standard mode, caching everything backprop needs.
fn forward_cached(net: &MoeNet, input: &[f32]) -> Caches {
    let cfg = net.config();
    let mut x = vec![0.0f32; cfg.dim];
    matvec_acc(&net.input_w, input, &mut x, 1.0);
    let mut xs = vec![x.clone()];
    let mut norms = Vec::new();
    let mut probs = Vec::new();
    let mut sel = Vec::new();
    let mut pre_all = Vec::new();
    let mut eout_all = Vec::new();

    for block in &net.blocks {
        let (n, r) = rms_norm(&x);
        let p = net.gate_probs(block, &n);
        let chosen = topk_indices(&p, cfg.top_k);
        let mut pres = Vec::with_capacity(chosen.len());
        let mut eouts = Vec::with_capacity(chosen.len());
        let mut delta = vec![0.0f32; cfg.dim];
        for &e in &chosen {
            let mut pre = vec![0.0f32; cfg.hidden];
            matvec_acc(&block.w1[e], &n, &mut pre, 1.0);
            let mut h = pre.clone();
            for v in &mut h {
                *v = v.max(0.0);
            }
            let mut out = vec![0.0f32; cfg.dim];
            matvec_acc(&block.w2[e], &h, &mut out, 1.0);
            for (d, o) in delta.iter_mut().zip(&out) {
                *d += p[e] * o;
            }
            pres.push(pre);
            eouts.push(out);
        }
        for (xv, d) in x.iter_mut().zip(&delta) {
            *xv += d;
        }
        probs.push(p);
        sel.push(chosen);
        pre_all.push(pres);
        eout_all.push(eouts);
        norms.push((n, r));
        xs.push(x.clone());
    }

    let mut logits = vec![0.0f32; cfg.n_classes];
    matvec_acc(&net.head_w, &x, &mut logits, 1.0);
    softmax(&mut logits);
    Caches {
        xs,
        norms,
        probs,
        sel,
        pre: pre_all,
        eout: eout_all,
        class_probs: logits,
    }
}

/// Backprop one example into `g`; returns the cross-entropy loss.
fn backward(net: &MoeNet, input: &[f32], label: usize, balance_coef: f32, g: &mut Grads) -> f32 {
    let cfg = *net.config();
    let c = forward_cached(net, input);
    let loss = -(c.class_probs[label].max(1e-9)).ln();

    // Head: dlogits = probs - onehot.
    let mut dlogits = c.class_probs.clone();
    dlogits[label] -= 1.0;
    let x_last = &c.xs[cfg.n_blocks];
    for (r, &dl) in dlogits.iter().enumerate() {
        let row = &mut g.head_w[r * cfg.dim..(r + 1) * cfg.dim];
        for (gr, xv) in row.iter_mut().zip(x_last) {
            *gr += dl * xv;
        }
    }
    let mut dx = vec![0.0f32; cfg.dim];
    matvec_t_acc(&net.head_w, &dlogits, &mut dx, 1.0);

    // Blocks, reversed.
    for bi in (0..cfg.n_blocks).rev() {
        let block = &net.blocks[bi];
        let (n_in, r_in) = (&c.norms[bi].0, c.norms[bi].1);
        let p = &c.probs[bi];
        let sel = &c.sel[bi];
        // dp over all experts: selected get dy . e_i; importance
        // regularization adds 2 * coef * E * p_i everywhere.
        let mut dp = vec![0.0f32; cfg.n_experts];
        if balance_coef > 0.0 {
            for (d, &pi) in dp.iter_mut().zip(p.iter()) {
                *d += 2.0 * balance_coef * cfg.n_experts as f32 * pi;
            }
        }
        let mut dx_in = vec![0.0f32; cfg.dim];
        // Gradient wrt the normalized input (gate + expert paths).
        let mut dn = vec![0.0f32; cfg.dim];
        for (si, &e) in sel.iter().enumerate() {
            let eout = &c.eout[bi][si];
            // dp_e from the weighted expert mixture.
            dp[e] += dx.iter().zip(eout).map(|(a, b)| a * b).sum::<f32>();
            // d e_out = p_e * dx.
            let de: Vec<f32> = dx.iter().map(|v| p[e] * v).collect();
            // W2 grad and dh.
            let pre = &c.pre[bi][si];
            let h: Vec<f32> = pre.iter().map(|v| v.max(0.0)).collect();
            for (r, &dev) in de.iter().enumerate() {
                let row = &mut g.w2[bi][e][r * cfg.hidden..(r + 1) * cfg.hidden];
                for (gr, hv) in row.iter_mut().zip(&h) {
                    *gr += dev * hv;
                }
            }
            let mut dh = vec![0.0f32; cfg.hidden];
            matvec_t_acc(&block.w2[e], &de, &mut dh, 1.0);
            // ReLU.
            for (dhv, &pv) in dh.iter_mut().zip(pre) {
                if pv <= 0.0 {
                    *dhv = 0.0;
                }
            }
            // W1 grad and normalized-input grad.
            for (r, &dhv) in dh.iter().enumerate() {
                let row = &mut g.w1[bi][e][r * cfg.dim..(r + 1) * cfg.dim];
                for (gr, xv) in row.iter_mut().zip(n_in) {
                    *gr += dhv * xv;
                }
            }
            matvec_t_acc(&block.w1[e], &dh, &mut dn, 1.0);
        }
        // Softmax backward: ds = p * (dp - sum_j dp_j p_j).
        let dot: f32 = dp.iter().zip(p.iter()).map(|(a, b)| a * b).sum();
        let ds: Vec<f32> = p.iter().zip(&dp).map(|(&pi, &di)| pi * (di - dot)).collect();
        for (r, &dsv) in ds.iter().enumerate() {
            let row = &mut g.gate[bi][r * cfg.dim..(r + 1) * cfg.dim];
            for (gr, xv) in row.iter_mut().zip(n_in) {
                *gr += dsv * xv;
            }
        }
        matvec_t_acc(&block.gate, &ds, &mut dn, 1.0);
        // Normalization backward folds dn into the raw-input gradient.
        rms_norm_backward(&dn, n_in, r_in, &mut dx_in);
        // Residual: gradient flows straight through.
        for (a, b) in dx_in.iter_mut().zip(&dx) {
            *a += b;
        }
        dx = dx_in;
    }

    // Input projection.
    for (r, &dv) in dx.iter().enumerate() {
        let row = &mut g.input_w[r * cfg.input_dim..(r + 1) * cfg.input_dim];
        for (gr, iv) in row.iter_mut().zip(input) {
            *gr += dv * iv;
        }
    }
    loss
}

fn apply(params: &mut [f32], grads: &[f32], lr: f32, scale: f32) {
    for (p, g) in params.iter_mut().zip(grads) {
        *p -= lr * scale * g;
    }
}

/// Trains `net` on a task; returns the mean training loss per epoch.
pub fn train(net: &mut MoeNet, task: &Task, cfg: &TrainConfig) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..task.train.len()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0f64;
        for chunk in order.chunks(cfg.batch) {
            let mut g = Grads::zeros(net);
            let mut batch_loss = 0.0f64;
            for &i in chunk {
                let (x, y) = &task.train[i];
                batch_loss += backward(net, x, *y, cfg.balance_coef, &mut g) as f64;
            }
            let scale = 1.0 / chunk.len() as f32;
            apply(&mut net.input_w, &g.input_w, cfg.lr, scale);
            apply(&mut net.head_w, &g.head_w, cfg.lr, scale);
            for (bi, block) in net.blocks.iter_mut().enumerate() {
                apply(&mut block.gate, &g.gate[bi], cfg.lr, scale);
                for e in 0..block.w1.len() {
                    apply(&mut block.w1[e], &g.w1[bi][e], cfg.lr, scale);
                    apply(&mut block.w2[e], &g.w2[bi][e], cfg.lr, scale);
                }
            }
            epoch_loss += batch_loss;
        }
        history.push((epoch_loss / task.train.len() as f64) as f32);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::net::{EvalMode, NetConfig};
    use crate::tasks::TaskKind;

    fn small_net(seed: u64) -> MoeNet {
        MoeNet::random(
            NetConfig {
                input_dim: 16,
                dim: 16,
                hidden: 16,
                n_blocks: 2,
                n_experts: 8,
                top_k: 4,
                n_classes: 6,
            },
            seed,
        )
    }

    #[test]
    fn loss_decreases_during_training() {
        let task = Task::generate(TaskKind::Blobs, 16, 300, 100, 1);
        let mut net = small_net(1);
        let history = train(
            &mut net,
            &task,
            &TrainConfig {
                epochs: 8,
                ..Default::default()
            },
        );
        assert!(history.len() == 8);
        assert!(
            history.last().unwrap() < &(history[0] * 0.8),
            "loss did not drop: {history:?}"
        );
    }

    #[test]
    fn trained_net_beats_chance_clearly() {
        let task = Task::generate(TaskKind::Blobs, 16, 400, 200, 2);
        let mut net = small_net(2);
        train(
            &mut net,
            &task,
            &TrainConfig {
                epochs: 15,
                ..Default::default()
            },
        );
        let acc = accuracy(&net, &task.test, EvalMode::Standard);
        assert!(acc > 0.6, "acc={acc} (chance = 0.167)");
    }

    #[test]
    fn gradient_check_on_tiny_net() {
        // Finite differences on a few random parameters.
        let task = Task::generate(TaskKind::Xor, 6, 4, 1, 3);
        let net = MoeNet::random(
            NetConfig {
                input_dim: 6,
                dim: 5,
                hidden: 4,
                n_blocks: 2,
                n_experts: 4,
                top_k: 2,
                n_classes: 2,
            },
            3,
        );
        let (x, y) = &task.train[0];
        let mut g = Grads::zeros(&net);
        let base_loss = backward(&net, x, *y, 0.0, &mut g);
        assert!(base_loss.is_finite());
        let eps = 1e-3f32;

        // Check head, input and one expert weight by perturbation.
        let checks: Vec<(&str, usize)> = vec![("head", 3), ("input", 7), ("w1", 5)];
        for (which, idx) in checks {
            let mut pert = net.clone();
            let (slot, gval): (&mut f32, f32) = match which {
                "head" => (&mut pert.head_w[idx], g.head_w[idx]),
                "input" => (&mut pert.input_w[idx], g.input_w[idx]),
                _ => (&mut pert.blocks[0].w1[0][idx], g.w1[0][0][idx]),
            };
            *slot += eps;
            let mut g2 = Grads::zeros(&pert);
            let loss2 = backward(&pert, x, *y, 0.0, &mut g2);
            let numeric = (loss2 - base_loss) / eps;
            assert!(
                (numeric - gval).abs() < 0.05 * gval.abs().max(0.2),
                "{which}[{idx}]: numeric={numeric} analytic={gval}"
            );
        }
    }

    #[test]
    fn balance_regularization_spreads_expert_usage() {
        let task = Task::generate(TaskKind::Blobs, 16, 300, 100, 5);
        let herfindahl = |net: &MoeNet| -> f64 {
            let inputs: Vec<Vec<f32>> = task.test.iter().map(|(x, _)| x.clone()).collect();
            let usage = net.expert_usage(&inputs);
            let mut h = 0.0f64;
            for block in &usage {
                let total: usize = block.iter().sum();
                for &u in block {
                    let f = u as f64 / total as f64;
                    h += f * f;
                }
            }
            h / usage.len() as f64
        };
        let mut balanced = small_net(6);
        train(
            &mut balanced,
            &task,
            &TrainConfig {
                epochs: 10,
                balance_coef: 0.05,
                ..Default::default()
            },
        );
        let mut unbalanced = small_net(6);
        train(
            &mut unbalanced,
            &task,
            &TrainConfig {
                epochs: 10,
                balance_coef: 0.0,
                ..Default::default()
            },
        );
        assert!(
            herfindahl(&balanced) <= herfindahl(&unbalanced) + 0.02,
            "balanced {} vs unbalanced {}",
            herfindahl(&balanced),
            herfindahl(&unbalanced)
        );
    }

    #[test]
    fn training_is_seed_deterministic() {
        let task = Task::generate(TaskKind::Blobs, 16, 100, 20, 7);
        let mut a = small_net(8);
        let mut b = small_net(8);
        let ha = train(&mut a, &task, &TrainConfig::default());
        let hb = train(&mut b, &task, &TrainConfig::default());
        assert_eq!(ha, hb);
        assert_eq!(a.forward(&task.test[0].0, EvalMode::Standard),
                   b.forward(&task.test[0].0, EvalMode::Standard));
    }
}
